//! Bitwise parity of the AVX2 f32 kernels against the scalar path,
//! and thread-count determinism of the quantized forward.
#![cfg(feature = "simd")]

use irf_nn::quant::PrecisionMode;
use irf_nn::{ParamStore, Tape, Tensor};
use std::sync::Mutex;

static GLOBALS: Mutex<()> = Mutex::new(());

fn lock_globals() -> std::sync::MutexGuard<'static, ()> {
    GLOBALS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn rand_tensor(shape: [usize; 4], seed: u64) -> Tensor {
    let mut rng = irf_runtime::Xoshiro256pp::seed_from_u64(seed);
    let n = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..n).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect(),
    )
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

fn conv_forward(x: &Tensor, w: &Tensor, b: &Tensor, pad: usize) -> Tensor {
    let mut tape = Tape::new();
    let xn = tape.input(x.clone());
    let wn = tape.input(w.clone());
    let bn = tape.input(b.clone());
    let y = tape.conv2d(xn, wn, bn, 1, pad);
    tape.value(y).clone()
}

#[test]
fn conv2d_simd_is_bitwise_identical_to_scalar_at_any_thread_count() {
    let _g = lock_globals();
    // Odd spatial size + channels exercise the 8-wide tail; include
    // exact zeros in the weights to hit the skip branch.
    let x = rand_tensor([3, 5, 19, 23], 1);
    let mut w = rand_tensor([7, 5, 3, 3], 2);
    w.data_mut()[4] = 0.0;
    w.data_mut()[40] = 0.0;
    let b = rand_tensor([1, 7, 1, 1], 3);

    irf_runtime::simd::set_disabled(true);
    irf_runtime::set_num_threads(1);
    let scalar = conv_forward(&x, &w, &b, 1);
    irf_runtime::simd::set_disabled(false);

    if !irf_runtime::simd::enabled() {
        eprintln!("skipping: AVX2 unavailable at runtime");
        return;
    }
    for threads in [1usize, 2, 4, 8] {
        irf_runtime::set_num_threads(threads);
        let simd = conv_forward(&x, &w, &b, 1);
        assert_eq!(
            bits(&scalar),
            bits(&simd),
            "conv2d diverged at {threads} threads"
        );
    }
    irf_runtime::set_num_threads(1);
}

#[test]
fn linear_simd_is_bitwise_identical_to_scalar_at_any_thread_count() {
    let _g = lock_globals();
    // 37 outputs: four 8-wide steps plus a 5-output scalar tail.
    let x = rand_tensor([6, 29, 1, 1], 4);
    let w = rand_tensor([37, 29, 1, 1], 5);
    let b = rand_tensor([1, 37, 1, 1], 6);
    let fwd = |x: &Tensor| {
        let mut tape = Tape::new();
        let xn = tape.input(x.clone());
        let wn = tape.input(w.clone());
        let bn = tape.input(b.clone());
        let y = tape.linear(xn, wn, bn);
        tape.value(y).clone()
    };

    irf_runtime::simd::set_disabled(true);
    irf_runtime::set_num_threads(1);
    let scalar = fwd(&x);
    irf_runtime::simd::set_disabled(false);

    if !irf_runtime::simd::enabled() {
        eprintln!("skipping: AVX2 unavailable at runtime");
        return;
    }
    for threads in [1usize, 2, 4, 8] {
        irf_runtime::set_num_threads(threads);
        let simd = fwd(&x);
        assert_eq!(
            bits(&scalar),
            bits(&simd),
            "linear diverged at {threads} threads"
        );
    }
    irf_runtime::set_num_threads(1);
}

#[test]
fn int8_forward_is_deterministic_across_thread_counts() {
    let _g = lock_globals();
    let mut store = ParamStore::new();
    let w = store.register("w", rand_tensor([6, 4, 3, 3], 7));
    let b = store.register("b", rand_tensor([1, 6, 1, 1], 8));
    store.quantize(PrecisionMode::Int8);
    let x = rand_tensor([2, 4, 11, 13], 9);
    let fwd = || {
        let mut tape = Tape::new();
        tape.set_precision(PrecisionMode::Int8);
        let xn = tape.input(x.clone());
        let wn = tape.param(&store, w);
        let bn = tape.param(&store, b);
        let y = tape.conv2d(xn, wn, bn, 1, 1);
        tape.value(y).clone()
    };
    irf_runtime::set_num_threads(1);
    let reference = fwd();
    for threads in [2usize, 4, 8] {
        irf_runtime::set_num_threads(threads);
        assert_eq!(
            bits(&reference),
            bits(&fwd()),
            "int8 conv diverged at {threads} threads"
        );
    }
    irf_runtime::set_num_threads(1);
    // Quantization must actually change something (it's not the f32 path).
    let mut tape = Tape::new();
    let xn = tape.input(x.clone());
    let wn = tape.param(&store, w);
    let bn = tape.param(&store, b);
    let y = tape.conv2d(xn, wn, bn, 1, 1);
    assert_ne!(bits(&reference), bits(tape.value(y)));
}

#[test]
fn f16_forward_rounds_activations_deterministically() {
    let _g = lock_globals();
    let mut store = ParamStore::new();
    let w = store.register("w", rand_tensor([5, 3, 3, 3], 10));
    let b = store.register("b", rand_tensor([1, 5, 1, 1], 11));
    store.quantize(PrecisionMode::F16);
    let x = rand_tensor([2, 3, 9, 9], 12);
    let fwd = || {
        let mut tape = Tape::new();
        tape.set_precision(PrecisionMode::F16);
        let xn = tape.input(x.clone());
        let wn = tape.param(&store, w);
        let bn = tape.param(&store, b);
        let y = tape.conv2d(xn, wn, bn, 1, 1);
        tape.value(y).clone()
    };
    irf_runtime::set_num_threads(1);
    let reference = fwd();
    // Every output must be exactly representable in binary16.
    for &v in reference.data() {
        assert_eq!(irf_nn::quant::f16_round(v), v, "{v} is not an f16 value");
    }
    for threads in [2usize, 4, 8] {
        irf_runtime::set_num_threads(threads);
        assert_eq!(
            bits(&reference),
            bits(&fwd()),
            "f16 conv diverged at {threads} threads"
        );
    }
    irf_runtime::set_num_threads(1);
}
