//! Randomized-but-deterministic property tests for the autograd
//! framework: gradient checks and algebraic invariants over
//! fixed-seed random instances, so failures reproduce exactly.

use irf_nn::{loss, ParamStore, Tape, Tensor};
use irf_runtime::Xoshiro256pp;

const CASES: u64 = 24;

fn tensor(rng: &mut Xoshiro256pp, shape: [usize; 4]) -> Tensor {
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.random_range(-1.5f32..1.5)).collect();
    Tensor::from_vec(shape, data)
}

fn coords(rng: &mut Xoshiro256pp, max: usize, len: usize) -> Vec<usize> {
    (0..len).map(|_| rng.random_range(0usize..max)).collect()
}

/// Checks `d sum(f(x)) / dx` against central differences at a few
/// random coordinates (full sweeps are done in the unit tests).
fn gradcheck<F>(x0: &Tensor, forward: F, coords: &[usize], tol: f32)
where
    F: Fn(&mut Tape, irf_nn::NodeId) -> irf_nn::NodeId,
{
    let mut store = ParamStore::new();
    let mut tape = Tape::new();
    let x = tape.leaf(x0.clone());
    let y = forward(&mut tape, x);
    let seed = Tensor::filled(tape.value(y).shape(), 1.0);
    tape.backward(y, seed, &mut store);
    let analytic = tape.grad(x).expect("leaf grad").clone();
    let eps = 1e-2;
    for &i in coords {
        let i = i % x0.numel();
        let eval = |t: &Tensor| -> f32 {
            let mut tp = Tape::new();
            let xi = tp.leaf(t.clone());
            let y = forward(&mut tp, xi);
            tp.value(y).data().iter().sum()
        };
        let mut plus = x0.clone();
        plus.data_mut()[i] += eps;
        let mut minus = x0.clone();
        minus.data_mut()[i] -= eps;
        let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
        let a = analytic.data()[i];
        assert!(
            (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
            "coord {i}: analytic {a} vs numeric {numeric}"
        );
    }
}

#[test]
fn conv_gradcheck_random_inputs() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA1_01);
    for _ in 0..CASES {
        let x = tensor(&mut rng, [1, 2, 5, 5]);
        let w = tensor(&mut rng, [3, 2, 3, 3]);
        let cs = coords(&mut rng, 50, 4);
        gradcheck(
            &x,
            |t, xi| {
                let wv = t.input(w.clone());
                let b = t.input(Tensor::zeros([1, 3, 1, 1]));
                t.conv2d(xi, wv, b, 1, 1)
            },
            &cs,
            0.15,
        );
    }
}

#[test]
fn composite_network_gradcheck() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA1_02);
    for _ in 0..CASES {
        let x0 = tensor(&mut rng, [1, 2, 4, 4]);
        let cs = coords(&mut rng, 32, 3);
        // ReLU and max-pool are non-differentiable at kinks; central
        // differences with eps = 1e-2 need inputs comfortably away
        // from zero and from pooling ties.
        let x = Tensor::from_vec(
            x0.shape(),
            x0.data()
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let pushed = if v.abs() < 0.1 {
                        v + 0.2 * (1.0 + v)
                    } else {
                        v
                    };
                    pushed + 1e-3 * (i as f32) // break pooling ties
                })
                .collect(),
        );
        gradcheck(
            &x,
            |t, xi| {
                let a = t.relu(xi);
                let p = t.max_pool2(a);
                let u = t.upsample2(p);
                let s = t.sigmoid(u);
                t.mul(s, a)
            },
            &cs,
            0.2,
        );
    }
}

#[test]
fn mae_gradient_has_unit_scaled_signs() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA1_03);
    for _ in 0..CASES {
        let pred = tensor(&mut rng, [1, 1, 3, 3]);
        let target = tensor(&mut rng, [1, 1, 3, 3]);
        let (l, g) = loss::mae(&pred, &target);
        assert!(l >= 0.0);
        let n = pred.numel() as f32;
        for ((p, t), gi) in pred.data().iter().zip(target.data()).zip(g.data()) {
            if (p - t).abs() > 1e-6 {
                assert!((gi.abs() - 1.0 / n).abs() < 1e-6);
                assert_eq!(gi.signum(), (p - t).signum());
            }
        }
    }
}

#[test]
fn mse_is_zero_iff_equal() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA1_04);
    for _ in 0..CASES {
        let pred = tensor(&mut rng, [1, 1, 2, 2]);
        let (l, g) = loss::mse(&pred, &pred);
        assert_eq!(l, 0.0);
        assert!(g.data().iter().all(|&v| v == 0.0));
    }
}

#[test]
fn huber_is_between_half_mse_and_mae_scales() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA1_05);
    for _ in 0..CASES {
        let pred = tensor(&mut rng, [1, 1, 2, 2]);
        let target = tensor(&mut rng, [1, 1, 2, 2]);
        // For delta = 1: just check non-negativity and that moving the
        // prediction further from the target never lowers the loss.
        let (l, _) = loss::huber(&pred, &target, 1.0);
        assert!(l >= 0.0);
        let further = Tensor::from_vec(
            pred.shape(),
            pred.data()
                .iter()
                .zip(target.data())
                .map(|(p, t)| t + 2.0 * (p - t))
                .collect(),
        );
        let (l2, _) = loss::huber(&further, &target, 1.0);
        assert!(l2 >= l - 1e-6);
    }
}

#[test]
fn concat_then_split_preserves_sums() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA1_06);
    for _ in 0..CASES {
        let a = tensor(&mut rng, [1, 2, 3, 3]);
        let b = tensor(&mut rng, [1, 3, 3, 3]);
        let mut tape = Tape::new();
        let na = tape.input(a.clone());
        let nb = tape.input(b.clone());
        let cat = tape.concat_channels(na, nb);
        let sum_cat: f32 = tape.value(cat).data().iter().sum();
        let sum_parts: f32 = a.data().iter().sum::<f32>() + b.data().iter().sum::<f32>();
        assert!((sum_cat - sum_parts).abs() < 1e-3);
    }
}

#[test]
fn pool_upsample_shapes_compose() {
    let mut rng = Xoshiro256pp::seed_from_u64(0xA1_07);
    for _ in 0..CASES {
        let x = tensor(&mut rng, [1, 3, 4, 4]);
        let mut tape = Tape::new();
        let n = tape.input(x);
        let p = tape.max_pool2(n);
        let u = tape.upsample2(p);
        assert_eq!(tape.value(u).shape(), [1, 3, 4, 4]);
        // max pooling then upsampling never increases the max.
        assert!(tape.value(u).max_abs() <= tape.value(n).max_abs() + 1e-6);
    }
}
