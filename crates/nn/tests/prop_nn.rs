//! Property-based tests for the autograd framework: randomized
//! gradient checks and algebraic invariants.

use irf_nn::{loss, ParamStore, Tape, Tensor};
use proptest::prelude::*;

fn tensor(shape: [usize; 4]) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    proptest::collection::vec(-1.5f32..1.5, n).prop_map(move |data| Tensor::from_vec(shape, data))
}

/// Checks `d sum(f(x)) / dx` against central differences at a few
/// random coordinates (full sweeps are done in the unit tests).
fn gradcheck<F>(x0: &Tensor, forward: F, coords: &[usize], tol: f32) -> Result<(), TestCaseError>
where
    F: Fn(&mut Tape, irf_nn::NodeId) -> irf_nn::NodeId,
{
    let mut store = ParamStore::new();
    let mut tape = Tape::new();
    let x = tape.leaf(x0.clone());
    let y = forward(&mut tape, x);
    let seed = Tensor::filled(tape.value(y).shape(), 1.0);
    tape.backward(y, seed, &mut store);
    let analytic = tape.grad(x).expect("leaf grad").clone();
    let eps = 1e-2;
    for &i in coords {
        let i = i % x0.numel();
        let eval = |t: &Tensor| -> f32 {
            let mut tp = Tape::new();
            let xi = tp.leaf(t.clone());
            let y = forward(&mut tp, xi);
            tp.value(y).data().iter().sum()
        };
        let mut plus = x0.clone();
        plus.data_mut()[i] += eps;
        let mut minus = x0.clone();
        minus.data_mut()[i] -= eps;
        let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
        let a = analytic.data()[i];
        prop_assert!(
            (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
            "coord {i}: analytic {a} vs numeric {numeric}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv_gradcheck_random_inputs(
        x in tensor([1, 2, 5, 5]),
        w in tensor([3, 2, 3, 3]),
        coords in proptest::collection::vec(0usize..50, 4),
    ) {
        gradcheck(&x, |t, xi| {
            let wv = t.input(w.clone());
            let b = t.input(Tensor::zeros([1, 3, 1, 1]));
            t.conv2d(xi, wv, b, 1, 1)
        }, &coords, 0.15)?;
    }

    #[test]
    fn composite_network_gradcheck(
        x0 in tensor([1, 2, 4, 4]),
        coords in proptest::collection::vec(0usize..32, 3),
    ) {
        // ReLU and max-pool are non-differentiable at kinks; central
        // differences with eps = 1e-2 need inputs comfortably away
        // from zero and from pooling ties.
        let x = Tensor::from_vec(
            x0.shape(),
            x0.data()
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    let pushed = if v.abs() < 0.1 { v + 0.2 * (1.0 + v) } else { v };
                    pushed + 1e-3 * (i as f32) // break pooling ties
                })
                .collect(),
        );
        gradcheck(&x, |t, xi| {
            let a = t.relu(xi);
            let p = t.max_pool2(a);
            let u = t.upsample2(p);
            let s = t.sigmoid(u);
            t.mul(s, a)
        }, &coords, 0.2)?;
    }

    #[test]
    fn mae_gradient_has_unit_scaled_signs(
        pred in tensor([1, 1, 3, 3]),
        target in tensor([1, 1, 3, 3]),
    ) {
        let (l, g) = loss::mae(&pred, &target);
        prop_assert!(l >= 0.0);
        let n = pred.numel() as f32;
        for ((p, t), gi) in pred.data().iter().zip(target.data()).zip(g.data()) {
            if (p - t).abs() > 1e-6 {
                prop_assert!((gi.abs() - 1.0 / n).abs() < 1e-6);
                prop_assert_eq!(gi.signum(), (p - t).signum());
            }
        }
    }

    #[test]
    fn mse_is_zero_iff_equal(pred in tensor([1, 1, 2, 2])) {
        let (l, g) = loss::mse(&pred, &pred);
        prop_assert_eq!(l, 0.0);
        prop_assert!(g.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn huber_is_between_half_mse_and_mae_scales(
        pred in tensor([1, 1, 2, 2]),
        target in tensor([1, 1, 2, 2]),
    ) {
        // For delta = 1: huber <= 0.5 * mse elementwise-summed and
        // huber <= mae * delta-ish bound; just check non-negativity
        // and that huber(p, p) = 0 and monotone under scaling away.
        let (l, _) = loss::huber(&pred, &target, 1.0);
        prop_assert!(l >= 0.0);
        let further = Tensor::from_vec(
            pred.shape(),
            pred.data().iter().zip(target.data()).map(|(p, t)| t + 2.0 * (p - t)).collect(),
        );
        let (l2, _) = loss::huber(&further, &target, 1.0);
        prop_assert!(l2 >= l - 1e-6);
    }

    #[test]
    fn concat_then_split_preserves_sums(
        a in tensor([1, 2, 3, 3]),
        b in tensor([1, 3, 3, 3]),
    ) {
        let mut tape = Tape::new();
        let na = tape.input(a.clone());
        let nb = tape.input(b.clone());
        let cat = tape.concat_channels(na, nb);
        let sum_cat: f32 = tape.value(cat).data().iter().sum();
        let sum_parts: f32 = a.data().iter().sum::<f32>() + b.data().iter().sum::<f32>();
        prop_assert!((sum_cat - sum_parts).abs() < 1e-3);
    }

    #[test]
    fn pool_upsample_shapes_compose(x in tensor([1, 3, 4, 4])) {
        let mut tape = Tape::new();
        let n = tape.input(x);
        let p = tape.max_pool2(n);
        let u = tape.upsample2(p);
        prop_assert_eq!(tape.value(u).shape(), [1, 3, 4, 4]);
        // max pooling then upsampling never increases the max.
        prop_assert!(tape.value(u).max_abs() <= tape.value(n).max_abs() + 1e-6);
    }
}
