//! Trainable parameters shared across forward passes.

use std::sync::Arc;

use crate::quant::{PrecisionMode, QuantizedTensor};
use crate::tensor::Tensor;

/// Handle to a parameter in a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Index into the store.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Owns every trainable tensor of a model together with its
/// accumulated gradient.
///
/// A model's layers hold [`ParamId`]s; each forward pass reads the
/// current values through [`crate::Tape::param`], and
/// [`crate::Tape::backward`] accumulates gradients back into the store
/// for the optimizer to consume.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    names: Vec<String>,
    /// Reduced-precision sidecars built by [`ParamStore::quantize`];
    /// `None` per parameter until then. Shared by `Arc` so tapes can
    /// hold references without copying payloads.
    quant: Vec<Option<Arc<QuantizedTensor>>>,
}

impl ParamStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> Self {
        ParamStore::default()
    }

    /// Registers a parameter with an initial value, returning its id.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Tensor::zeros(value.shape()));
        self.values.push(value);
        self.names.push(name.into());
        self.quant.push(None);
        id
    }

    /// Builds reduced-precision sidecars for every parameter (a no-op
    /// clearing them for [`PrecisionMode::F32`]). Sidecars are derived
    /// data: rebuild after any weight mutation (optimizer step,
    /// checkpoint load).
    pub fn quantize(&mut self, mode: PrecisionMode) {
        for (q, v) in self.quant.iter_mut().zip(&self.values) {
            *q = QuantizedTensor::build(mode, v).map(Arc::new);
        }
    }

    /// Drops all reduced-precision sidecars.
    pub fn clear_quant(&mut self) {
        for q in &mut self.quant {
            *q = None;
        }
    }

    /// The reduced-precision sidecar of a parameter, if
    /// [`ParamStore::quantize`] has built one.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this store.
    #[must_use]
    pub fn quant(&self, id: ParamId) -> Option<&Arc<QuantizedTensor>> {
        self.quant[id.0].as_ref()
    }

    /// Number of registered parameters (tensors, not scalars).
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no parameters are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar parameter count across all tensors.
    #[must_use]
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::numel).sum()
    }

    /// Current value of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this store.
    #[must_use]
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable value (used by optimizers and checkpoint loading).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this store.
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Accumulated gradient of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this store.
    #[must_use]
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Adds `delta` into the gradient accumulator.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) {
        let g = &mut self.grads[id.0];
        assert_eq!(g.shape(), delta.shape(), "gradient shape mismatch");
        for (gi, di) in g.data_mut().iter_mut().zip(delta.data()) {
            *gi += di;
        }
    }

    /// Zeroes all gradient accumulators (call between optimizer steps).
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.data_mut().iter_mut().for_each(|v| *v = 0.0);
        }
    }

    /// Name of a parameter.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this store.
    #[must_use]
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates `(id, name, value)` over all parameters.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (ParamId(i), self.names[i].as_str(), v))
    }

    /// Global gradient L2 norm, used for clipping and debugging.
    #[must_use]
    pub fn grad_norm(&self) -> f32 {
        self.grads
            .iter()
            .flat_map(|g| g.data())
            .map(|v| v * v)
            .sum::<f32>()
            .sqrt()
    }

    /// Scales every gradient so the global norm is at most `max_norm`.
    pub fn clip_grad_norm(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in &mut self.grads {
                g.data_mut().iter_mut().for_each(|v| *v *= s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut s = ParamStore::new();
        let id = s.register("w", Tensor::filled([1, 1, 2, 2], 1.0));
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_scalars(), 4);
        assert_eq!(s.name(id), "w");
        assert_eq!(s.value(id).mean(), 1.0);
        assert_eq!(s.grad(id).mean(), 0.0);
    }

    #[test]
    fn grads_accumulate_and_zero() {
        let mut s = ParamStore::new();
        let id = s.register("w", Tensor::zeros([1, 1, 1, 2]));
        s.accumulate_grad(id, &Tensor::from_vec([1, 1, 1, 2], vec![1.0, 2.0]));
        s.accumulate_grad(id, &Tensor::from_vec([1, 1, 1, 2], vec![1.0, 2.0]));
        assert_eq!(s.grad(id).data(), &[2.0, 4.0]);
        s.zero_grads();
        assert_eq!(s.grad(id).data(), &[0.0, 0.0]);
    }

    #[test]
    fn clipping_bounds_global_norm() {
        let mut s = ParamStore::new();
        let id = s.register("w", Tensor::zeros([1, 1, 1, 2]));
        s.accumulate_grad(id, &Tensor::from_vec([1, 1, 1, 2], vec![3.0, 4.0]));
        assert!((s.grad_norm() - 5.0).abs() < 1e-6);
        s.clip_grad_norm(1.0);
        assert!((s.grad_norm() - 1.0).abs() < 1e-6);
        // Clipping below the threshold is a no-op.
        s.clip_grad_norm(10.0);
        assert!((s.grad_norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iter_walks_all_params() {
        let mut s = ParamStore::new();
        s.register("a", Tensor::zeros([1, 1, 1, 1]));
        s.register("b", Tensor::zeros([1, 1, 1, 1]));
        let names: Vec<_> = s.iter().map(|(_, n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
