//! Reusable layers: thin structs holding [`ParamId`]s plus a
//! `forward` that records onto a [`Tape`].

use crate::init::{kaiming_uniform, xavier_uniform};
use crate::param::{ParamId, ParamStore};
use crate::tape::{NodeId, Tape};
use crate::tensor::Tensor;

/// A 2-D convolution layer (weight + bias).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2d {
    w: ParamId,
    b: ParamId,
    /// Stride (usually 1; downsampling uses explicit pooling).
    pub stride: usize,
    /// Zero padding on each side.
    pub pad: usize,
}

impl Conv2d {
    /// Registers a `k x k` convolution from `cin` to `cout` channels
    /// with "same" padding (`pad = k / 2`) and Kaiming init.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        cin: usize,
        cout: usize,
        k: usize,
        stride: usize,
        seed: u64,
    ) -> Self {
        Conv2d::with_padding(store, name, cin, cout, k, stride, k / 2, seed)
    }

    /// Registers a convolution with explicit padding.
    #[allow(clippy::too_many_arguments)]
    pub fn with_padding(
        store: &mut ParamStore,
        name: &str,
        cin: usize,
        cout: usize,
        k: usize,
        stride: usize,
        pad: usize,
        seed: u64,
    ) -> Self {
        let w = store.register(
            format!("{name}.w"),
            kaiming_uniform([cout, cin, k, k], seed),
        );
        let b = store.register(format!("{name}.b"), Tensor::zeros([1, cout, 1, 1]));
        Conv2d { w, b, stride, pad }
    }

    /// Records the convolution onto the tape.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        tape.conv2d(x, w, b, self.stride, self.pad)
    }

    /// Weight parameter id.
    #[must_use]
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// Bias parameter id.
    #[must_use]
    pub fn bias(&self) -> ParamId {
        self.b
    }
}

/// A rectangular (non-square kernel) convolution, used by Inception-B's
/// `1xN` / `Nx1` factorized branches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvRect {
    w: ParamId,
    b: ParamId,
    pad_h: usize,
    pad_w: usize,
}

impl ConvRect {
    /// Registers a `kh x kw` convolution with "same" padding.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        cin: usize,
        cout: usize,
        kh: usize,
        kw: usize,
        seed: u64,
    ) -> Self {
        let w = store.register(
            format!("{name}.w"),
            kaiming_uniform([cout, cin, kh, kw], seed),
        );
        let b = store.register(format!("{name}.b"), Tensor::zeros([1, cout, 1, 1]));
        ConvRect {
            w,
            b,
            pad_h: kh / 2,
            pad_w: kw / 2,
        }
    }

    /// Records the convolution with per-axis "same" padding
    /// (`pad_h = kh / 2`, `pad_w = kw / 2`), so odd rectangular
    /// kernels preserve the spatial size exactly.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        tape.conv2d_rect(x, w, b, self.pad_h, self.pad_w)
    }
}

/// Instance normalization with affine parameters (the framework's
/// stand-in for batch norm; see [`Tape::instance_norm`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Norm {
    gamma: ParamId,
    beta: ParamId,
}

impl Norm {
    /// Registers `gamma = 1`, `beta = 0` for `c` channels.
    pub fn new(store: &mut ParamStore, name: &str, c: usize) -> Self {
        let gamma = store.register(format!("{name}.gamma"), Tensor::filled([1, c, 1, 1], 1.0));
        let beta = store.register(format!("{name}.beta"), Tensor::zeros([1, c, 1, 1]));
        Norm { gamma, beta }
    }

    /// Records the normalization onto the tape.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let g = tape.param(store, self.gamma);
        let b = tape.param(store, self.beta);
        tape.instance_norm(x, g, b, 1e-5)
    }
}

/// A fully connected layer on `(N, C, 1, 1)` tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
}

impl Linear {
    /// Registers a linear layer with Xavier init (it usually feeds a
    /// sigmoid gate in this codebase).
    pub fn new(store: &mut ParamStore, name: &str, cin: usize, cout: usize, seed: u64) -> Self {
        let w = store.register(format!("{name}.w"), xavier_uniform([cout, cin, 1, 1], seed));
        let b = store.register(format!("{name}.b"), Tensor::zeros([1, cout, 1, 1]));
        Linear { w, b }
    }

    /// Records the layer onto the tape.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        tape.linear(x, w, b)
    }
}

/// Conv -> Norm -> ReLU, the standard U-Net building block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvBlock {
    conv: Conv2d,
    norm: Norm,
}

impl ConvBlock {
    /// Registers the block.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        cin: usize,
        cout: usize,
        k: usize,
        seed: u64,
    ) -> Self {
        ConvBlock {
            conv: Conv2d::new(store, &format!("{name}.conv"), cin, cout, k, 1, seed),
            norm: Norm::new(store, &format!("{name}.norm"), cout),
        }
    }

    /// Records conv + norm + ReLU.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let y = self.conv.forward(tape, store, x);
        let y = self.norm.forward(tape, store, y);
        tape.relu(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv2d_layer_shapes() {
        let mut store = ParamStore::new();
        let conv = Conv2d::new(&mut store, "c", 3, 8, 3, 1, 1);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::zeros([1, 3, 6, 6]));
        let y = conv.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), [1, 8, 6, 6]);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn conv_block_activates() {
        let mut store = ParamStore::new();
        let block = ConvBlock::new(&mut store, "b", 2, 4, 3, 2);
        let mut tape = Tape::new();
        let x = tape.input(crate::init::uniform([1, 2, 4, 4], -1.0, 1.0, 3));
        let y = block.forward(&mut tape, &store, x);
        assert!(tape.value(y).data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn linear_layer_shapes() {
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "fc", 8, 2, 4);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::zeros([3, 8, 1, 1]));
        let y = lin.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), [3, 2, 1, 1]);
    }

    #[test]
    fn rect_conv_preserves_shape() {
        let mut store = ParamStore::new();
        let c = ConvRect::new(&mut store, "r", 2, 3, 1, 5, 9);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::zeros([1, 2, 6, 6]));
        let y = c.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), [1, 3, 6, 6]);
    }

    #[test]
    fn norm_names_parameters() {
        let mut store = ParamStore::new();
        let _ = Norm::new(&mut store, "enc1.norm", 4);
        let names: Vec<_> = store.iter().map(|(_, n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["enc1.norm.gamma", "enc1.norm.beta"]);
    }
}
