//! Reduced-precision inference: per-channel int8 weight quantization
//! and f16 activation/weight rounding.
//!
//! The training stack stays f32 everywhere; quantization is an
//! inference-time transform applied to a finished model. A
//! [`PrecisionMode`] selects the forward-path behaviour:
//!
//! * **F32** — the default; nothing changes.
//! * **F16** — conv/linear weights are round-tripped through IEEE
//!   binary16 (stored dequantized, so the f32 kernels — including the
//!   SIMD ones — run unchanged on them) and each conv/linear output is
//!   rounded to the nearest f16 value, modelling half-precision
//!   activation storage.
//! * **Int8** — conv/linear weights are quantized per output channel
//!   (symmetric, scale `max|w|/127`), activations dynamically per
//!   sample, and the GEMM inner loop accumulates in `i32` — exact
//!   integer arithmetic, dequantized once per output with a single
//!   fused scale. Because the accumulation is exact, int8 results are
//!   bitwise deterministic at **any** thread count and batch
//!   composition.
//!
//! Quantized sidecars are attached to a [`crate::ParamStore`] by
//! [`crate::ParamStore::quantize`] and consumed by
//! [`crate::Tape::conv2d`] / [`crate::Tape::linear`] when the tape's
//! precision (set via [`crate::Tape::set_precision`]) is not `F32`.

use crate::tensor::Tensor;

/// Numeric precision of an inference forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrecisionMode {
    /// Full f32 — the training precision and the default.
    #[default]
    F32,
    /// binary16 weights + activation rounding.
    F16,
    /// Per-channel symmetric int8 weights, dynamic per-sample
    /// activation quantization, exact i32 accumulation.
    Int8,
}

impl PrecisionMode {
    /// Stable wire/checkpoint tag.
    #[must_use]
    pub fn id(self) -> u8 {
        match self {
            PrecisionMode::F32 => 0,
            PrecisionMode::F16 => 1,
            PrecisionMode::Int8 => 2,
        }
    }

    /// Inverse of [`PrecisionMode::id`].
    #[must_use]
    pub fn from_id(id: u8) -> Option<Self> {
        match id {
            0 => Some(PrecisionMode::F32),
            1 => Some(PrecisionMode::F16),
            2 => Some(PrecisionMode::Int8),
            _ => None,
        }
    }

    /// Canonical lowercase name (`"f32"`, `"f16"`, `"int8"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PrecisionMode::F32 => "f32",
            PrecisionMode::F16 => "f16",
            PrecisionMode::Int8 => "int8",
        }
    }

    /// Parses a canonical name; `None` for anything else.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "f32" => Some(PrecisionMode::F32),
            "f16" => Some(PrecisionMode::F16),
            "int8" => Some(PrecisionMode::Int8),
            _ => None,
        }
    }
}

impl std::fmt::Display for PrecisionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Converts an `f32` to IEEE binary16 bits with round-to-nearest-even.
#[must_use]
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let b = x.to_bits();
    let sign = ((b >> 16) & 0x8000) as u16;
    let abs = b & 0x7fff_ffff;
    if abs >= 0x7f80_0000 {
        // Inf / NaN; keep NaNs quiet with a truncated payload.
        let payload = if abs > 0x7f80_0000 {
            0x0200 | ((abs >> 13) & 0x03ff) as u16
        } else {
            0
        };
        return sign | 0x7c00 | payload;
    }
    let exp = (abs >> 23) as i32 - 127;
    if exp >= 16 {
        return sign | 0x7c00; // overflow -> inf
    }
    let mant = abs & 0x007f_ffff;
    if exp >= -14 {
        // Normal half; rounding may carry into the exponent (and into
        // inf at the top), which the plain add handles correctly.
        let half = (((exp + 15) as u32) << 10) | (mant >> 13);
        let rem = mant & 0x1fff;
        let round = rem > 0x1000 || (rem == 0x1000 && half & 1 == 1);
        return sign | (half as u16).wrapping_add(u16::from(round));
    }
    if exp >= -25 {
        // Subnormal half.
        let full = mant | 0x0080_0000;
        let shift = (13 - 14 - exp) as u32; // 13 + (-14 - exp)
        let half = full >> shift;
        let rem = full & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let round = rem > halfway || (rem == halfway && half & 1 == 1);
        return sign | (half as u16 + u16::from(round));
    }
    sign // underflow to signed zero
}

/// Converts IEEE binary16 bits to the exactly-representable `f32`.
#[must_use]
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = u32::from(h & 0x8000) << 16;
    let exp = (h >> 10) & 0x1f;
    let mant = u32::from(h & 0x03ff);
    let bits = if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13)
    } else if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal: value = mant * 2^-24; normalize into f32.
            let p = 31 - mant.leading_zeros(); // MSB position, 0..=9
            let e = p + 103; // (p - 24) + 127
            let m = ((mant << (10 - p)) & 0x03ff) << 13;
            sign | (e << 23) | m
        }
    } else {
        sign | ((u32::from(exp) + 112) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

/// Rounds a value through binary16 and back.
#[must_use]
pub fn f16_round(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

/// Rounds every element of a tensor through binary16 in place.
pub fn f16_round_tensor(t: &mut Tensor) {
    for v in t.data_mut() {
        *v = f16_round(*v);
    }
}

/// Per-output-channel symmetric int8 quantization of a weight tensor.
#[derive(Debug, Clone)]
pub struct Int8Tensor {
    shape: [usize; 4],
    /// Row-major `i8` payload: `shape[0]` rows of
    /// `shape[1] * shape[2] * shape[3]` values each.
    data: Vec<i8>,
    /// Per-row (output-channel) dequantization scales.
    scales: Vec<f32>,
}

impl Int8Tensor {
    /// Quantizes `w` per channel along dim 0: `scale = max|row|/127`,
    /// `q = round(v / scale)` clamped to `[-127, 127]`. All-zero rows
    /// get scale `1.0`.
    #[must_use]
    pub fn quantize(w: &Tensor) -> Self {
        let shape = w.shape();
        let rows = shape[0];
        let cols = shape[1] * shape[2] * shape[3];
        let wd = w.data();
        let mut data = vec![0i8; rows * cols];
        let mut scales = vec![1.0f32; rows];
        for r in 0..rows {
            let row = &wd[r * cols..(r + 1) * cols];
            let max = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if max > 0.0 { max / 127.0 } else { 1.0 };
            scales[r] = scale;
            for (q, &v) in data[r * cols..(r + 1) * cols].iter_mut().zip(row) {
                *q = (v / scale).round().clamp(-127.0, 127.0) as i8;
            }
        }
        Int8Tensor {
            shape,
            data,
            scales,
        }
    }

    /// Logical NCHW shape of the quantized tensor.
    #[must_use]
    pub fn shape(&self) -> [usize; 4] {
        self.shape
    }

    /// The `i8` payload (row-major).
    #[must_use]
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Per-channel dequantization scales.
    #[must_use]
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Dequantizes back to an f32 tensor (`q * scale`), the value the
    /// int8 forward path effectively computes with.
    #[must_use]
    pub fn dequantize(&self) -> Tensor {
        let cols = self.shape[1] * self.shape[2] * self.shape[3];
        let data = self
            .data
            .iter()
            .enumerate()
            .map(|(i, &q)| f32::from(q) * self.scales[i / cols])
            .collect();
        Tensor::from_vec(self.shape, data)
    }
}

/// A reduced-precision sidecar for one parameter tensor.
#[derive(Debug, Clone)]
pub enum QuantizedTensor {
    /// Weights round-tripped through binary16, stored dequantized so
    /// the f32 kernels run on them directly.
    F16(Tensor),
    /// Per-channel int8 weights for the integer GEMM path.
    Int8(Int8Tensor),
}

impl QuantizedTensor {
    /// Builds the sidecar for `mode`; `None` for [`PrecisionMode::F32`].
    #[must_use]
    pub fn build(mode: PrecisionMode, value: &Tensor) -> Option<Self> {
        match mode {
            PrecisionMode::F32 => None,
            PrecisionMode::F16 => {
                let mut t = value.clone();
                f16_round_tensor(&mut t);
                Some(QuantizedTensor::F16(t))
            }
            PrecisionMode::Int8 => Some(QuantizedTensor::Int8(Int8Tensor::quantize(value))),
        }
    }
}

/// Quantizes one activation sample to int8 with a symmetric dynamic
/// scale: `scale = max|x|/127` (1.0 for an all-zero sample). Returns
/// the scale; writes quantized values into `out`.
fn quantize_activation(x: &[f32], out: &mut [i8]) -> f32 {
    let max = x.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let scale = if max > 0.0 { max / 127.0 } else { 1.0 };
    for (q, &v) in out.iter_mut().zip(x) {
        *q = (v / scale).round().clamp(-127.0, 127.0) as i8;
    }
    scale
}

/// Int8 2-D convolution forward: integer taps accumulated in `i32`,
/// dequantized once per output with the fused `w_scale * x_scale` and
/// the f32 bias added last.
///
/// Activations are quantized **per sample**, so results do not depend
/// on how requests were batched; the integer accumulation is exact, so
/// they do not depend on the thread count either.
///
/// # Panics
///
/// Panics on shape mismatches or zero-sized outputs (mirrors the f32
/// kernel's contract).
#[must_use]
pub fn conv2d_int8_forward(
    x: &Tensor,
    w: &Int8Tensor,
    b: &Tensor,
    stride: usize,
    pad_h: usize,
    pad_w: usize,
) -> Tensor {
    let [n, ci, h, ww] = x.shape();
    let [co, ci_w, kh, kw] = w.shape();
    assert_eq!(ci, ci_w, "conv2d: input channel mismatch");
    assert_eq!(b.shape(), [1, co, 1, 1], "conv2d: bias shape");
    assert!(stride >= 1, "conv2d: stride must be >= 1");
    let ho = (h + 2 * pad_h - kh) / stride + 1;
    let wo = (ww + 2 * pad_w - kw) / stride + 1;
    assert!(ho > 0 && wo > 0, "conv2d: empty output");
    // Quantize activations once, per sample (scale from the sample's
    // own max, so batching never changes a sample's result).
    let xd = x.data();
    let sample = ci * h * ww;
    let mut xq = vec![0i8; n * sample];
    let mut xs = vec![1.0f32; n];
    for (ni, s) in xs.iter_mut().enumerate() {
        *s = quantize_activation(
            &xd[ni * sample..(ni + 1) * sample],
            &mut xq[ni * sample..(ni + 1) * sample],
        );
    }
    let wd = w.data();
    let ws = w.scales();
    let bd = b.data();
    let mut out = Tensor::zeros([n, co, ho, wo]);
    let od = out.data_mut();
    irf_runtime::par_chunks_mut(od, ho * wo, |blk, omap| {
        let ni = blk / co;
        let oc = blk % co;
        let scale = ws[oc] * xs[ni];
        let bias = bd[oc];
        let wrow = oc * ci * kh * kw;
        for oh in 0..ho {
            for ow in 0..wo {
                let mut acc = 0i32;
                for ic in 0..ci {
                    let xbase = (ni * ci + ic) * h * ww;
                    let wbase = wrow + ic * kh * kw;
                    for ky in 0..kh {
                        let iy = (oh * stride + ky) as isize - pad_h as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let xrowb = xbase + iy as usize * ww;
                        for kx in 0..kw {
                            let ix = (ow * stride + kx) as isize - pad_w as isize;
                            if ix < 0 || ix >= ww as isize {
                                continue;
                            }
                            acc += i32::from(wd[wbase + ky * kw + kx])
                                * i32::from(xq[xrowb + ix as usize]);
                        }
                    }
                }
                omap[oh * wo + ow] = acc as f32 * scale + bias;
            }
        }
    });
    out
}

/// Int8 dense linear forward on `(N, C, 1, 1)`: exact `i32`
/// accumulation per output, dequantized with the fused scale, bias
/// added last. Activation quantization is per sample.
///
/// # Panics
///
/// Panics on shape mismatches.
#[must_use]
pub fn linear_int8_forward(x: &Tensor, w: &Int8Tensor, b: &Tensor) -> Tensor {
    let [n, c, h, ww] = x.shape();
    assert_eq!((h, ww), (1, 1), "linear expects (N, C, 1, 1) input");
    let [o, ci, _, _] = w.shape();
    assert_eq!(ci, c, "linear weight input-dim mismatch");
    assert_eq!(b.shape(), [1, o, 1, 1], "linear bias shape");
    let xd = x.data();
    let wd = w.data();
    let ws = w.scales();
    let bd = b.data();
    let mut out = Tensor::zeros([n, o, 1, 1]);
    let od = out.data_mut();
    let mut xq = vec![0i8; n * c];
    let mut xs = vec![1.0f32; n];
    for ni in 0..n {
        xs[ni] = quantize_activation(&xd[ni * c..(ni + 1) * c], &mut xq[ni * c..(ni + 1) * c]);
    }
    irf_runtime::par_chunks_mut(od, o, |ni, orow| {
        let xrow = &xq[ni * c..(ni + 1) * c];
        for (oi, s) in orow.iter_mut().enumerate() {
            let mut acc = 0i32;
            let wrow = oi * c;
            for (cj, &xv) in xrow.iter().enumerate() {
                acc += i32::from(wd[wrow + cj]) * i32::from(xv);
            }
            *s = acc as f32 * (ws[oi] * xs[ni]) + bd[oi];
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f16_roundtrip_is_identity_on_f16_values() {
        // Every non-NaN f16 bit pattern must survive f16->f32->f16.
        for h in 0..=u16::MAX {
            let exp = (h >> 10) & 0x1f;
            let mant = h & 0x3ff;
            if exp == 0x1f && mant != 0 {
                continue; // NaN payloads need not round-trip bit-exactly
            }
            let f = f16_bits_to_f32(h);
            assert_eq!(f32_to_f16_bits(f), h, "bits {h:#06x} -> {f} diverged");
        }
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and the next f16;
        // RNE picks the even mantissa (1.0).
        assert_eq!(f16_round(1.0 + 2.0_f32.powi(-11)), 1.0);
        // Just above halfway rounds up.
        let up = f16_round(1.0 + 2.0_f32.powi(-11) + 2.0_f32.powi(-20));
        assert!((up - (1.0 + 2.0_f32.powi(-10))).abs() < 1e-7);
        // Large values overflow to infinity.
        assert!(f16_round(70000.0).is_infinite());
        // Subnormals survive.
        let tiny = 2.0_f32.powi(-24);
        assert_eq!(f16_round(tiny), tiny);
    }

    #[test]
    fn int8_quantization_roundtrip_error_is_bounded() {
        let w = Tensor::from_vec(
            [2, 1, 2, 2],
            vec![1.0, -0.5, 0.25, 0.7, 10.0, -3.0, 0.0, 5.0],
        );
        let q = Int8Tensor::quantize(&w);
        let dq = q.dequantize();
        for (i, (a, b)) in w.data().iter().zip(dq.data()).enumerate() {
            // Error bound: half a quantization step of the element's
            // channel (channel 0 max 1.0, channel 1 max 10.0).
            let step = if i < 4 { 1.0 / 127.0 } else { 10.0 / 127.0 };
            assert!((a - b).abs() <= 0.5 * step + 1e-6, "{a} vs {b}");
        }
        assert_eq!(q.scales().len(), 2);
    }

    #[test]
    fn int8_all_zero_channel_gets_unit_scale() {
        let w = Tensor::zeros([1, 1, 2, 2]);
        let q = Int8Tensor::quantize(&w);
        assert_eq!(q.scales(), &[1.0]);
        assert!(q.data().iter().all(|&v| v == 0));
    }

    #[test]
    fn conv2d_int8_matches_f32_within_quant_error() {
        let mut rng = irf_runtime::Xoshiro256pp::seed_from_u64(42);
        let x = Tensor::from_vec(
            [2, 3, 6, 6],
            (0..2 * 3 * 6 * 6)
                .map(|_| rng.random::<f32>() * 2.0 - 1.0)
                .collect(),
        );
        let w = Tensor::from_vec(
            [4, 3, 3, 3],
            (0..4 * 3 * 3 * 3)
                .map(|_| rng.random::<f32>() - 0.5)
                .collect(),
        );
        let b = Tensor::from_vec([1, 4, 1, 1], vec![0.1, -0.2, 0.3, 0.0]);
        let q = Int8Tensor::quantize(&w);
        let yq = conv2d_int8_forward(&x, &q, &b, 1, 1, 1);
        // Reference: dequantized weights through an exact f64 conv.
        let dq = q.dequantize();
        let [n, ci, h, ww2] = x.shape();
        let [co, _, kh, kw] = w.shape();
        for ni in 0..n {
            for oc in 0..co {
                for oh in 0..h {
                    for ow in 0..ww2 {
                        let mut acc = 0.0f64;
                        for ic in 0..ci {
                            for ky in 0..kh {
                                for kx in 0..kw {
                                    let iy = oh as isize + ky as isize - 1;
                                    let ix = ow as isize + kx as isize - 1;
                                    if iy < 0 || iy >= h as isize || ix < 0 || ix >= ww2 as isize {
                                        continue;
                                    }
                                    acc += f64::from(dq.at(oc, ic, ky, kx))
                                        * f64::from(x.at(ni, ic, iy as usize, ix as usize));
                                }
                            }
                        }
                        let got = yq.at(ni, oc, oh, ow);
                        let want = acc as f32 + b.at(0, oc, 0, 0);
                        // Activation quantization adds ~1% relative noise.
                        assert!(
                            (got - want).abs() < 0.25,
                            "({ni},{oc},{oh},{ow}): {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn conv2d_int8_is_batch_invariant() {
        let mut rng = irf_runtime::Xoshiro256pp::seed_from_u64(7);
        let mk = |rng: &mut irf_runtime::Xoshiro256pp| {
            Tensor::from_vec(
                [1, 2, 5, 5],
                (0..2 * 5 * 5)
                    .map(|_| rng.random::<f32>() * 3.0 - 1.5)
                    .collect(),
            )
        };
        let a = mk(&mut rng);
        let c = mk(&mut rng);
        let w = Tensor::from_vec(
            [3, 2, 3, 3],
            (0..3 * 2 * 3 * 3)
                .map(|_| rng.random::<f32>() - 0.5)
                .collect(),
        );
        let b = Tensor::from_vec([1, 3, 1, 1], vec![0.0, 0.1, -0.1]);
        let q = Int8Tensor::quantize(&w);
        let batched = Tensor::concat_batch(&[a.clone(), c.clone()]);
        let yb = conv2d_int8_forward(&batched, &q, &b, 1, 1, 1);
        let ya = conv2d_int8_forward(&a, &q, &b, 1, 1, 1);
        let yc = conv2d_int8_forward(&c, &q, &b, 1, 1, 1);
        let parts = yb.split_batch();
        assert_eq!(parts[0].data(), ya.data(), "sample 0 diverged in batch");
        assert_eq!(parts[1].data(), yc.data(), "sample 1 diverged in batch");
    }

    #[test]
    fn linear_int8_matches_f32_within_quant_error() {
        let x = Tensor::from_vec([1, 4, 1, 1], vec![1.0, -2.0, 0.5, 3.0]);
        let w = Tensor::from_vec([2, 4, 1, 1], vec![0.1, 0.2, -0.3, 0.4, 1.0, 0.0, -1.0, 0.5]);
        let b = Tensor::from_vec([1, 2, 1, 1], vec![0.05, -0.05]);
        let q = Int8Tensor::quantize(&w);
        let y = linear_int8_forward(&x, &q, &b);
        // f32 reference with exact weights.
        let want0 = 0.1 * 1.0 + 0.2 * -2.0 + -0.3 * 0.5 + 0.4 * 3.0 + 0.05;
        let want1 = 1.0 * 1.0 + 0.0 * -2.0 - 0.5 + 0.5 * 3.0 - 0.05;
        assert!((y.at(0, 0, 0, 0) - want0).abs() < 0.05);
        assert!((y.at(0, 1, 0, 0) - want1).abs() < 0.05);
    }

    #[test]
    fn precision_mode_ids_and_names_round_trip() {
        for m in [PrecisionMode::F32, PrecisionMode::F16, PrecisionMode::Int8] {
            assert_eq!(PrecisionMode::from_id(m.id()), Some(m));
            assert_eq!(PrecisionMode::parse(m.name()), Some(m));
        }
        assert_eq!(PrecisionMode::from_id(9), None);
        assert_eq!(PrecisionMode::parse("fp64"), None);
    }
}
