//! A small CPU deep-learning framework with tape-based automatic
//! differentiation.
//!
//! Rust has no mature GPU training stack, so the IR-Fusion
//! reproduction trains its convolutional models on this self-contained
//! framework (documented as a substitution in the repository's
//! DESIGN.md). It provides everything the paper's model zoo needs:
//!
//! - [`Tensor`]: dense NCHW `f32` tensors;
//! - [`Tape`]: a define-by-run autograd tape with 2-D convolution,
//!   pooling, nearest upsampling, channel/spatial attention
//!   primitives, concatenation, normalization and activations;
//! - [`ParamStore`]: named trainable parameters shared across forward
//!   passes, with [`init`] (Kaiming/Xavier), [`optim`] (SGD, Adam),
//!   [`loss`] (MAE/MSE/Huber + a Kirchhoff residual loss), and
//!   [`serialize`] (self-contained binary checkpoints).
//!
//! # Example
//!
//! ```
//! use irf_nn::{ParamStore, Tape, Tensor};
//! use irf_nn::layers::Conv2d;
//!
//! let mut store = ParamStore::new();
//! let conv = Conv2d::new(&mut store, "conv", 1, 4, 3, 1, 0x42);
//! let mut tape = Tape::new();
//! let x = tape.input(Tensor::zeros([2, 1, 8, 8]));
//! let y = conv.forward(&mut tape, &store, x);
//! assert_eq!(tape.value(y).shape(), [2, 4, 8, 8]);
//! ```
// The scalar-only default build carries no unsafe code at all; the
// `simd` feature admits it solely inside the AVX2 kernel module and
// its call sites, each carrying a narrow `#[allow]` + SAFETY comment.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod param;
pub mod quant;
pub mod serialize;
mod simd;
pub mod tape;
pub mod tensor;

pub use param::{ParamId, ParamStore};
pub use quant::PrecisionMode;
pub use tape::{NodeId, Tape};
pub use tensor::Tensor;
