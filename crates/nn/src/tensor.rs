//! Dense NCHW tensors.

use std::fmt;

/// A dense 4-D tensor in NCHW layout backed by a `Vec<f32>`.
///
/// All model activations and parameters use this one type; vectors and
/// matrices are represented with singleton trailing dimensions, e.g. a
/// linear-layer weight of shape `[out, in, 1, 1]`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: [usize; 4],
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor{:?} (numel {}, mean {:.4})",
            self.shape,
            self.numel(),
            self.mean()
        )
    }
}

impl Tensor {
    /// Creates a zero tensor of the given shape.
    #[must_use]
    pub fn zeros(shape: [usize; 4]) -> Self {
        Tensor {
            shape,
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Creates a tensor filled with `value`.
    #[must_use]
    pub fn filled(shape: [usize; 4], value: f32) -> Self {
        Tensor {
            shape,
            data: vec![value; shape.iter().product()],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if the buffer size does not match the shape.
    #[must_use]
    pub fn from_vec(shape: [usize; 4], data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "tensor buffer size mismatch for shape {shape:?}"
        );
        Tensor { shape, data }
    }

    /// The NCHW shape.
    #[must_use]
    pub fn shape(&self) -> [usize; 4] {
        self.shape
    }

    /// Total number of elements.
    #[must_use]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Raw buffer.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Flat index of `(n, c, h, w)`.
    #[inline]
    #[must_use]
    pub fn offset(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        let [_, cs, hs, ws] = self.shape;
        ((n * cs + c) * hs + h) * ws + w
    }

    /// Value at `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    #[must_use]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        let [ns, cs, hs, ws] = self.shape;
        assert!(
            n < ns && c < cs && h < hs && w < ws,
            "tensor index out of bounds"
        );
        self.data[self.offset(n, c, h, w)]
    }

    /// Sets the value at `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let [ns, cs, hs, ws] = self.shape;
        assert!(
            n < ns && c < cs && h < hs && w < ws,
            "tensor index out of bounds"
        );
        let o = self.offset(n, c, h, w);
        self.data[o] = v;
    }

    /// Reshapes without copying.
    ///
    /// # Panics
    ///
    /// Panics if the element count changes.
    #[must_use]
    pub fn reshape(self, shape: [usize; 4]) -> Tensor {
        assert_eq!(
            self.numel(),
            shape.iter().product::<usize>(),
            "reshape must preserve element count"
        );
        Tensor {
            shape,
            data: self.data,
        }
    }

    /// Mean of all elements (`0.0` for empty tensors).
    #[must_use]
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Maximum absolute element.
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, v| m.max(v.abs()))
    }

    /// Elementwise `self + other` into a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    #[must_use]
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape, other.shape, "tensor add: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            shape: self.shape,
            data,
        }
    }

    /// Elementwise scale into a new tensor.
    #[must_use]
    pub fn scale(&self, c: f32) -> Tensor {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|v| v * c).collect(),
        }
    }

    /// `true` if every element is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Stacks tensors along the batch dimension: `k` inputs of shape
    /// `(n_i, C, H, W)` become one `(sum n_i, C, H, W)` tensor. Sample
    /// data is copied verbatim in input order, so element `b` of the
    /// result is bit-for-bit the corresponding input sample — the
    /// foundation of the batched-inference path.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the C/H/W dims disagree.
    #[must_use]
    pub fn concat_batch(parts: &[Tensor]) -> Tensor {
        let first = parts.first().expect("concat_batch needs >= 1 tensor");
        let [_, c, h, w] = first.shape;
        let n_total: usize = parts
            .iter()
            .map(|t| {
                assert_eq!(
                    (t.shape[1], t.shape[2], t.shape[3]),
                    (c, h, w),
                    "concat_batch: C/H/W mismatch"
                );
                t.shape[0]
            })
            .sum();
        let mut data = Vec::with_capacity(n_total * c * h * w);
        for t in parts {
            data.extend_from_slice(&t.data);
        }
        Tensor {
            shape: [n_total, c, h, w],
            data,
        }
    }

    /// Splits a `(N, C, H, W)` tensor into `N` tensors of shape
    /// `(1, C, H, W)` — the inverse of [`Tensor::concat_batch`] for
    /// single-sample inputs.
    #[must_use]
    pub fn split_batch(&self) -> Vec<Tensor> {
        let [n, c, h, w] = self.shape;
        let stride = c * h * w;
        (0..n)
            .map(|b| Tensor {
                shape: [1, c, h, w],
                data: self.data[b * stride..(b + 1) * stride].to_vec(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_split_batch_roundtrip() {
        let a = Tensor::from_vec([1, 2, 2, 2], (0..8).map(|i| i as f32 * 0.5).collect());
        let b = Tensor::from_vec([2, 2, 2, 2], (0..16).map(|i| -(i as f32)).collect());
        let stacked = Tensor::concat_batch(&[a.clone(), b.clone()]);
        assert_eq!(stacked.shape(), [3, 2, 2, 2]);
        let parts = stacked.split_batch();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1].data(), &b.data()[..8]);
        assert_eq!(parts[2].data(), &b.data()[8..]);
    }

    #[test]
    #[should_panic(expected = "concat_batch: C/H/W mismatch")]
    fn concat_batch_rejects_mismatched_shapes() {
        let a = Tensor::zeros([1, 2, 2, 2]);
        let b = Tensor::zeros([1, 3, 2, 2]);
        let _ = Tensor::concat_batch(&[a, b]);
    }

    #[test]
    fn zeros_and_filled() {
        let z = Tensor::zeros([1, 2, 3, 4]);
        assert_eq!(z.numel(), 24);
        assert_eq!(z.mean(), 0.0);
        let f = Tensor::filled([1, 1, 2, 2], 3.0);
        assert_eq!(f.mean(), 3.0);
    }

    #[test]
    fn indexing_is_row_major_nchw() {
        let mut t = Tensor::zeros([2, 3, 4, 5]);
        t.set(1, 2, 3, 4, 9.0);
        assert_eq!(t.at(1, 2, 3, 4), 9.0);
        assert_eq!(t.data()[t.offset(1, 2, 3, 4)], 9.0);
        assert_eq!(t.offset(0, 0, 0, 1), 1);
        assert_eq!(t.offset(0, 0, 1, 0), 5);
        assert_eq!(t.offset(0, 1, 0, 0), 20);
        assert_eq!(t.offset(1, 0, 0, 0), 60);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let t = Tensor::zeros([1, 1, 2, 2]);
        let _ = t.at(0, 0, 2, 0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let r = t.reshape([1, 4, 1, 1]);
        assert_eq!(r.at(0, 3, 0, 0), 4.0);
    }

    #[test]
    #[should_panic(expected = "preserve element count")]
    fn bad_reshape_panics() {
        let _ = Tensor::zeros([1, 1, 2, 2]).reshape([1, 1, 3, 3]);
    }

    #[test]
    fn arithmetic_helpers() {
        let a = Tensor::from_vec([1, 1, 1, 2], vec![1.0, -2.0]);
        let b = Tensor::from_vec([1, 1, 1, 2], vec![0.5, 0.5]);
        assert_eq!(a.add(&b).data(), &[1.5, -1.5]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0]);
        assert_eq!(a.max_abs(), 2.0);
        assert!(a.is_finite());
        let bad = Tensor::from_vec([1, 1, 1, 1], vec![f32::NAN]);
        assert!(!bad.is_finite());
    }
}
