//! Weight initialization (Kaiming / Xavier).

use crate::tensor::Tensor;
use irf_runtime::Xoshiro256pp;

/// Kaiming (He) uniform initialization for a conv/linear weight of
/// shape `(out, in, kh, kw)`: `U(-b, b)` with `b = sqrt(6 / fan_in)`,
/// the standard choice before ReLU activations.
#[must_use]
pub fn kaiming_uniform(shape: [usize; 4], seed: u64) -> Tensor {
    let fan_in = (shape[1] * shape[2] * shape[3]).max(1) as f32;
    let bound = (6.0 / fan_in).sqrt();
    uniform(shape, -bound, bound, seed)
}

/// Xavier (Glorot) uniform initialization: `b = sqrt(6 / (fan_in +
/// fan_out))`, preferred before sigmoid gates.
#[must_use]
pub fn xavier_uniform(shape: [usize; 4], seed: u64) -> Tensor {
    let fan_in = (shape[1] * shape[2] * shape[3]).max(1) as f32;
    let fan_out = (shape[0] * shape[2] * shape[3]).max(1) as f32;
    let bound = (6.0 / (fan_in + fan_out)).sqrt();
    uniform(shape, -bound, bound, seed)
}

/// Uniform initialization on `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
#[must_use]
pub fn uniform(shape: [usize; 4], lo: f32, hi: f32, seed: u64) -> Tensor {
    assert!(lo < hi, "uniform init: empty range");
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let n = shape.iter().product();
    let data = (0..n).map(|_| rng.random_range(lo..hi)).collect();
    Tensor::from_vec(shape, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaiming_respects_bound() {
        let t = kaiming_uniform([8, 4, 3, 3], 1);
        let bound = (6.0_f32 / 36.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
        // Not degenerate.
        assert!(t.max_abs() > bound * 0.5);
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        assert_eq!(
            kaiming_uniform([2, 2, 3, 3], 7),
            kaiming_uniform([2, 2, 3, 3], 7)
        );
        assert_ne!(
            kaiming_uniform([2, 2, 3, 3], 7),
            kaiming_uniform([2, 2, 3, 3], 8)
        );
    }

    #[test]
    fn xavier_bound_is_tighter_for_wide_layers() {
        let k = kaiming_uniform([100, 4, 1, 1], 3).max_abs();
        let x = xavier_uniform([100, 4, 1, 1], 3).max_abs();
        assert!(x <= k + 1e-6);
    }
}
