//! Optimizers over a [`ParamStore`].

use crate::param::ParamStore;

/// Stochastic gradient descent with momentum.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (`0.0` disables momentum).
    pub momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates the optimizer.
    #[must_use]
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update using the store's accumulated gradients,
    /// then zeroes them.
    pub fn step(&mut self, store: &mut ParamStore) {
        if self.velocity.len() != store.len() {
            self.velocity = (0..store.len())
                .map(|i| vec![0.0; store.value(crate::param::ParamId(i)).numel()])
                .collect();
        }
        for i in 0..store.len() {
            let id = crate::param::ParamId(i);
            let grad: Vec<f32> = store.grad(id).data().to_vec();
            let vel = &mut self.velocity[i];
            let value = store.value_mut(id);
            for ((v, g), vel) in value.data_mut().iter_mut().zip(&grad).zip(vel.iter_mut()) {
                *vel = self.momentum * *vel + g;
                *v -= self.lr * *vel;
            }
        }
        store.zero_grads();
    }
}

/// Adam (Kingma & Ba) with bias correction — the default optimizer of
/// the training pipeline.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with standard betas `(0.9, 0.999)`.
    #[must_use]
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Applies one update using the store's accumulated gradients,
    /// then zeroes them.
    pub fn step(&mut self, store: &mut ParamStore) {
        if self.m.len() != store.len() {
            self.m = (0..store.len())
                .map(|i| vec![0.0; store.value(crate::param::ParamId(i)).numel()])
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let b1c = 1.0 - self.beta1.powi(self.t as i32);
        let b2c = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..store.len() {
            let id = crate::param::ParamId(i);
            let grad: Vec<f32> = store.grad(id).data().to_vec();
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            let value = store.value_mut(id);
            for (((p, g), mi), vi) in value
                .data_mut()
                .iter_mut()
                .zip(&grad)
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let mhat = *mi / b1c;
                let vhat = *vi / b2c;
                *p -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
        store.zero_grads();
    }
}

/// A step-decay learning-rate schedule with optional linear warmup:
/// `lr(e) = base * decay^(e / step)` after `warmup` epochs of linear
/// ramp from `base / 10`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrSchedule {
    /// Peak learning rate.
    pub base: f32,
    /// Epochs of linear warmup (0 disables).
    pub warmup: usize,
    /// Multiplier applied every `step` epochs.
    pub decay: f32,
    /// Epochs between decays.
    pub step: usize,
}

impl LrSchedule {
    /// A constant schedule at `base`.
    #[must_use]
    pub fn constant(base: f32) -> Self {
        LrSchedule {
            base,
            warmup: 0,
            decay: 1.0,
            step: 1,
        }
    }

    /// The learning rate for `epoch` (0-based).
    #[must_use]
    pub fn at(&self, epoch: usize) -> f32 {
        if epoch < self.warmup {
            let t = (epoch + 1) as f32 / self.warmup as f32;
            return self.base * (0.1 + 0.9 * t);
        }
        let steps = (epoch - self.warmup) / self.step.max(1);
        self.base * self.decay.powi(i32::try_from(steps).unwrap_or(i32::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamStore;
    use crate::tensor::Tensor;

    #[test]
    fn constant_schedule_is_flat() {
        let s = LrSchedule::constant(1e-3);
        assert_eq!(s.at(0), 1e-3);
        assert_eq!(s.at(100), 1e-3);
    }

    #[test]
    fn warmup_ramps_then_decays() {
        let s = LrSchedule {
            base: 1.0,
            warmup: 2,
            decay: 0.5,
            step: 2,
        };
        assert!(s.at(0) < s.at(1));
        assert!(s.at(1) <= 1.0);
        assert_eq!(s.at(2), 1.0); // first post-warmup epoch at base
        assert_eq!(s.at(4), 0.5);
        assert_eq!(s.at(6), 0.25);
    }

    /// Minimizes `f(w) = (w - 3)^2` whose gradient is `2 (w - 3)`.
    fn quadratic_grad(store: &ParamStore, id: crate::param::ParamId) -> Tensor {
        let w = store.value(id).data()[0];
        Tensor::from_vec([1, 1, 1, 1], vec![2.0 * (w - 3.0)])
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::zeros([1, 1, 1, 1]));
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..100 {
            let g = quadratic_grad(&store, id);
            store.accumulate_grad(id, &g);
            opt.step(&mut store);
        }
        assert!((store.value(id).data()[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |momentum: f32| {
            let mut store = ParamStore::new();
            let id = store.register("w", Tensor::zeros([1, 1, 1, 1]));
            let mut opt = Sgd::new(0.02, momentum);
            for _ in 0..40 {
                let g = quadratic_grad(&store, id);
                store.accumulate_grad(id, &g);
                opt.step(&mut store);
            }
            (store.value(id).data()[0] - 3.0).abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::zeros([1, 1, 1, 1]));
        let mut opt = Adam::new(0.3);
        for _ in 0..200 {
            let g = quadratic_grad(&store, id);
            store.accumulate_grad(id, &g);
            opt.step(&mut store);
        }
        assert!((store.value(id).data()[0] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::zeros([1, 1, 1, 1]));
        store.accumulate_grad(id, &Tensor::filled([1, 1, 1, 1], 1.0));
        let mut opt = Adam::new(0.1);
        opt.step(&mut store);
        assert_eq!(store.grad(id).data(), &[0.0]);
    }
}
