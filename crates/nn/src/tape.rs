//! Define-by-run autograd tape.
//!
//! Every forward pass records operations onto a fresh [`Tape`]; calling
//! [`Tape::backward`] with a seed gradient (normally `dL/d pred` from a
//! [`crate::loss`] function) walks the tape in reverse and accumulates
//! parameter gradients into the [`ParamStore`].

use std::sync::Arc;

use crate::param::{ParamId, ParamStore};
use crate::quant::{self, PrecisionMode, QuantizedTensor};
use crate::tensor::Tensor;

/// Handle to a node (an intermediate tensor) on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(usize);

/// Recorded operation, with enough information for the backward pass.
#[derive(Debug, Clone)]
enum Op {
    /// External input; no gradient is propagated.
    Input,
    /// Parameter read from the store; gradient flows to `ParamId`.
    Param(ParamId),
    /// 2-D convolution with zero padding.
    Conv2d {
        x: NodeId,
        w: NodeId,
        b: NodeId,
        stride: usize,
        pad_h: usize,
        pad_w: usize,
    },
    Relu {
        x: NodeId,
    },
    LeakyRelu {
        x: NodeId,
        slope: f32,
    },
    Sigmoid {
        x: NodeId,
    },
    Add {
        a: NodeId,
        b: NodeId,
    },
    Mul {
        a: NodeId,
        b: NodeId,
    },
    Scale {
        x: NodeId,
        c: f32,
    },
    /// Concatenate along the channel dimension.
    ConcatChannels {
        a: NodeId,
        b: NodeId,
    },
    /// 2x2 max pooling with stride 2; argmax saved for backward.
    MaxPool2 {
        x: NodeId,
        argmax: Vec<usize>,
    },
    /// 2x2 average pooling with stride 2.
    AvgPool2 {
        x: NodeId,
    },
    /// Nearest-neighbour 2x upsampling.
    Upsample2 {
        x: NodeId,
    },
    /// Global average pool to `(N, C, 1, 1)`.
    GlobalAvgPool {
        x: NodeId,
    },
    /// Global max pool to `(N, C, 1, 1)`; argmax saved.
    GlobalMaxPool {
        x: NodeId,
        argmax: Vec<usize>,
    },
    /// Broadcast-multiply by per-channel scales `(N, C, 1, 1)`.
    MulChannel {
        x: NodeId,
        s: NodeId,
    },
    /// Broadcast-multiply by a spatial mask `(N, 1, H, W)`.
    MulSpatial {
        x: NodeId,
        s: NodeId,
    },
    /// Mean over channels to `(N, 1, H, W)`.
    ChannelMean {
        x: NodeId,
    },
    /// Max over channels to `(N, 1, H, W)`; arg channel saved.
    ChannelMax {
        x: NodeId,
        argmax: Vec<usize>,
    },
    /// Fully connected on `(N, C, 1, 1)` inputs.
    Linear {
        x: NodeId,
        w: NodeId,
        b: NodeId,
    },
    /// Per-(n, c) normalization over H x W with affine parameters;
    /// saved statistics for backward.
    InstanceNorm {
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
        mean: Vec<f32>,
        inv_std: Vec<f32>,
    },
}

/// The autograd tape. See the [module documentation](self).
#[derive(Debug, Default)]
pub struct Tape {
    ops: Vec<Op>,
    values: Vec<Tensor>,
    grads: Vec<Option<Tensor>>,
    needs_grad: Vec<bool>,
    /// Reduced-precision sidecar per node (populated for `Param` nodes
    /// whose store carries one); consumed by conv2d/linear when
    /// `precision != F32`.
    node_quant: Vec<Option<Arc<QuantizedTensor>>>,
    /// Forward-pass precision; `F32` unless set by
    /// [`Tape::set_precision`]. Non-f32 tapes are inference-only.
    precision: PrecisionMode,
}

impl Tape {
    /// Creates an empty tape.
    #[must_use]
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of recorded nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The value tensor of a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this tape.
    #[must_use]
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.values[id.0]
    }

    /// The gradient of a node after [`Tape::backward`]; `None` if the
    /// node did not require gradients or backward has not run.
    #[must_use]
    pub fn grad(&self, id: NodeId) -> Option<&Tensor> {
        self.grads[id.0].as_ref()
    }

    fn push(&mut self, op: Op, value: Tensor, needs_grad: bool) -> NodeId {
        let id = NodeId(self.ops.len());
        self.ops.push(op);
        self.values.push(value);
        self.grads.push(None);
        self.needs_grad.push(needs_grad);
        self.node_quant.push(None);
        id
    }

    /// Selects the forward precision for subsequently recorded
    /// conv2d/linear nodes. Non-f32 modes take effect only where the
    /// parameter store carries matching sidecars (see
    /// [`ParamStore::quantize`]); such tapes are **inference-only** —
    /// [`Tape::backward`] refuses to run on them.
    pub fn set_precision(&mut self, mode: PrecisionMode) {
        self.precision = mode;
    }

    /// The tape's forward precision.
    #[must_use]
    pub fn precision(&self) -> PrecisionMode {
        self.precision
    }

    fn ng(&self, id: NodeId) -> bool {
        self.needs_grad[id.0]
    }

    /// Records an external input (no gradient).
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(Op::Input, value, false)
    }

    /// Records a differentiable leaf that is *not* a stored parameter
    /// (used by tests and by losses that need input gradients).
    pub fn leaf(&mut self, value: Tensor) -> NodeId {
        self.push(Op::Input, value, true)
    }

    /// Reads a parameter from the store onto the tape, carrying along
    /// any reduced-precision sidecar the store holds for it.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        let node = self.push(Op::Param(id), store.value(id).clone(), true);
        if self.precision != PrecisionMode::F32 {
            self.node_quant[node.0] = store.quant(id).cloned();
        }
        node
    }

    /// 2-D convolution: `x (N,Ci,H,W) * w (Co,Ci,kh,kw) + b (1,Co,1,1)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches or zero-sized outputs.
    pub fn conv2d(&mut self, x: NodeId, w: NodeId, b: NodeId, stride: usize, pad: usize) -> NodeId {
        self.conv2d_padded(x, w, b, stride, pad, pad)
    }

    /// 2-D convolution with stride 1 and independent vertical /
    /// horizontal padding — used by Inception's factorized `1xN` /
    /// `Nx1` kernels.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches or zero-sized outputs.
    pub fn conv2d_rect(
        &mut self,
        x: NodeId,
        w: NodeId,
        b: NodeId,
        pad_h: usize,
        pad_w: usize,
    ) -> NodeId {
        self.conv2d_padded(x, w, b, 1, pad_h, pad_w)
    }

    fn conv2d_padded(
        &mut self,
        x: NodeId,
        w: NodeId,
        b: NodeId,
        stride: usize,
        pad_h: usize,
        pad_w: usize,
    ) -> NodeId {
        let value = match (self.precision, self.node_quant[w.0].as_deref()) {
            (PrecisionMode::Int8, Some(QuantizedTensor::Int8(wq))) => {
                quant::conv2d_int8_forward(self.value(x), wq, self.value(b), stride, pad_h, pad_w)
            }
            (PrecisionMode::F16, Some(QuantizedTensor::F16(wq))) => {
                let mut v = conv2d_forward(self.value(x), wq, self.value(b), stride, pad_h, pad_w);
                quant::f16_round_tensor(&mut v);
                v
            }
            _ => conv2d_forward(
                self.value(x),
                self.value(w),
                self.value(b),
                stride,
                pad_h,
                pad_w,
            ),
        };
        let needs = self.ng(x) || self.ng(w) || self.ng(b);
        self.push(
            Op::Conv2d {
                x,
                w,
                b,
                stride,
                pad_h,
                pad_w,
            },
            value,
            needs,
        )
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, x: NodeId) -> NodeId {
        let value = Tensor::from_vec(
            self.value(x).shape(),
            self.value(x).data().iter().map(|v| v.max(0.0)).collect(),
        );
        let needs = self.ng(x);
        self.push(Op::Relu { x }, value, needs)
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&mut self, x: NodeId, slope: f32) -> NodeId {
        let value = Tensor::from_vec(
            self.value(x).shape(),
            self.value(x)
                .data()
                .iter()
                .map(|&v| if v > 0.0 { v } else { slope * v })
                .collect(),
        );
        let needs = self.ng(x);
        self.push(Op::LeakyRelu { x, slope }, value, needs)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: NodeId) -> NodeId {
        let value = Tensor::from_vec(
            self.value(x).shape(),
            self.value(x)
                .data()
                .iter()
                .map(|v| 1.0 / (1.0 + (-v).exp()))
                .collect(),
        );
        let needs = self.ng(x);
        self.push(Op::Sigmoid { x }, value, needs)
    }

    /// Elementwise addition of equal-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        assert_eq!(
            self.value(a).shape(),
            self.value(b).shape(),
            "add: shape mismatch"
        );
        let value = self.value(a).add(self.value(b));
        let needs = self.ng(a) || self.ng(b);
        self.push(Op::Add { a, b }, value, needs)
    }

    /// Elementwise product of equal-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        assert_eq!(
            self.value(a).shape(),
            self.value(b).shape(),
            "mul: shape mismatch"
        );
        let value = Tensor::from_vec(
            self.value(a).shape(),
            self.value(a)
                .data()
                .iter()
                .zip(self.value(b).data())
                .map(|(p, q)| p * q)
                .collect(),
        );
        let needs = self.ng(a) || self.ng(b);
        self.push(Op::Mul { a, b }, value, needs)
    }

    /// Multiplies by a constant.
    pub fn scale(&mut self, x: NodeId, c: f32) -> NodeId {
        let value = self.value(x).scale(c);
        let needs = self.ng(x);
        self.push(Op::Scale { x, c }, value, needs)
    }

    /// Concatenates along channels: `(N, Ca+Cb, H, W)`.
    ///
    /// # Panics
    ///
    /// Panics if N/H/W differ.
    pub fn concat_channels(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let [na, ca, ha, wa] = self.value(a).shape();
        let [nb, cb, hb, wb] = self.value(b).shape();
        assert_eq!((na, ha, wa), (nb, hb, wb), "concat: N/H/W mismatch");
        let mut out = Tensor::zeros([na, ca + cb, ha, wa]);
        for n in 0..na {
            for c in 0..ca {
                for h in 0..ha {
                    for w in 0..wa {
                        out.set(n, c, h, w, self.value(a).at(n, c, h, w));
                    }
                }
            }
            for c in 0..cb {
                for h in 0..ha {
                    for w in 0..wa {
                        out.set(n, ca + c, h, w, self.value(b).at(n, c, h, w));
                    }
                }
            }
        }
        let needs = self.ng(a) || self.ng(b);
        self.push(Op::ConcatChannels { a, b }, out, needs)
    }

    /// 2x2 max pooling with stride 2 (requires even H and W).
    ///
    /// # Panics
    ///
    /// Panics on odd spatial dimensions.
    pub fn max_pool2(&mut self, x: NodeId) -> NodeId {
        let xv = self.value(x);
        let [n, c, h, w] = xv.shape();
        assert!(h % 2 == 0 && w % 2 == 0, "max_pool2 requires even H and W");
        let (ho, wo) = (h / 2, w / 2);
        let mut out = Tensor::zeros([n, c, ho, wo]);
        let mut argmax = vec![0usize; n * c * ho * wo];
        let mut k = 0;
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..ho {
                    for wi in 0..wo {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_off = 0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let off = xv.offset(ni, ci, 2 * hi + dy, 2 * wi + dx);
                                let v = xv.data()[off];
                                if v > best {
                                    best = v;
                                    best_off = off;
                                }
                            }
                        }
                        out.set(ni, ci, hi, wi, best);
                        argmax[k] = best_off;
                        k += 1;
                    }
                }
            }
        }
        let needs = self.ng(x);
        self.push(Op::MaxPool2 { x, argmax }, out, needs)
    }

    /// 2x2 average pooling with stride 2 (requires even H and W).
    ///
    /// # Panics
    ///
    /// Panics on odd spatial dimensions.
    pub fn avg_pool2(&mut self, x: NodeId) -> NodeId {
        let xv = self.value(x);
        let [n, c, h, w] = xv.shape();
        assert!(h % 2 == 0 && w % 2 == 0, "avg_pool2 requires even H and W");
        let (ho, wo) = (h / 2, w / 2);
        let mut out = Tensor::zeros([n, c, ho, wo]);
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..ho {
                    for wi in 0..wo {
                        let mut s = 0.0;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                s += xv.at(ni, ci, 2 * hi + dy, 2 * wi + dx);
                            }
                        }
                        out.set(ni, ci, hi, wi, s / 4.0);
                    }
                }
            }
        }
        let needs = self.ng(x);
        self.push(Op::AvgPool2 { x }, out, needs)
    }

    /// Nearest-neighbour 2x upsampling.
    pub fn upsample2(&mut self, x: NodeId) -> NodeId {
        let xv = self.value(x);
        let [n, c, h, w] = xv.shape();
        let mut out = Tensor::zeros([n, c, 2 * h, 2 * w]);
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        let v = xv.at(ni, ci, hi, wi);
                        for dy in 0..2 {
                            for dx in 0..2 {
                                out.set(ni, ci, 2 * hi + dy, 2 * wi + dx, v);
                            }
                        }
                    }
                }
            }
        }
        let needs = self.ng(x);
        self.push(Op::Upsample2 { x }, out, needs)
    }

    /// Global average pooling to `(N, C, 1, 1)`.
    pub fn global_avg_pool(&mut self, x: NodeId) -> NodeId {
        let xv = self.value(x);
        let [n, c, h, w] = xv.shape();
        let mut out = Tensor::zeros([n, c, 1, 1]);
        for ni in 0..n {
            for ci in 0..c {
                let mut s = 0.0;
                for hi in 0..h {
                    for wi in 0..w {
                        s += xv.at(ni, ci, hi, wi);
                    }
                }
                out.set(ni, ci, 0, 0, s / (h * w) as f32);
            }
        }
        let needs = self.ng(x);
        self.push(Op::GlobalAvgPool { x }, out, needs)
    }

    /// Global max pooling to `(N, C, 1, 1)`.
    pub fn global_max_pool(&mut self, x: NodeId) -> NodeId {
        let xv = self.value(x);
        let [n, c, h, w] = xv.shape();
        let mut out = Tensor::zeros([n, c, 1, 1]);
        let mut argmax = vec![0usize; n * c];
        for ni in 0..n {
            for ci in 0..c {
                let mut best = f32::NEG_INFINITY;
                let mut best_off = 0;
                for hi in 0..h {
                    for wi in 0..w {
                        let off = xv.offset(ni, ci, hi, wi);
                        if xv.data()[off] > best {
                            best = xv.data()[off];
                            best_off = off;
                        }
                    }
                }
                out.set(ni, ci, 0, 0, best);
                argmax[ni * c + ci] = best_off;
            }
        }
        let needs = self.ng(x);
        self.push(Op::GlobalMaxPool { x, argmax }, out, needs)
    }

    /// Multiplies `x (N,C,H,W)` by per-channel scales `s (N,C,1,1)` —
    /// the channel-attention application of CBAM.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not `(N, C, 1, 1)` for `x`'s N and C.
    pub fn mul_channel(&mut self, x: NodeId, s: NodeId) -> NodeId {
        let [n, c, h, w] = self.value(x).shape();
        assert_eq!(
            self.value(s).shape(),
            [n, c, 1, 1],
            "mul_channel scale shape"
        );
        let mut out = Tensor::zeros([n, c, h, w]);
        for ni in 0..n {
            for ci in 0..c {
                let sc = self.value(s).at(ni, ci, 0, 0);
                for hi in 0..h {
                    for wi in 0..w {
                        out.set(ni, ci, hi, wi, self.value(x).at(ni, ci, hi, wi) * sc);
                    }
                }
            }
        }
        let needs = self.ng(x) || self.ng(s);
        self.push(Op::MulChannel { x, s }, out, needs)
    }

    /// Multiplies `x (N,C,H,W)` by a spatial mask `s (N,1,H,W)` — the
    /// spatial-attention application of CBAM and of attention gates.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not `(N, 1, H, W)` for `x`'s N, H, W.
    pub fn mul_spatial(&mut self, x: NodeId, s: NodeId) -> NodeId {
        let [n, c, h, w] = self.value(x).shape();
        assert_eq!(
            self.value(s).shape(),
            [n, 1, h, w],
            "mul_spatial mask shape"
        );
        let mut out = Tensor::zeros([n, c, h, w]);
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        out.set(
                            ni,
                            ci,
                            hi,
                            wi,
                            self.value(x).at(ni, ci, hi, wi) * self.value(s).at(ni, 0, hi, wi),
                        );
                    }
                }
            }
        }
        let needs = self.ng(x) || self.ng(s);
        self.push(Op::MulSpatial { x, s }, out, needs)
    }

    /// Mean over channels to `(N, 1, H, W)`.
    pub fn channel_mean(&mut self, x: NodeId) -> NodeId {
        let xv = self.value(x);
        let [n, c, h, w] = xv.shape();
        let mut out = Tensor::zeros([n, 1, h, w]);
        for ni in 0..n {
            for hi in 0..h {
                for wi in 0..w {
                    let mut s = 0.0;
                    for ci in 0..c {
                        s += xv.at(ni, ci, hi, wi);
                    }
                    out.set(ni, 0, hi, wi, s / c as f32);
                }
            }
        }
        let needs = self.ng(x);
        self.push(Op::ChannelMean { x }, out, needs)
    }

    /// Max over channels to `(N, 1, H, W)`.
    pub fn channel_max(&mut self, x: NodeId) -> NodeId {
        let xv = self.value(x);
        let [n, c, h, w] = xv.shape();
        let mut out = Tensor::zeros([n, 1, h, w]);
        let mut argmax = vec![0usize; n * h * w];
        for ni in 0..n {
            for hi in 0..h {
                for wi in 0..w {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_c = 0;
                    for ci in 0..c {
                        let v = xv.at(ni, ci, hi, wi);
                        if v > best {
                            best = v;
                            best_c = ci;
                        }
                    }
                    out.set(ni, 0, hi, wi, best);
                    argmax[(ni * h + hi) * w + wi] = best_c;
                }
            }
        }
        let needs = self.ng(x);
        self.push(Op::ChannelMax { x, argmax }, out, needs)
    }

    /// Fully connected layer on `(N, C, 1, 1)`: `y = W x + b` with
    /// `w (O, C, 1, 1)` and `b (1, O, 1, 1)`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn linear(&mut self, x: NodeId, w: NodeId, b: NodeId) -> NodeId {
        let [_, c, h, ww] = self.value(x).shape();
        assert_eq!((h, ww), (1, 1), "linear expects (N, C, 1, 1) input");
        let [o, ci, _, _] = self.value(w).shape();
        assert_eq!(ci, c, "linear weight input-dim mismatch");
        assert_eq!(self.value(b).shape(), [1, o, 1, 1], "linear bias shape");
        let out = match (self.precision, self.node_quant[w.0].as_deref()) {
            (PrecisionMode::Int8, Some(QuantizedTensor::Int8(wq))) => {
                quant::linear_int8_forward(self.value(x), wq, self.value(b))
            }
            (PrecisionMode::F16, Some(QuantizedTensor::F16(wq))) => {
                let mut v = linear_forward(self.value(x), wq, self.value(b));
                quant::f16_round_tensor(&mut v);
                v
            }
            _ => linear_forward(self.value(x), self.value(w), self.value(b)),
        };
        let needs = self.ng(x) || self.ng(w) || self.ng(b);
        self.push(Op::Linear { x, w, b }, out, needs)
    }

    /// Instance normalization over H x W per `(n, c)`, with affine
    /// scale `gamma (1, C, 1, 1)` and shift `beta (1, C, 1, 1)`.
    ///
    /// This plays the role of the batch norm in the paper's models;
    /// with the small batches CPU training affords, per-instance
    /// statistics are the standard stable substitute.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn instance_norm(&mut self, x: NodeId, gamma: NodeId, beta: NodeId, eps: f32) -> NodeId {
        let xv = self.value(x);
        let [n, c, h, w] = xv.shape();
        assert_eq!(self.value(gamma).shape(), [1, c, 1, 1], "gamma shape");
        assert_eq!(self.value(beta).shape(), [1, c, 1, 1], "beta shape");
        let m = (h * w) as f32;
        let mut out = Tensor::zeros([n, c, h, w]);
        let mut means = vec![0.0f32; n * c];
        let mut inv_stds = vec![0.0f32; n * c];
        for ni in 0..n {
            for ci in 0..c {
                let mut s = 0.0;
                for hi in 0..h {
                    for wi in 0..w {
                        s += xv.at(ni, ci, hi, wi);
                    }
                }
                let mean = s / m;
                let mut var = 0.0;
                for hi in 0..h {
                    for wi in 0..w {
                        let d = xv.at(ni, ci, hi, wi) - mean;
                        var += d * d;
                    }
                }
                var /= m;
                let inv_std = 1.0 / (var + eps).sqrt();
                means[ni * c + ci] = mean;
                inv_stds[ni * c + ci] = inv_std;
                let g = self.value(gamma).at(0, ci, 0, 0);
                let bta = self.value(beta).at(0, ci, 0, 0);
                for hi in 0..h {
                    for wi in 0..w {
                        let xhat = (xv.at(ni, ci, hi, wi) - mean) * inv_std;
                        out.set(ni, ci, hi, wi, g * xhat + bta);
                    }
                }
            }
        }
        let needs = self.ng(x) || self.ng(gamma) || self.ng(beta);
        self.push(
            Op::InstanceNorm {
                x,
                gamma,
                beta,
                mean: means,
                inv_std: inv_stds,
            },
            out,
            needs,
        )
    }

    /// Runs reverse-mode differentiation from `output`, seeding its
    /// gradient with `seed` (normally `dL/d output`), and accumulates
    /// parameter gradients into `store`.
    ///
    /// # Panics
    ///
    /// Panics if `seed`'s shape differs from the output value's shape,
    /// or if the tape was recorded at a non-f32 precision (quantized
    /// forwards are inference-only; their recorded ops do not match
    /// the f32 weights gradients would be taken against).
    pub fn backward(&mut self, output: NodeId, seed: Tensor, store: &mut ParamStore) {
        assert_eq!(
            self.precision,
            PrecisionMode::F32,
            "backward requires an f32-precision tape"
        );
        assert_eq!(
            seed.shape(),
            self.values[output.0].shape(),
            "backward seed shape mismatch"
        );
        self.grads[output.0] = Some(seed);
        for i in (0..self.ops.len()).rev() {
            if !self.needs_grad[i] {
                continue;
            }
            let Some(grad) = self.grads[i].take() else {
                continue;
            };
            self.step_backward(i, &grad, store);
            // Keep the gradient available for inspection.
            self.grads[i] = Some(grad);
        }
    }

    fn add_grad(&mut self, id: NodeId, delta: Tensor) {
        if !self.needs_grad[id.0] {
            return;
        }
        match &mut self.grads[id.0] {
            Some(g) => {
                for (gi, di) in g.data_mut().iter_mut().zip(delta.data()) {
                    *gi += di;
                }
            }
            slot @ None => *slot = Some(delta),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn step_backward(&mut self, i: usize, grad: &Tensor, store: &mut ParamStore) {
        let op = self.ops[i].clone();
        match op {
            Op::Input => {}
            Op::Param(pid) => store.accumulate_grad(pid, grad),
            Op::Conv2d {
                x,
                w,
                b,
                stride,
                pad_h,
                pad_w,
            } => {
                let (dx, dw, db) =
                    conv2d_backward(self.value(x), self.value(w), grad, stride, pad_h, pad_w);
                self.add_grad(x, dx);
                self.add_grad(w, dw);
                self.add_grad(b, db);
            }
            Op::Relu { x } => {
                let dx = Tensor::from_vec(
                    grad.shape(),
                    self.value(x)
                        .data()
                        .iter()
                        .zip(grad.data())
                        .map(|(&xv, &g)| if xv > 0.0 { g } else { 0.0 })
                        .collect(),
                );
                self.add_grad(x, dx);
            }
            Op::LeakyRelu { x, slope } => {
                let dx = Tensor::from_vec(
                    grad.shape(),
                    self.value(x)
                        .data()
                        .iter()
                        .zip(grad.data())
                        .map(|(&xv, &g)| if xv > 0.0 { g } else { slope * g })
                        .collect(),
                );
                self.add_grad(x, dx);
            }
            Op::Sigmoid { x } => {
                let y = &self.values[i];
                let dx = Tensor::from_vec(
                    grad.shape(),
                    y.data()
                        .iter()
                        .zip(grad.data())
                        .map(|(&yv, &g)| g * yv * (1.0 - yv))
                        .collect(),
                );
                self.add_grad(x, dx);
            }
            Op::Add { a, b } => {
                self.add_grad(a, grad.clone());
                self.add_grad(b, grad.clone());
            }
            Op::Mul { a, b } => {
                let da = Tensor::from_vec(
                    grad.shape(),
                    grad.data()
                        .iter()
                        .zip(self.value(b).data())
                        .map(|(g, bv)| g * bv)
                        .collect(),
                );
                let db = Tensor::from_vec(
                    grad.shape(),
                    grad.data()
                        .iter()
                        .zip(self.value(a).data())
                        .map(|(g, av)| g * av)
                        .collect(),
                );
                self.add_grad(a, da);
                self.add_grad(b, db);
            }
            Op::Scale { x, c } => {
                self.add_grad(x, grad.scale(c));
            }
            Op::ConcatChannels { a, b } => {
                let [n, ca, h, w] = self.value(a).shape();
                let [_, cb, _, _] = self.value(b).shape();
                let mut da = Tensor::zeros([n, ca, h, w]);
                let mut db = Tensor::zeros([n, cb, h, w]);
                for ni in 0..n {
                    for c in 0..ca {
                        for hi in 0..h {
                            for wi in 0..w {
                                da.set(ni, c, hi, wi, grad.at(ni, c, hi, wi));
                            }
                        }
                    }
                    for c in 0..cb {
                        for hi in 0..h {
                            for wi in 0..w {
                                db.set(ni, c, hi, wi, grad.at(ni, ca + c, hi, wi));
                            }
                        }
                    }
                }
                self.add_grad(a, da);
                self.add_grad(b, db);
            }
            Op::MaxPool2 { x, argmax } => {
                let mut dx = Tensor::zeros(self.value(x).shape());
                for (k, &off) in argmax.iter().enumerate() {
                    dx.data_mut()[off] += grad.data()[k];
                }
                self.add_grad(x, dx);
            }
            Op::AvgPool2 { x } => {
                let [n, c, h, w] = self.value(x).shape();
                let mut dx = Tensor::zeros([n, c, h, w]);
                for ni in 0..n {
                    for ci in 0..c {
                        for hi in 0..h / 2 {
                            for wi in 0..w / 2 {
                                let g = grad.at(ni, ci, hi, wi) / 4.0;
                                for dy in 0..2 {
                                    for dx_ in 0..2 {
                                        dx.add_at(ni, ci, 2 * hi + dy, 2 * wi + dx_, g);
                                    }
                                }
                            }
                        }
                    }
                }
                self.add_grad(x, dx);
            }
            Op::Upsample2 { x } => {
                let [n, c, h, w] = self.value(x).shape();
                let mut dx = Tensor::zeros([n, c, h, w]);
                for ni in 0..n {
                    for ci in 0..c {
                        for hi in 0..h {
                            for wi in 0..w {
                                let mut s = 0.0;
                                for dy in 0..2 {
                                    for dx_ in 0..2 {
                                        s += grad.at(ni, ci, 2 * hi + dy, 2 * wi + dx_);
                                    }
                                }
                                dx.set(ni, ci, hi, wi, s);
                            }
                        }
                    }
                }
                self.add_grad(x, dx);
            }
            Op::GlobalAvgPool { x } => {
                let [n, c, h, w] = self.value(x).shape();
                let inv = 1.0 / (h * w) as f32;
                let mut dx = Tensor::zeros([n, c, h, w]);
                for ni in 0..n {
                    for ci in 0..c {
                        let g = grad.at(ni, ci, 0, 0) * inv;
                        for hi in 0..h {
                            for wi in 0..w {
                                dx.set(ni, ci, hi, wi, g);
                            }
                        }
                    }
                }
                self.add_grad(x, dx);
            }
            Op::GlobalMaxPool { x, argmax } => {
                let mut dx = Tensor::zeros(self.value(x).shape());
                let [_, c, _, _] = self.value(x).shape();
                for (k, &off) in argmax.iter().enumerate() {
                    let (ni, ci) = (k / c, k % c);
                    dx.data_mut()[off] += grad.at(ni, ci, 0, 0);
                }
                self.add_grad(x, dx);
            }
            Op::MulChannel { x, s } => {
                let [n, c, h, w] = self.value(x).shape();
                let mut dx = Tensor::zeros([n, c, h, w]);
                let mut ds = Tensor::zeros([n, c, 1, 1]);
                for ni in 0..n {
                    for ci in 0..c {
                        let sc = self.value(s).at(ni, ci, 0, 0);
                        let mut acc = 0.0;
                        for hi in 0..h {
                            for wi in 0..w {
                                let g = grad.at(ni, ci, hi, wi);
                                dx.set(ni, ci, hi, wi, g * sc);
                                acc += g * self.value(x).at(ni, ci, hi, wi);
                            }
                        }
                        ds.set(ni, ci, 0, 0, acc);
                    }
                }
                self.add_grad(x, dx);
                self.add_grad(s, ds);
            }
            Op::MulSpatial { x, s } => {
                let [n, c, h, w] = self.value(x).shape();
                let mut dx = Tensor::zeros([n, c, h, w]);
                let mut ds = Tensor::zeros([n, 1, h, w]);
                for ni in 0..n {
                    for hi in 0..h {
                        for wi in 0..w {
                            let sc = self.value(s).at(ni, 0, hi, wi);
                            let mut acc = 0.0;
                            for ci in 0..c {
                                let g = grad.at(ni, ci, hi, wi);
                                dx.set(ni, ci, hi, wi, g * sc);
                                acc += g * self.value(x).at(ni, ci, hi, wi);
                            }
                            ds.set(ni, 0, hi, wi, acc);
                        }
                    }
                }
                self.add_grad(x, dx);
                self.add_grad(s, ds);
            }
            Op::ChannelMean { x } => {
                let [n, c, h, w] = self.value(x).shape();
                let inv = 1.0 / c as f32;
                let mut dx = Tensor::zeros([n, c, h, w]);
                for ni in 0..n {
                    for ci in 0..c {
                        for hi in 0..h {
                            for wi in 0..w {
                                dx.set(ni, ci, hi, wi, grad.at(ni, 0, hi, wi) * inv);
                            }
                        }
                    }
                }
                self.add_grad(x, dx);
            }
            Op::ChannelMax { x, argmax } => {
                let [n, _c, h, w] = self.value(x).shape();
                let mut dx = Tensor::zeros(self.value(x).shape());
                for ni in 0..n {
                    for hi in 0..h {
                        for wi in 0..w {
                            let ci = argmax[(ni * h + hi) * w + wi];
                            dx.add_at(ni, ci, hi, wi, grad.at(ni, 0, hi, wi));
                        }
                    }
                }
                self.add_grad(x, dx);
            }
            Op::Linear { x, w, b } => {
                let [n, c, _, _] = self.value(x).shape();
                let [o, _, _, _] = self.value(w).shape();
                let mut dx = Tensor::zeros([n, c, 1, 1]);
                let mut dw = Tensor::zeros(self.value(w).shape());
                let mut db = Tensor::zeros([1, o, 1, 1]);
                for ni in 0..n {
                    for oi in 0..o {
                        let g = grad.at(ni, oi, 0, 0);
                        db.add_at(0, oi, 0, 0, g);
                        for cj in 0..c {
                            dx.add_at(ni, cj, 0, 0, g * self.value(w).at(oi, cj, 0, 0));
                            dw.add_at(oi, cj, 0, 0, g * self.value(x).at(ni, cj, 0, 0));
                        }
                    }
                }
                self.add_grad(x, dx);
                self.add_grad(w, dw);
                self.add_grad(b, db);
            }
            Op::InstanceNorm {
                x,
                gamma,
                beta,
                mean,
                inv_std,
            } => {
                let xv = self.value(x);
                let [n, c, h, w] = xv.shape();
                let m = (h * w) as f32;
                let mut dx = Tensor::zeros([n, c, h, w]);
                let mut dgamma = Tensor::zeros([1, c, 1, 1]);
                let mut dbeta = Tensor::zeros([1, c, 1, 1]);
                for ni in 0..n {
                    for ci in 0..c {
                        let mu = mean[ni * c + ci];
                        let istd = inv_std[ni * c + ci];
                        let g = self.value(gamma).at(0, ci, 0, 0);
                        // Accumulate the two reductions the BN backward needs.
                        let mut sum_dy = 0.0;
                        let mut sum_dy_xhat = 0.0;
                        for hi in 0..h {
                            for wi in 0..w {
                                let dy = grad.at(ni, ci, hi, wi);
                                let xhat = (xv.at(ni, ci, hi, wi) - mu) * istd;
                                sum_dy += dy;
                                sum_dy_xhat += dy * xhat;
                                dgamma.add_at(0, ci, 0, 0, dy * xhat);
                                dbeta.add_at(0, ci, 0, 0, dy);
                            }
                        }
                        for hi in 0..h {
                            for wi in 0..w {
                                let dy = grad.at(ni, ci, hi, wi);
                                let xhat = (xv.at(ni, ci, hi, wi) - mu) * istd;
                                let v = g * istd * (dy - sum_dy / m - xhat * sum_dy_xhat / m);
                                dx.set(ni, ci, hi, wi, v);
                            }
                        }
                    }
                }
                self.add_grad(x, dx);
                self.add_grad(gamma, dgamma);
                self.add_grad(beta, dbeta);
            }
        }
    }
}

impl Tensor {
    /// Adds `v` at an index (internal helper for backward kernels).
    #[inline]
    pub(crate) fn add_at(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let o = self.offset(n, c, h, w);
        self.data_mut()[o] += v;
    }
}

/// Direct 2-D convolution forward pass.
/// Dense linear forward `y = W x + b` on `(N, C, 1, 1)` input.
fn linear_forward(x: &Tensor, w: &Tensor, b: &Tensor) -> Tensor {
    let [n, c, _, _] = x.shape();
    let [o, _, _, _] = w.shape();
    let mut out = Tensor::zeros([n, o, 1, 1]);
    let xd = x.data();
    let wd = w.data();
    let bd = b.data();
    let od = out.data_mut();
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    let use_simd = irf_runtime::simd::enabled() && o * c <= i32::MAX as usize;
    // Row-parallel: one output row (all O units of one sample)
    // per work unit, each produced by the same serial loop.
    irf_runtime::par_chunks_mut(od, o, |ni, orow| {
        let xrow = ni * c;
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if use_simd {
            // SAFETY: `simd::enabled()` guarantees AVX2; offsets fit
            // in i32 (checked above).
            #[allow(unsafe_code)]
            unsafe {
                crate::simd::linear_row(orow, &xd[xrow..xrow + c], wd, bd);
            }
            return;
        }
        for (oi, s) in orow.iter_mut().enumerate() {
            let mut acc = bd[oi];
            let wrow = oi * c;
            for cj in 0..c {
                acc += wd[wrow + cj] * xd[xrow + cj];
            }
            *s = acc;
        }
    });
    out
}

fn conv2d_forward(
    x: &Tensor,
    w: &Tensor,
    b: &Tensor,
    stride: usize,
    pad_h: usize,
    pad_w: usize,
) -> Tensor {
    let [n, ci, h, ww] = x.shape();
    let [co, ci_w, kh, kw] = w.shape();
    assert_eq!(ci, ci_w, "conv2d: input channel mismatch");
    assert_eq!(b.shape(), [1, co, 1, 1], "conv2d: bias shape");
    assert!(stride >= 1, "conv2d: stride must be >= 1");
    let ho = (h + 2 * pad_h - kh) / stride + 1;
    let wo = (ww + 2 * pad_w - kw) / stride + 1;
    assert!(ho > 0 && wo > 0, "conv2d: empty output");
    let mut out = Tensor::zeros([n, co, ho, wo]);
    let xd = x.data();
    let wd = w.data();
    let bd = b.data();
    let od = out.data_mut();
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    let use_simd = irf_runtime::simd::enabled() && stride == 1;
    // Parallel over (sample, output channel) blocks: each `ho x wo`
    // output map is written by exactly one task running the same serial
    // inner loop, so results are bitwise identical at any thread count.
    irf_runtime::par_chunks_mut(od, ho * wo, |blk, omap| {
        let ni = blk / co;
        let oc = blk % co;
        let bias = bd[oc];
        omap.iter_mut().for_each(|v| *v = bias);
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if use_simd {
            // Stride-1 vector path: per weight tap, the valid output
            // columns form one contiguous run `[lo, hi)`, updated with
            // an 8-wide axpy. Element-wise this performs exactly the
            // adds of the scalar loop below, in the same order.
            for ic in 0..ci {
                let xbase = ((ni * ci + ic) * h) * ww;
                let wbase = ((oc * ci + ic) * kh) * kw;
                for ky in 0..kh {
                    let iy0 = ky as isize - pad_h as isize;
                    for kx in 0..kw {
                        let wv = wd[wbase + ky * kw + kx];
                        if wv == 0.0 {
                            continue;
                        }
                        let lo = pad_w.saturating_sub(kx);
                        let hi =
                            ((ww + pad_w) as isize - kx as isize).clamp(0, wo as isize) as usize;
                        if lo >= hi {
                            continue;
                        }
                        for oh in 0..ho {
                            let iy = oh as isize + iy0;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let xoff = xbase + iy as usize * ww + lo + kx - pad_w;
                            let orow = oh * wo;
                            // SAFETY: `simd::enabled()` guarantees AVX2.
                            #[allow(unsafe_code)]
                            unsafe {
                                crate::simd::axpy_f32(
                                    &mut omap[orow + lo..orow + hi],
                                    &xd[xoff..xoff + (hi - lo)],
                                    wv,
                                );
                            }
                        }
                    }
                }
            }
            return;
        }
        for ic in 0..ci {
            let xbase = ((ni * ci + ic) * h) * ww;
            let wbase = ((oc * ci + ic) * kh) * kw;
            for ky in 0..kh {
                for kx in 0..kw {
                    let wv = wd[wbase + ky * kw + kx];
                    if wv == 0.0 {
                        continue;
                    }
                    // Valid output rows: iy = oh*stride + ky - pad_h in [0, h).
                    for oh in 0..ho {
                        let iy = (oh * stride + ky) as isize - pad_h as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let xrow = xbase + iy as usize * ww;
                        let orow = oh * wo;
                        for ow in 0..wo {
                            let ix = (ow * stride + kx) as isize - pad_w as isize;
                            if ix < 0 || ix >= ww as isize {
                                continue;
                            }
                            omap[orow + ow] += wv * xd[xrow + ix as usize];
                        }
                    }
                }
            }
        }
    });
    out
}

/// Direct 2-D convolution backward pass: returns `(dx, dw, db)`.
fn conv2d_backward(
    x: &Tensor,
    w: &Tensor,
    dy: &Tensor,
    stride: usize,
    pad_h: usize,
    pad_w: usize,
) -> (Tensor, Tensor, Tensor) {
    let [n, ci, h, ww] = x.shape();
    let [co, _, kh, kw] = w.shape();
    let [_, _, ho, wo] = dy.shape();
    let mut dx = Tensor::zeros([n, ci, h, ww]);
    let mut dw = Tensor::zeros(w.shape());
    let mut db = Tensor::zeros([1, co, 1, 1]);
    let xd = x.data();
    let wd = w.data();
    let dyd = dy.data();
    // The three gradients are computed by separate "owner-computes"
    // kernels: every output element is accumulated by exactly one task,
    // visiting its contributions in the same order as the serial loop
    // nest (samples ascending, then kernel taps, then output pixels) —
    // so results are bitwise identical at any thread count.

    // db[oc]: parallel over output channels.
    let dbd = db.data_mut();
    irf_runtime::par_chunks_mut(dbd, 1, |oc, slot| {
        for ni in 0..n {
            let dybase = ((ni * co + oc) * ho) * wo;
            let mut bsum = 0.0;
            for v in &dyd[dybase..dybase + ho * wo] {
                bsum += v;
            }
            slot[0] += bsum;
        }
    });

    // dw[oc, ic, ky, kx]: parallel over output channels (each owns a
    // `ci x kh x kw` block of the weight gradient).
    let dwd = dw.data_mut();
    irf_runtime::par_chunks_mut(dwd, ci * kh * kw, |oc, dwoc| {
        for ni in 0..n {
            let dybase = ((ni * co + oc) * ho) * wo;
            for ic in 0..ci {
                let xbase = ((ni * ci + ic) * h) * ww;
                for ky in 0..kh {
                    for kx in 0..kw {
                        let mut wgrad = 0.0;
                        for oh in 0..ho {
                            let iy = (oh * stride + ky) as isize - pad_h as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let xrow = xbase + iy as usize * ww;
                            let dyrow = dybase + oh * wo;
                            for ow in 0..wo {
                                let ix = (ow * stride + kx) as isize - pad_w as isize;
                                if ix < 0 || ix >= ww as isize {
                                    continue;
                                }
                                wgrad += dyd[dyrow + ow] * xd[xrow + ix as usize];
                            }
                        }
                        dwoc[(ic * kh + ky) * kw + kx] += wgrad;
                    }
                }
            }
        }
    });

    // dx[ni, ic, :, :]: parallel over (sample, input channel) maps,
    // with output channels as the inner loop so each dx element sees
    // its contributions in the serial order.
    let dxd = dx.data_mut();
    irf_runtime::par_chunks_mut(dxd, h * ww, |blk, dxmap| {
        let ni = blk / ci;
        let ic = blk % ci;
        for oc in 0..co {
            let dybase = ((ni * co + oc) * ho) * wo;
            let wbase = ((oc * ci + ic) * kh) * kw;
            for ky in 0..kh {
                for kx in 0..kw {
                    let wv = wd[wbase + ky * kw + kx];
                    for oh in 0..ho {
                        let iy = (oh * stride + ky) as isize - pad_h as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let xrow = iy as usize * ww;
                        let dyrow = dybase + oh * wo;
                        for ow in 0..wo {
                            let ix = (ow * stride + kx) as isize - pad_w as isize;
                            if ix < 0 || ix >= ww as isize {
                                continue;
                            }
                            dxmap[xrow + ix as usize] += dyd[dyrow + ow] * wv;
                        }
                    }
                }
            }
        }
    });
    (dx, dw, db)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerically checks `d loss / d leaf` where `loss = sum(output)`.
    fn numeric_grad_check<F>(input: Tensor, forward: F, tol: f32)
    where
        F: Fn(&mut Tape, NodeId) -> NodeId,
    {
        let mut store = ParamStore::new();
        // Analytic gradient.
        let mut tape = Tape::new();
        let x = tape.leaf(input.clone());
        let y = forward(&mut tape, x);
        let seed = Tensor::filled(tape.value(y).shape(), 1.0);
        tape.backward(y, seed, &mut store);
        let analytic = tape.grad(x).expect("leaf grad").clone();
        // Numeric gradient by central differences.
        let eps = 1e-3;
        for i in 0..input.numel() {
            let mut plus = input.clone();
            plus.data_mut()[i] += eps;
            let mut minus = input.clone();
            minus.data_mut()[i] -= eps;
            let fp: f32 = {
                let mut t = Tape::new();
                let xi = t.leaf(plus);
                let y = forward(&mut t, xi);
                t.value(y).data().iter().sum()
            };
            let fm: f32 = {
                let mut t = Tape::new();
                let xi = t.leaf(minus);
                let y = forward(&mut t, xi);
                t.value(y).data().iter().sum()
            };
            let numeric = (fp - fm) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() <= tol * (1.0 + numeric.abs()),
                "grad mismatch at {i}: analytic {a}, numeric {numeric}"
            );
        }
    }

    fn seeded_input(shape: [usize; 4]) -> Tensor {
        let n = shape.iter().product();
        let data = (0..n)
            .map(|i| ((i as f32 * 0.73).sin() * 0.9) + 0.05)
            .collect();
        Tensor::from_vec(shape, data)
    }

    #[test]
    fn conv2d_identity_kernel() {
        let mut tape = Tape::new();
        let x = tape.input(seeded_input([1, 1, 4, 4]));
        let mut w = Tensor::zeros([1, 1, 3, 3]);
        w.set(0, 0, 1, 1, 1.0);
        let w = tape.input(w);
        let b = tape.input(Tensor::zeros([1, 1, 1, 1]));
        let y = tape.conv2d(x, w, b, 1, 1);
        assert_eq!(tape.value(y), tape.value(x));
    }

    #[test]
    fn conv2d_shapes() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::zeros([2, 3, 8, 8]));
        let w = tape.input(Tensor::zeros([5, 3, 3, 3]));
        let b = tape.input(Tensor::zeros([1, 5, 1, 1]));
        assert_eq!(tape.conv2d(x, w, b, 1, 1), NodeId(3));
        assert_eq!(tape.value(NodeId(3)).shape(), [2, 5, 8, 8]);
        let y2 = tape.conv2d(x, w, b, 2, 1);
        assert_eq!(tape.value(y2).shape(), [2, 5, 4, 4]);
    }

    #[test]
    fn batched_conv2d_is_bitwise_identical_to_single_samples() {
        // One batched forward over (B, C, H, W) must reproduce each
        // single-sample forward bit for bit — the contract the serving
        // layer's micro-batching relies on.
        let samples: Vec<Tensor> = (0..4)
            .map(|s| {
                let data = (0..2 * 6 * 6)
                    .map(|i| ((i as f32 + s as f32 * 17.0) * 0.37).sin())
                    .collect();
                Tensor::from_vec([1, 2, 6, 6], data)
            })
            .collect();
        let w = seeded_input([3, 2, 3, 3]);
        let b = seeded_input([1, 3, 1, 1]);
        let batched = {
            let mut tape = Tape::new();
            let x = tape.input(Tensor::concat_batch(&samples));
            let wn = tape.input(w.clone());
            let bn = tape.input(b.clone());
            let y = tape.conv2d(x, wn, bn, 1, 1);
            tape.value(y).clone()
        };
        assert_eq!(batched.shape(), [4, 3, 6, 6]);
        for (s, part) in batched.split_batch().into_iter().enumerate() {
            let single = {
                let mut tape = Tape::new();
                let x = tape.input(samples[s].clone());
                let wn = tape.input(w.clone());
                let bn = tape.input(b.clone());
                let y = tape.conv2d(x, wn, bn, 1, 1);
                tape.value(y).clone()
            };
            let pb: Vec<u32> = part.data().iter().map(|v| v.to_bits()).collect();
            let sb: Vec<u32> = single.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(pb, sb, "sample {s} differs in batch");
        }
    }

    #[test]
    fn batched_instance_norm_matches_single_samples() {
        // Instance norm keeps per-sample statistics, so batching must
        // not leak information across samples.
        let samples: Vec<Tensor> = (0..3)
            .map(|s| {
                let data = (0..2 * 4 * 4)
                    .map(|i| ((i as f32 * 0.61) + s as f32).cos() * 2.0)
                    .collect();
                Tensor::from_vec([1, 2, 4, 4], data)
            })
            .collect();
        let g = Tensor::filled([1, 2, 1, 1], 1.4);
        let bta = Tensor::filled([1, 2, 1, 1], -0.3);
        let batched = {
            let mut tape = Tape::new();
            let x = tape.input(Tensor::concat_batch(&samples));
            let gn = tape.input(g.clone());
            let bn = tape.input(bta.clone());
            let y = tape.instance_norm(x, gn, bn, 1e-5);
            tape.value(y).clone()
        };
        for (s, part) in batched.split_batch().into_iter().enumerate() {
            let single = {
                let mut tape = Tape::new();
                let x = tape.input(samples[s].clone());
                let gn = tape.input(g.clone());
                let bn = tape.input(bta.clone());
                let y = tape.instance_norm(x, gn, bn, 1e-5);
                tape.value(y).clone()
            };
            let pb: Vec<u32> = part.data().iter().map(|v| v.to_bits()).collect();
            let sb: Vec<u32> = single.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(pb, sb, "sample {s} differs in batch");
        }
    }

    #[test]
    fn conv2d_gradcheck_input() {
        let input = seeded_input([1, 2, 5, 5]);
        numeric_grad_check(
            input,
            |t, x| {
                let w = t.input(seeded_input([3, 2, 3, 3]));
                let b = t.input(seeded_input([1, 3, 1, 1]));
                t.conv2d(x, w, b, 1, 1)
            },
            1e-2,
        );
    }

    #[test]
    fn conv2d_gradcheck_weights() {
        // Check dL/dw by making the weight the leaf.
        let winit = seeded_input([2, 1, 3, 3]);
        numeric_grad_check(
            winit,
            |t, w| {
                let x = t.input(seeded_input([1, 1, 4, 4]));
                let b = t.input(Tensor::zeros([1, 2, 1, 1]));
                t.conv2d(x, w, b, 1, 1)
            },
            1e-2,
        );
    }

    #[test]
    fn relu_and_sigmoid_gradcheck() {
        numeric_grad_check(seeded_input([1, 1, 3, 3]), |t, x| t.relu(x), 1e-2);
        numeric_grad_check(seeded_input([1, 1, 3, 3]), |t, x| t.sigmoid(x), 1e-2);
        numeric_grad_check(
            seeded_input([1, 1, 3, 3]),
            |t, x| t.leaky_relu(x, 0.1),
            1e-2,
        );
    }

    #[test]
    fn pooling_gradcheck() {
        numeric_grad_check(seeded_input([1, 2, 4, 4]), |t, x| t.max_pool2(x), 1e-2);
        numeric_grad_check(seeded_input([1, 2, 4, 4]), |t, x| t.avg_pool2(x), 1e-2);
        numeric_grad_check(seeded_input([1, 2, 2, 2]), |t, x| t.upsample2(x), 1e-2);
        numeric_grad_check(
            seeded_input([1, 3, 3, 3]),
            |t, x| t.global_avg_pool(x),
            1e-2,
        );
        numeric_grad_check(
            seeded_input([1, 3, 3, 3]),
            |t, x| t.global_max_pool(x),
            1e-2,
        );
    }

    #[test]
    fn attention_primitive_gradcheck() {
        numeric_grad_check(seeded_input([1, 3, 3, 3]), |t, x| t.channel_mean(x), 1e-2);
        numeric_grad_check(seeded_input([1, 3, 3, 3]), |t, x| t.channel_max(x), 1e-2);
        numeric_grad_check(
            seeded_input([1, 2, 3, 3]),
            |t, x| {
                let s = t.input(seeded_input([1, 2, 1, 1]));
                t.mul_channel(x, s)
            },
            1e-2,
        );
        numeric_grad_check(
            seeded_input([1, 2, 3, 3]),
            |t, x| {
                let s = t.input(seeded_input([1, 1, 3, 3]));
                t.mul_spatial(x, s)
            },
            1e-2,
        );
    }

    #[test]
    fn elementwise_and_concat_gradcheck() {
        numeric_grad_check(
            seeded_input([1, 2, 2, 2]),
            |t, x| {
                let o = t.input(seeded_input([1, 2, 2, 2]));
                let s = t.add(x, o);
                t.mul(s, x)
            },
            1e-2,
        );
        numeric_grad_check(
            seeded_input([1, 2, 2, 2]),
            |t, x| {
                let o = t.input(seeded_input([1, 3, 2, 2]));
                t.concat_channels(x, o)
            },
            1e-2,
        );
        numeric_grad_check(seeded_input([1, 1, 2, 2]), |t, x| t.scale(x, -2.5), 1e-2);
    }

    #[test]
    fn linear_gradcheck() {
        numeric_grad_check(
            seeded_input([2, 3, 1, 1]),
            |t, x| {
                let w = t.input(seeded_input([4, 3, 1, 1]));
                let b = t.input(seeded_input([1, 4, 1, 1]));
                t.linear(x, w, b)
            },
            1e-2,
        );
    }

    #[test]
    fn instance_norm_gradcheck() {
        numeric_grad_check(
            seeded_input([1, 2, 3, 3]),
            |t, x| {
                let g = t.input(Tensor::filled([1, 2, 1, 1], 1.3));
                let b = t.input(Tensor::filled([1, 2, 1, 1], -0.2));
                t.instance_norm(x, g, b, 1e-5)
            },
            5e-2,
        );
    }

    #[test]
    fn instance_norm_output_is_normalized() {
        let mut tape = Tape::new();
        let x = tape.input(seeded_input([2, 3, 4, 4]));
        let g = tape.input(Tensor::filled([1, 3, 1, 1], 1.0));
        let b = tape.input(Tensor::zeros([1, 3, 1, 1]));
        let y = tape.instance_norm(x, g, b, 1e-6);
        let yv = tape.value(y);
        // Per (n, c) mean ~ 0, variance ~ 1.
        for n in 0..2 {
            for c in 0..3 {
                let mut mean = 0.0;
                for h in 0..4 {
                    for w in 0..4 {
                        mean += yv.at(n, c, h, w);
                    }
                }
                mean /= 16.0;
                assert!(mean.abs() < 1e-4, "mean {mean}");
            }
        }
    }

    #[test]
    fn param_gradients_reach_store() {
        let mut store = ParamStore::new();
        let pid = store.register("w", Tensor::filled([1, 1, 1, 1], 2.0));
        let mut tape = Tape::new();
        let x = tape.input(Tensor::filled([1, 1, 1, 1], 3.0));
        let w = tape.param(&store, pid);
        let y = tape.mul(x, w);
        tape.backward(y, Tensor::filled([1, 1, 1, 1], 1.0), &mut store);
        // d(x*w)/dw = x = 3
        assert_eq!(store.grad(pid).data(), &[3.0]);
    }

    #[test]
    fn inputs_do_not_collect_gradients() {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let x = tape.input(Tensor::filled([1, 1, 1, 1], 3.0));
        let y = tape.relu(x);
        tape.backward(y, Tensor::filled([1, 1, 1, 1], 1.0), &mut store);
        assert!(tape.grad(x).is_none());
    }

    #[test]
    fn gradient_accumulates_across_fanout() {
        let mut store = ParamStore::new();
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::filled([1, 1, 1, 1], 1.5));
        let y = tape.add(x, x); // dy/dx = 2
        tape.backward(y, Tensor::filled([1, 1, 1, 1], 1.0), &mut store);
        assert_eq!(tape.grad(x).unwrap().data(), &[2.0]);
    }
}
