//! AVX2 f32 kernels for the conv2d / linear forward hot loops.
//!
//! Compiled only with the `simd` feature on x86-64 and dispatched at
//! run time via [`irf_runtime::simd::enabled`]. Every kernel performs
//! the exact per-element rounding sequence of its scalar counterpart —
//! one rounded multiply and one rounded add per step, no FMA, no
//! reassociation — vectorizing *across* output elements, so scalar and
//! SIMD results are bitwise identical.
#![cfg(all(feature = "simd", target_arch = "x86_64"))]
#![allow(unsafe_code)]

use std::arch::x86_64::{
    _mm256_add_ps, _mm256_i32gather_ps, _mm256_loadu_ps, _mm256_loadu_si256, _mm256_mul_ps,
    _mm256_set1_ps, _mm256_storeu_ps,
};

/// `dst[i] += a * src[i]` over equal-length slices, 8-wide with a
/// scalar tail. Each element sees exactly one rounded multiply and one
/// rounded add, as in the scalar loop.
///
/// # Safety
///
/// Caller must ensure AVX2 is available.
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn axpy_f32(dst: &mut [f32], src: &[f32], a: f32) {
    debug_assert_eq!(dst.len(), src.len());
    let n = dst.len();
    let av = _mm256_set1_ps(a);
    let mut i = 0usize;
    while i + 8 <= n {
        let s = _mm256_loadu_ps(src.as_ptr().add(i));
        let d = _mm256_loadu_ps(dst.as_ptr().add(i));
        _mm256_storeu_ps(
            dst.as_mut_ptr().add(i),
            _mm256_add_ps(d, _mm256_mul_ps(av, s)),
        );
        i += 8;
    }
    while i < n {
        dst[i] += a * src[i];
        i += 1;
    }
}

/// One sample-row of the dense linear layer: `orow[oi] = bd[oi] +
/// Σ_c wd[oi*c + cj] * xrow[cj]` for all `o` outputs, vectorized 8
/// outputs at a time (strided weight rows read with a gather), scalar
/// tail for the remainder. Per output the accumulation order over `c`
/// is exactly the scalar loop's.
///
/// # Safety
///
/// Caller must ensure AVX2 is available; `wd` must hold `orow.len() *
/// xrow.len()` weights and the row stride `c == xrow.len()` must fit
/// in `i32` (gather offsets).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn linear_row(orow: &mut [f32], xrow: &[f32], wd: &[f32], bd: &[f32]) {
    let o = orow.len();
    let c = xrow.len();
    debug_assert!(wd.len() >= o * c);
    debug_assert!(bd.len() >= o);
    debug_assert!(o.checked_mul(c).is_some_and(|t| t <= i32::MAX as usize));
    let mut oi = 0usize;
    while oi + 8 <= o {
        let mut acc = _mm256_loadu_ps(bd.as_ptr().add(oi));
        // Weight rows for outputs oi..oi+8 start at (oi+l)*c.
        let base = (oi * c) as i32;
        let ci32 = c as i32;
        let idx: [i32; 8] = [
            base,
            base + ci32,
            base + 2 * ci32,
            base + 3 * ci32,
            base + 4 * ci32,
            base + 5 * ci32,
            base + 6 * ci32,
            base + 7 * ci32,
        ];
        let iv = _mm256_loadu_si256(idx.as_ptr().cast());
        for (cj, &xv) in xrow.iter().enumerate() {
            let wv = _mm256_i32gather_ps::<4>(wd.as_ptr().add(cj), iv);
            let xb = _mm256_set1_ps(xv);
            acc = _mm256_add_ps(acc, _mm256_mul_ps(wv, xb));
        }
        _mm256_storeu_ps(orow.as_mut_ptr().add(oi), acc);
        oi += 8;
    }
    while oi < o {
        let mut acc = bd[oi];
        let wrow = oi * c;
        for (cj, &xv) in xrow.iter().enumerate() {
            acc += wd[wrow + cj] * xv;
        }
        orow[oi] = acc;
        oi += 1;
    }
}
