//! Self-contained binary checkpoints for a [`ParamStore`].
//!
//! Format (little-endian):
//!
//! ```text
//! magic  b"IRFW"                u32 version (1)
//! u32 param count
//! per parameter:
//!   u32 name length, name bytes (UTF-8)
//!   4 x u32 shape
//!   numel x f32 values
//! ```

use crate::param::{ParamId, ParamStore};
use crate::tensor::Tensor;
use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"IRFW";
const VERSION: u32 = 1;

/// Error loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The stream is not an `IRFW` checkpoint.
    BadMagic,
    /// Unsupported version number.
    BadVersion(u32),
    /// Checkpoint does not match the store (count, name or shape).
    Mismatch(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "i/o error: {e}"),
            CheckpointError::BadMagic => write!(f, "not an IRFW checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Writes all parameters to `w`. A `&mut` writer may be passed.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn save<W: Write>(store: &ParamStore, mut w: W) -> Result<(), CheckpointError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(
        &u32::try_from(store.len())
            .expect("param count fits u32")
            .to_le_bytes(),
    )?;
    for (_, name, value) in store.iter() {
        let bytes = name.as_bytes();
        w.write_all(
            &u32::try_from(bytes.len())
                .expect("name fits u32")
                .to_le_bytes(),
        )?;
        w.write_all(bytes)?;
        for d in value.shape() {
            w.write_all(&u32::try_from(d).expect("dim fits u32").to_le_bytes())?;
        }
        for v in value.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Loads parameter values into an existing store whose layout (count,
/// names, shapes) must match the checkpoint. A `&mut` reader may be
/// passed.
///
/// # Errors
///
/// Returns [`CheckpointError::Mismatch`] when the store layout and the
/// checkpoint disagree, and propagates I/O and format errors.
pub fn load<R: Read>(store: &mut ParamStore, mut r: R) -> Result<(), CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let count = read_u32(&mut r)? as usize;
    if count != store.len() {
        return Err(CheckpointError::Mismatch(format!(
            "checkpoint has {count} params, store has {}",
            store.len()
        )));
    }
    for i in 0..count {
        let id = ParamId(i);
        let name_len = read_u32(&mut r)? as usize;
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name)?;
        let name = String::from_utf8(name)
            .map_err(|_| CheckpointError::Mismatch("non-utf8 parameter name".into()))?;
        if name != store.name(id) {
            return Err(CheckpointError::Mismatch(format!(
                "param {i} is '{}' in store but '{name}' in checkpoint",
                store.name(id)
            )));
        }
        let mut shape = [0usize; 4];
        for d in &mut shape {
            *d = read_u32(&mut r)? as usize;
        }
        if shape != store.value(id).shape() {
            return Err(CheckpointError::Mismatch(format!(
                "param '{name}' shape {:?} vs checkpoint {shape:?}",
                store.value(id).shape()
            )));
        }
        let numel: usize = shape.iter().product();
        let mut data = vec![0f32; numel];
        for v in &mut data {
            let mut b = [0u8; 4];
            r.read_exact(&mut b)?;
            *v = f32::from_le_bytes(b);
        }
        *store.value_mut(id) = Tensor::from_vec(shape, data);
    }
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, CheckpointError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::uniform;

    fn sample_store() -> ParamStore {
        let mut s = ParamStore::new();
        s.register("a.w", uniform([2, 3, 3, 3], -1.0, 1.0, 5));
        s.register("a.b", uniform([1, 2, 1, 1], -1.0, 1.0, 6));
        s
    }

    #[test]
    fn save_load_roundtrip() {
        let src = sample_store();
        let mut buf = Vec::new();
        save(&src, &mut buf).expect("save");
        let mut dst = sample_store();
        // perturb before loading
        dst.value_mut(ParamId(0)).data_mut()[0] = 42.0;
        load(&mut dst, buf.as_slice()).expect("load");
        assert_eq!(src.value(ParamId(0)), dst.value(ParamId(0)));
        assert_eq!(src.value(ParamId(1)), dst.value(ParamId(1)));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut dst = sample_store();
        let err = load(&mut dst, &b"NOPE"[..]).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic));
    }

    #[test]
    fn mismatched_layout_is_rejected() {
        let src = sample_store();
        let mut buf = Vec::new();
        save(&src, &mut buf).expect("save");
        let mut other = ParamStore::new();
        other.register("different", Tensor::zeros([2, 3, 3, 3]));
        let err = load(&mut other, buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatch(_)));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let src = sample_store();
        let mut buf = Vec::new();
        save(&src, &mut buf).expect("save");
        buf.truncate(buf.len() / 2);
        let mut dst = sample_store();
        let err = load(&mut dst, buf.as_slice()).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
