//! Loss functions returning `(value, d loss / d pred)`.
//!
//! Losses live outside the tape: they consume the prediction tensor
//! and hand back the seed gradient for [`crate::Tape::backward`].

use crate::tensor::Tensor;

/// Mean absolute error and its gradient.
///
/// # Panics
///
/// Panics if shapes differ or tensors are empty.
#[must_use]
pub fn mae(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mae: shape mismatch");
    let n = pred.numel() as f32;
    assert!(n > 0.0, "mae: empty tensors");
    let mut loss = 0.0;
    let grad = Tensor::from_vec(
        pred.shape(),
        pred.data()
            .iter()
            .zip(target.data())
            .map(|(&p, &t)| {
                let d = p - t;
                loss += d.abs();
                d.signum() / n
            })
            .collect(),
    );
    (loss / n, grad)
}

/// Mean squared error and its gradient.
///
/// # Panics
///
/// Panics if shapes differ or tensors are empty.
#[must_use]
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "mse: shape mismatch");
    let n = pred.numel() as f32;
    assert!(n > 0.0, "mse: empty tensors");
    let mut loss = 0.0;
    let grad = Tensor::from_vec(
        pred.shape(),
        pred.data()
            .iter()
            .zip(target.data())
            .map(|(&p, &t)| {
                let d = p - t;
                loss += d * d;
                2.0 * d / n
            })
            .collect(),
    );
    (loss / n, grad)
}

/// Huber (smooth-L1) loss with threshold `delta`.
///
/// Quadratic inside `|d| <= delta`, linear outside — robust to the
/// heavy-tailed drop distributions of real designs.
///
/// # Panics
///
/// Panics if shapes differ, tensors are empty, or `delta <= 0`.
#[must_use]
pub fn huber(pred: &Tensor, target: &Tensor, delta: f32) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape(), "huber: shape mismatch");
    assert!(delta > 0.0, "huber: delta must be positive");
    let n = pred.numel() as f32;
    assert!(n > 0.0, "huber: empty tensors");
    let mut loss = 0.0;
    let grad = Tensor::from_vec(
        pred.shape(),
        pred.data()
            .iter()
            .zip(target.data())
            .map(|(&p, &t)| {
                let d = p - t;
                if d.abs() <= delta {
                    loss += 0.5 * d * d;
                    d / n
                } else {
                    loss += delta * (d.abs() - 0.5 * delta);
                    delta * d.signum() / n
                }
            })
            .collect(),
    );
    (loss / n, grad)
}

/// Kirchhoff-constraint loss in the spirit of IRPnet: penalizes the
/// mismatch between the discrete Laplacian of the predicted drop map
/// and the (scaled) current map, i.e. the image-level residual of
/// `G d = I`.
///
/// Returns `(alpha * mean(r^2), gradient)` where
/// `r = lap(pred) - alpha_scale * current` and `lap` is the 5-point
/// stencil with zero boundary. The Laplacian stencil is symmetric, so
/// the backward pass is a second application of the same stencil.
///
/// # Panics
///
/// Panics if shapes differ or tensors are empty.
#[must_use]
pub fn kirchhoff(pred: &Tensor, current: &Tensor, scale: f32, alpha: f32) -> (f32, Tensor) {
    assert_eq!(pred.shape(), current.shape(), "kirchhoff: shape mismatch");
    let [n, c, h, w] = pred.shape();
    let numel = pred.numel() as f32;
    assert!(numel > 0.0, "kirchhoff: empty tensors");
    // r = lap(pred) - scale * current
    let mut r = Tensor::zeros(pred.shape());
    for ni in 0..n {
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    let center = pred.at(ni, ci, hi, wi);
                    let mut lap = -4.0 * center;
                    if hi > 0 {
                        lap += pred.at(ni, ci, hi - 1, wi);
                    }
                    if hi + 1 < h {
                        lap += pred.at(ni, ci, hi + 1, wi);
                    }
                    if wi > 0 {
                        lap += pred.at(ni, ci, hi, wi - 1);
                    }
                    if wi + 1 < w {
                        lap += pred.at(ni, ci, hi, wi + 1);
                    }
                    r.set(ni, ci, hi, wi, lap - scale * current.at(ni, ci, hi, wi));
                }
            }
        }
    }
    let loss = alpha * r.data().iter().map(|v| v * v).sum::<f32>() / numel;
    // grad = (2 alpha / numel) * lap(r)  (stencil is self-adjoint).
    let mut grad = Tensor::zeros(pred.shape());
    let k = 2.0 * alpha / numel;
    for ni in 0..n {
        for ci in 0..c {
            for hi in 0..h {
                for wi in 0..w {
                    let mut lap = -4.0 * r.at(ni, ci, hi, wi);
                    if hi > 0 {
                        lap += r.at(ni, ci, hi - 1, wi);
                    }
                    if hi + 1 < h {
                        lap += r.at(ni, ci, hi + 1, wi);
                    }
                    if wi > 0 {
                        lap += r.at(ni, ci, hi, wi - 1);
                    }
                    if wi + 1 < w {
                        lap += r.at(ni, ci, hi, wi + 1);
                    }
                    grad.set(ni, ci, hi, wi, k * lap);
                }
            }
        }
    }
    (loss, grad)
}

/// Sum of two `(loss, grad)` pairs, used to combine a data term with
/// the Kirchhoff constraint.
///
/// # Panics
///
/// Panics if gradient shapes differ.
#[must_use]
pub fn combine(a: (f32, Tensor), b: (f32, Tensor)) -> (f32, Tensor) {
    (a.0 + b.0, a.1.add(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::from_vec([1, 1, 1, n], v)
    }

    #[test]
    fn mae_value_and_grad() {
        let (l, g) = mae(&t(vec![1.0, 3.0]), &t(vec![0.0, 5.0]));
        assert!((l - 1.5).abs() < 1e-6);
        assert_eq!(g.data(), &[0.5, -0.5]);
    }

    #[test]
    fn mse_value_and_grad() {
        let (l, g) = mse(&t(vec![1.0, 3.0]), &t(vec![0.0, 5.0]));
        assert!((l - 2.5).abs() < 1e-6);
        assert_eq!(g.data(), &[1.0, -2.0]);
    }

    #[test]
    fn huber_transitions_at_delta() {
        // |d| = 0.5 < 1 -> quadratic; |d| = 2 > 1 -> linear.
        let (l, g) = huber(&t(vec![0.5, 2.0]), &t(vec![0.0, 0.0]), 1.0);
        let expected = (0.5 * 0.25 + 1.0 * (2.0 - 0.5)) / 2.0;
        assert!((l - expected).abs() < 1e-6);
        assert!((g.data()[0] - 0.25).abs() < 1e-6);
        assert!((g.data()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn perfect_prediction_has_zero_loss() {
        let p = t(vec![1.0, 2.0, 3.0]);
        assert_eq!(mae(&p, &p).0, 0.0);
        assert_eq!(mse(&p, &p).0, 0.0);
        assert_eq!(huber(&p, &p, 1.0).0, 0.0);
    }

    #[test]
    fn kirchhoff_zero_for_consistent_fields() {
        // pred = 0 and current = 0 satisfy the constraint trivially.
        let p = Tensor::zeros([1, 1, 4, 4]);
        let (l, g) = kirchhoff(&p, &p, 1.0, 1.0);
        assert_eq!(l, 0.0);
        assert!(g.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn kirchhoff_gradient_matches_numeric() {
        let mut pred = Tensor::zeros([1, 1, 3, 3]);
        for (i, v) in pred.data_mut().iter_mut().enumerate() {
            *v = (i as f32 * 0.37).sin();
        }
        let mut cur = Tensor::zeros([1, 1, 3, 3]);
        for (i, v) in cur.data_mut().iter_mut().enumerate() {
            *v = (i as f32 * 0.11).cos();
        }
        let (_, g) = kirchhoff(&pred, &cur, 0.7, 0.5);
        let eps = 1e-3;
        for i in 0..pred.numel() {
            let mut plus = pred.clone();
            plus.data_mut()[i] += eps;
            let mut minus = pred.clone();
            minus.data_mut()[i] -= eps;
            let lp = kirchhoff(&plus, &cur, 0.7, 0.5).0;
            let lm = kirchhoff(&minus, &cur, 0.7, 0.5).0;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (g.data()[i] - num).abs() < 1e-2 * (1.0 + num.abs()),
                "at {i}: analytic {} numeric {num}",
                g.data()[i]
            );
        }
    }

    #[test]
    fn combine_adds_losses_and_grads() {
        let a = (1.0, t(vec![1.0, 2.0]));
        let b = (0.5, t(vec![0.5, -1.0]));
        let (l, g) = combine(a, b);
        assert_eq!(l, 1.5);
        assert_eq!(g.data(), &[1.5, 1.0]);
    }
}
