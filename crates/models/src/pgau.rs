//! PGAU (Guo et al., GLSVLSI'24): attention U-Net — attention gates
//! filter every skip connection. The model IR-Fusion "improves based
//! on".

use crate::attention_gate::AttentionGate;
use crate::blocks::{DoubleConv, RegressionHead};
use crate::Model;
use irf_nn::{NodeId, ParamStore, Tape};

/// PGAU: U-Net whose skips pass through additive attention gates.
#[derive(Debug, Clone)]
pub struct Pgau {
    enc1: DoubleConv,
    enc2: DoubleConv,
    enc3: DoubleConv,
    bottleneck: DoubleConv,
    ag3: AttentionGate,
    ag2: AttentionGate,
    ag1: AttentionGate,
    dec3: DoubleConv,
    dec2: DoubleConv,
    dec1: DoubleConv,
    head: RegressionHead,
}

impl Pgau {
    /// Registers the model.
    pub fn new(store: &mut ParamStore, cin: usize, c: usize, seed: u64) -> Self {
        Pgau {
            enc1: DoubleConv::new(store, "pgau.enc1", cin, c, seed),
            enc2: DoubleConv::new(store, "pgau.enc2", c, 2 * c, seed ^ 2),
            enc3: DoubleConv::new(store, "pgau.enc3", 2 * c, 4 * c, seed ^ 3),
            bottleneck: DoubleConv::new(store, "pgau.bottleneck", 4 * c, 8 * c, seed ^ 4),
            ag3: AttentionGate::new(store, "pgau.ag3", 4 * c, 8 * c, 2 * c, seed ^ 5),
            ag2: AttentionGate::new(store, "pgau.ag2", 2 * c, 4 * c, c, seed ^ 6),
            ag1: AttentionGate::new(store, "pgau.ag1", c, 2 * c, c, seed ^ 7),
            dec3: DoubleConv::new(store, "pgau.dec3", 12 * c, 4 * c, seed ^ 8),
            dec2: DoubleConv::new(store, "pgau.dec2", 6 * c, 2 * c, seed ^ 9),
            dec1: DoubleConv::new(store, "pgau.dec1", 3 * c, c, seed ^ 10),
            head: RegressionHead::new(store, "pgau.head", c, seed ^ 11),
        }
    }

    fn up_gated(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        coarse: NodeId,
        skip: NodeId,
        gate: &AttentionGate,
        conv: &DoubleConv,
    ) -> NodeId {
        let up = tape.upsample2(coarse);
        let gated = gate.forward(tape, store, skip, up);
        let cat = tape.concat_channels(up, gated);
        conv.forward(tape, store, cat)
    }
}

impl Model for Pgau {
    fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let s1 = self.enc1.forward(tape, store, x);
        let p1 = tape.max_pool2(s1);
        let s2 = self.enc2.forward(tape, store, p1);
        let p2 = tape.max_pool2(s2);
        let s3 = self.enc3.forward(tape, store, p2);
        let p3 = tape.max_pool2(s3);
        let b = self.bottleneck.forward(tape, store, p3);
        let d3 = self.up_gated(tape, store, b, s3, &self.ag3, &self.dec3);
        let d2 = self.up_gated(tape, store, d3, s2, &self.ag2, &self.dec2);
        let d1 = self.up_gated(tape, store, d2, s1, &self.ag1, &self.dec1);
        self.head.forward(tape, store, d1)
    }

    fn name(&self) -> &str {
        "PGAU"
    }

    fn set_linear_head(&mut self, linear: bool) {
        self.head.set_relu(!linear);
    }

    fn boxed_clone(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_nn::init;

    #[test]
    fn forward_shape() {
        let mut store = ParamStore::new();
        let m = Pgau::new(&mut store, 6, 4, 1);
        let mut tape = Tape::new();
        let x = tape.input(init::uniform([1, 6, 16, 16], -1.0, 1.0, 2));
        let y = m.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), [1, 1, 16, 16]);
    }

    #[test]
    fn gates_receive_gradient() {
        let mut store = ParamStore::new();
        let m = Pgau::new(&mut store, 3, 4, 1);
        let mut tape = Tape::new();
        let x = tape.input(init::uniform([1, 3, 8, 8], 0.0, 1.0, 3));
        let y = m.forward(&mut tape, &store, x);
        let target = irf_nn::Tensor::filled([1, 1, 8, 8], 0.1);
        let (_, g) = irf_nn::loss::mae(tape.value(y), &target);
        tape.backward(y, g, &mut store);
        let ag_grad: f32 = store
            .iter()
            .filter(|(_, n, _)| n.contains(".ag"))
            .map(|(id, _, _)| store.grad(id).data().iter().map(|v| v * v).sum::<f32>())
            .sum();
        assert!(ag_grad > 0.0, "attention gates trained");
    }
}
