//! The IR-drop model zoo: the paper's Inception Attention U-Net and
//! every ML baseline it compares against.
//!
//! All models share the [`Model`] trait (a tape-recorded forward pass
//! over an NCHW feature stack producing a 1-channel drop map) and are
//! instantiated through [`registry::ModelKind`]:
//!
//! | kind | paper baseline | distinguishing structure |
//! |------|----------------|--------------------------|
//! | `IrEdge` | IREDGe | plain encoder-decoder U-Net |
//! | `Mavirec` | MAVIREC | deeper U-Net with input fusion convs (3-D U-Net folded to multi-channel 2-D) |
//! | `IrpNet` | IRPnet | spatial pyramid with global context + Kirchhoff-constrained training |
//! | `Pgau` | PGAU | U-Net with attention gates on skip connections |
//! | `MaUnet` | MAUnet | multiscale inputs at every encoder level + CBAM |
//! | `ContestWinner` | ICCAD-2023 winner | wide plain U-Net |
//! | `IrFusion` | **ours** | Inception-A/B/C encoder + attention gates + CBAM decoder |
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attention_gate;
pub mod blocks;
pub mod cbam;
pub mod contest;
pub mod inception;
pub mod ir_fusion_net;
pub mod iredge;
pub mod irpnet;
pub mod maunet;
pub mod mavirec;
pub mod pgau;
pub mod registry;

use irf_nn::{NodeId, ParamStore, Tape};

/// A drop-prediction model: records its forward pass on a [`Tape`].
///
/// Input is `(N, C_in, H, W)` with `H`, `W` divisible by 8 (three
/// pooling stages); output is `(N, 1, H, W)`, non-negative.
///
/// `Send + Sync` so trained models can move into (and be shared by)
/// serving threads; implementations are plain parameter-handle structs,
/// which satisfy both automatically.
pub trait Model: Send + Sync {
    /// Records the forward pass, returning the prediction node.
    fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId;

    /// Display name matching the paper's tables.
    fn name(&self) -> &str;

    /// Whether training should add the Kirchhoff-constraint loss
    /// (IRPnet's distinguishing training signal).
    fn wants_kirchhoff_loss(&self) -> bool {
        false
    }

    /// Switches the output head between ReLU (absolute drop maps,
    /// non-negative) and linear (signed residual corrections for the
    /// fusion pipeline). Default: ReLU.
    fn set_linear_head(&mut self, linear: bool);

    /// Clones the architecture behind the trait object. Models are
    /// plain parameter-handle structs (the weights live in the
    /// [`ParamStore`]), so this is a cheap structural copy — it lets a
    /// trained bundle be duplicated per precision variant.
    fn boxed_clone(&self) -> Box<dyn Model>;
}

pub use registry::{build_model, ModelConfig, ModelKind};
