//! The Inception Attention U-Net — the paper's model (Section III-D,
//! Fig. 4).
//!
//! Encoder: Inception-A at the finest scale, Inception-B at the middle
//! scale, Inception-C at the deepest scale ("this systematic ordering
//! aligns with established best practices and minimizes information
//! loss during downsampling"). Decoder: attention gates on the skip
//! connections plus CBAM refinement at every stage, ending in a
//! regression head.

use crate::attention_gate::AttentionGate;
use crate::blocks::{DoubleConv, RegressionHead};
use crate::cbam::Cbam;
use crate::inception::{Inception, InceptionKind};
use crate::Model;
use irf_nn::{NodeId, ParamStore, Tape};

/// Ablation switches for the Inception Attention U-Net. The full model
/// enables everything; each `false` reproduces one bar of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrFusionNetOptions {
    /// Use Inception encoder blocks (otherwise plain double convs).
    pub inception: bool,
    /// Apply CBAM in the decoder stages.
    pub cbam: bool,
    /// Apply attention gates on the skip connections.
    pub attention_gates: bool,
}

impl Default for IrFusionNetOptions {
    fn default() -> Self {
        IrFusionNetOptions {
            inception: true,
            cbam: true,
            attention_gates: true,
        }
    }
}

#[derive(Debug, Clone)]
enum EncoderBlock {
    Inception(Inception),
    Plain(DoubleConv),
}

impl EncoderBlock {
    fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        match self {
            EncoderBlock::Inception(b) => b.forward(tape, store, x),
            EncoderBlock::Plain(b) => b.forward(tape, store, x),
        }
    }
}

/// The Inception Attention U-Net.
#[derive(Debug, Clone)]
pub struct IrFusionNet {
    options: IrFusionNetOptions,
    enc1: EncoderBlock,
    enc2: EncoderBlock,
    enc3: EncoderBlock,
    bottleneck: DoubleConv,
    ag3: AttentionGate,
    ag2: AttentionGate,
    ag1: AttentionGate,
    dec3: DoubleConv,
    dec2: DoubleConv,
    dec1: DoubleConv,
    cbam3: Cbam,
    cbam2: Cbam,
    cbam1: Cbam,
    head: RegressionHead,
}

impl IrFusionNet {
    /// Registers the full model.
    pub fn new(store: &mut ParamStore, cin: usize, c: usize, seed: u64) -> Self {
        Self::with_options(store, cin, c, seed, IrFusionNetOptions::default())
    }

    /// Registers the model with ablation switches.
    pub fn with_options(
        store: &mut ParamStore,
        cin: usize,
        c: usize,
        seed: u64,
        options: IrFusionNetOptions,
    ) -> Self {
        let enc = |store: &mut ParamStore, name: &str, kind, cin, cout, seed| {
            if options.inception {
                EncoderBlock::Inception(Inception::new(store, name, kind, cin, cout, seed))
            } else {
                EncoderBlock::Plain(DoubleConv::new(store, name, cin, cout, seed))
            }
        };
        IrFusionNet {
            options,
            enc1: enc(store, "irfusion.enc1", InceptionKind::A, cin, c, seed),
            enc2: enc(store, "irfusion.enc2", InceptionKind::B, c, 2 * c, seed ^ 2),
            enc3: enc(
                store,
                "irfusion.enc3",
                InceptionKind::C,
                2 * c,
                4 * c,
                seed ^ 3,
            ),
            bottleneck: DoubleConv::new(store, "irfusion.bottleneck", 4 * c, 8 * c, seed ^ 4),
            ag3: AttentionGate::new(store, "irfusion.ag3", 4 * c, 8 * c, 2 * c, seed ^ 5),
            ag2: AttentionGate::new(store, "irfusion.ag2", 2 * c, 4 * c, c, seed ^ 6),
            ag1: AttentionGate::new(store, "irfusion.ag1", c, 2 * c, c, seed ^ 7),
            dec3: DoubleConv::new(store, "irfusion.dec3", 12 * c, 4 * c, seed ^ 8),
            dec2: DoubleConv::new(store, "irfusion.dec2", 6 * c, 2 * c, seed ^ 9),
            dec1: DoubleConv::new(store, "irfusion.dec1", 3 * c, c, seed ^ 10),
            cbam3: Cbam::new(store, "irfusion.cbam3", 4 * c, 4, seed ^ 11),
            cbam2: Cbam::new(store, "irfusion.cbam2", 2 * c, 4, seed ^ 12),
            cbam1: Cbam::new(store, "irfusion.cbam1", c, 4, seed ^ 13),
            head: RegressionHead::new(store, "irfusion.head", c, seed ^ 14),
        }
    }

    /// The ablation switches this instance was built with.
    #[must_use]
    pub fn options(&self) -> IrFusionNetOptions {
        self.options
    }

    #[allow(clippy::too_many_arguments)]
    fn up_stage(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        coarse: NodeId,
        skip: NodeId,
        gate: &AttentionGate,
        conv: &DoubleConv,
        cbam: &Cbam,
    ) -> NodeId {
        let up = tape.upsample2(coarse);
        let skip = if self.options.attention_gates {
            gate.forward(tape, store, skip, up)
        } else {
            skip
        };
        let cat = tape.concat_channels(up, skip);
        let mut out = conv.forward(tape, store, cat);
        if self.options.cbam {
            out = cbam.forward(tape, store, out);
        }
        out
    }
}

impl Model for IrFusionNet {
    fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let s1 = self.enc1.forward(tape, store, x);
        let p1 = tape.max_pool2(s1);
        let s2 = self.enc2.forward(tape, store, p1);
        let p2 = tape.max_pool2(s2);
        let s3 = self.enc3.forward(tape, store, p2);
        let p3 = tape.max_pool2(s3);
        let b = self.bottleneck.forward(tape, store, p3);
        let d3 = self.up_stage(tape, store, b, s3, &self.ag3, &self.dec3, &self.cbam3);
        let d2 = self.up_stage(tape, store, d3, s2, &self.ag2, &self.dec2, &self.cbam2);
        let d1 = self.up_stage(tape, store, d2, s1, &self.ag1, &self.dec1, &self.cbam1);
        self.head.forward(tape, store, d1)
    }

    fn name(&self) -> &str {
        "IR-Fusion"
    }

    fn set_linear_head(&mut self, linear: bool) {
        self.head.set_relu(!linear);
    }

    fn boxed_clone(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_nn::init;

    #[test]
    fn forward_shape_full_model() {
        let mut store = ParamStore::new();
        let m = IrFusionNet::new(&mut store, 9, 6, 1);
        let mut tape = Tape::new();
        let x = tape.input(init::uniform([1, 9, 16, 16], -1.0, 1.0, 2));
        let y = m.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), [1, 1, 16, 16]);
        assert!(tape.value(y).data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn ablations_change_parameterization_not_interface() {
        for options in [
            IrFusionNetOptions {
                inception: false,
                ..IrFusionNetOptions::default()
            },
            IrFusionNetOptions {
                cbam: false,
                ..IrFusionNetOptions::default()
            },
            IrFusionNetOptions {
                attention_gates: false,
                ..IrFusionNetOptions::default()
            },
        ] {
            let mut store = ParamStore::new();
            let m = IrFusionNet::with_options(&mut store, 5, 6, 1, options);
            let mut tape = Tape::new();
            let x = tape.input(init::uniform([1, 5, 8, 8], -1.0, 1.0, 2));
            let y = m.forward(&mut tape, &store, x);
            assert_eq!(tape.value(y).shape(), [1, 1, 8, 8], "{options:?}");
        }
    }

    #[test]
    fn encoder_uses_inception_blocks_by_default() {
        let mut store = ParamStore::new();
        let _ = IrFusionNet::new(&mut store, 5, 6, 1);
        assert!(store.iter().any(|(_, n, _)| n.contains("enc2.b1")));
        assert!(store.iter().any(|(_, n, _)| n.contains("cbam")));
        assert!(store.iter().any(|(_, n, _)| n.contains("ag")));
    }

    #[test]
    fn one_training_step_moves_loss() {
        let mut store = ParamStore::new();
        let m = IrFusionNet::new(&mut store, 3, 6, 1);
        let xv = init::uniform([1, 3, 8, 8], 0.0, 1.0, 3);
        let target = irf_nn::Tensor::filled([1, 1, 8, 8], 0.3);
        let mut opt = irf_nn::optim::Adam::new(1e-2);
        let mut first_loss = 0.0;
        let mut last_loss = 0.0;
        for step in 0..8 {
            let mut tape = Tape::new();
            let x = tape.input(xv.clone());
            let y = m.forward(&mut tape, &store, x);
            let (loss, grad) = irf_nn::loss::mae(tape.value(y), &target);
            if step == 0 {
                first_loss = loss;
            }
            last_loss = loss;
            tape.backward(y, grad, &mut store);
            opt.step(&mut store);
        }
        assert!(
            last_loss < first_loss,
            "training should reduce loss: {first_loss} -> {last_loss}"
        );
    }
}
