//! IRPnet (Meng et al., DATE'24): a pyramid model capturing global
//! features, trained with a Kirchhoff's-law-constrained loss.

use crate::blocks::RegressionHead;
use crate::Model;
use irf_nn::layers::ConvBlock;
use irf_nn::{NodeId, ParamStore, Tape};

/// The IRPnet-style spatial pyramid: a stem plus three pooled context
/// levels, all upsampled back to full resolution and fused.
#[derive(Debug, Clone)]
pub struct IrpNet {
    stem: ConvBlock,
    level1: ConvBlock,
    level2: ConvBlock,
    level3: ConvBlock,
    fuse1: ConvBlock,
    fuse2: ConvBlock,
    head: RegressionHead,
}

impl IrpNet {
    /// Registers the model.
    pub fn new(store: &mut ParamStore, cin: usize, c: usize, seed: u64) -> Self {
        IrpNet {
            stem: ConvBlock::new(store, "irpnet.stem", cin, c, 3, seed),
            level1: ConvBlock::new(store, "irpnet.l1", c, c, 3, seed ^ 1),
            level2: ConvBlock::new(store, "irpnet.l2", c, c, 3, seed ^ 2),
            level3: ConvBlock::new(store, "irpnet.l3", c, c, 3, seed ^ 3),
            fuse1: ConvBlock::new(store, "irpnet.fuse1", 4 * c, 2 * c, 3, seed ^ 4),
            fuse2: ConvBlock::new(store, "irpnet.fuse2", 2 * c, c, 3, seed ^ 5),
            head: RegressionHead::new(store, "irpnet.head", c, seed ^ 6),
        }
    }
}

impl Model for IrpNet {
    fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let f0 = self.stem.forward(tape, store, x);
        // Pyramid: progressively pooled context.
        let p1 = tape.avg_pool2(f0);
        let f1 = self.level1.forward(tape, store, p1);
        let p2 = tape.avg_pool2(f1);
        let f2 = self.level2.forward(tape, store, p2);
        let p3 = tape.avg_pool2(f2);
        let f3 = self.level3.forward(tape, store, p3);
        // Upsample every level back to full resolution.
        let u1 = tape.upsample2(f1);
        let mut u2 = tape.upsample2(f2);
        u2 = tape.upsample2(u2);
        let mut u3 = tape.upsample2(f3);
        u3 = tape.upsample2(u3);
        u3 = tape.upsample2(u3);
        let cat = tape.concat_channels(f0, u1);
        let cat = tape.concat_channels(cat, u2);
        let cat = tape.concat_channels(cat, u3);
        let f = self.fuse1.forward(tape, store, cat);
        let f = self.fuse2.forward(tape, store, f);
        self.head.forward(tape, store, f)
    }

    fn name(&self) -> &str {
        "IRPnet"
    }

    fn wants_kirchhoff_loss(&self) -> bool {
        true
    }

    fn set_linear_head(&mut self, linear: bool) {
        self.head.set_relu(!linear);
    }

    fn boxed_clone(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_nn::init;

    #[test]
    fn forward_shape() {
        let mut store = ParamStore::new();
        let m = IrpNet::new(&mut store, 5, 4, 1);
        let mut tape = Tape::new();
        let x = tape.input(init::uniform([1, 5, 16, 16], -1.0, 1.0, 2));
        let y = m.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), [1, 1, 16, 16]);
    }

    #[test]
    fn requests_kirchhoff_loss() {
        let mut store = ParamStore::new();
        let m = IrpNet::new(&mut store, 5, 4, 1);
        assert!(m.wants_kirchhoff_loss());
    }
}
