//! Shared encoder/decoder building blocks.

use irf_nn::layers::ConvBlock;
use irf_nn::{NodeId, ParamStore, Tape};

/// The classic U-Net "double conv": two Conv-Norm-ReLU blocks.
#[derive(Debug, Clone, Copy)]
pub struct DoubleConv {
    first: ConvBlock,
    second: ConvBlock,
}

impl DoubleConv {
    /// Registers both blocks.
    pub fn new(store: &mut ParamStore, name: &str, cin: usize, cout: usize, seed: u64) -> Self {
        DoubleConv {
            first: ConvBlock::new(store, &format!("{name}.0"), cin, cout, 3, seed),
            second: ConvBlock::new(store, &format!("{name}.1"), cout, cout, 3, seed ^ 0x9E37),
        }
    }

    /// Records both blocks.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let y = self.first.forward(tape, store, x);
        self.second.forward(tape, store, y)
    }
}

/// Decoder stage: 2x upsample, concat the skip, double conv.
#[derive(Debug, Clone, Copy)]
pub struct UpBlock {
    conv: DoubleConv,
}

impl UpBlock {
    /// Registers the stage. `cin` is the channel count of the coarse
    /// input, `cskip` of the skip tensor, `cout` of the output.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        cin: usize,
        cskip: usize,
        cout: usize,
        seed: u64,
    ) -> Self {
        UpBlock {
            conv: DoubleConv::new(store, &format!("{name}.conv"), cin + cskip, cout, seed),
        }
    }

    /// Records upsample + concat + double conv.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId, skip: NodeId) -> NodeId {
        let up = tape.upsample2(x);
        let cat = tape.concat_channels(up, skip);
        self.conv.forward(tape, store, cat)
    }
}

/// The regression head: a 1x1 convolution to one channel followed by
/// ReLU (IR drops are non-negative). Borrowed from MAVIREC's
/// "regression-like layer at the end of the decoder path".
#[derive(Debug, Clone, Copy)]
pub struct RegressionHead {
    conv: irf_nn::layers::Conv2d,
    relu: bool,
}

impl RegressionHead {
    /// Registers the head. The bias starts slightly positive so the
    /// output ReLU is born alive (an all-negative pre-activation would
    /// block every gradient at step 0).
    pub fn new(store: &mut ParamStore, name: &str, cin: usize, seed: u64) -> Self {
        let conv = irf_nn::layers::Conv2d::new(store, name, cin, 1, 1, 1, seed);
        store
            .value_mut(conv.bias())
            .data_mut()
            .iter_mut()
            .for_each(|b| *b = 0.05);
        RegressionHead { conv, relu: true }
    }

    /// Switches the output ReLU off (linear head). Residual-fusion
    /// training needs signed corrections, so the clamp moves to the
    /// pipeline's final `rough + correction` combination instead.
    pub fn set_relu(&mut self, relu: bool) {
        self.relu = relu;
    }

    /// Records the head.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let y = self.conv.forward(tape, store, x);
        if self.relu {
            tape.relu(y)
        } else {
            y
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_nn::Tensor;

    #[test]
    fn double_conv_keeps_spatial_size() {
        let mut store = ParamStore::new();
        let dc = DoubleConv::new(&mut store, "dc", 3, 8, 1);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::zeros([1, 3, 8, 8]));
        let y = dc.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), [1, 8, 8, 8]);
    }

    #[test]
    fn up_block_doubles_resolution_and_fuses_skip() {
        let mut store = ParamStore::new();
        let up = UpBlock::new(&mut store, "up", 16, 8, 8, 1);
        let mut tape = Tape::new();
        let coarse = tape.input(Tensor::zeros([1, 16, 4, 4]));
        let skip = tape.input(Tensor::zeros([1, 8, 8, 8]));
        let y = up.forward(&mut tape, &store, coarse, skip);
        assert_eq!(tape.value(y).shape(), [1, 8, 8, 8]);
    }

    #[test]
    fn regression_head_is_nonnegative_single_channel() {
        let mut store = ParamStore::new();
        let head = RegressionHead::new(&mut store, "head", 8, 1);
        let mut tape = Tape::new();
        let x = tape.input(irf_nn::init::uniform([2, 8, 4, 4], -1.0, 1.0, 2));
        let y = head.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), [2, 1, 4, 4]);
        assert!(tape.value(y).data().iter().all(|&v| v >= 0.0));
    }
}
