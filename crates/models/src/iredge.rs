//! IREDGe (Chhabria et al., ASPDAC'21): the plain encoder-decoder
//! U-Net baseline.

use crate::blocks::{DoubleConv, RegressionHead, UpBlock};
use crate::Model;
use irf_nn::{NodeId, ParamStore, Tape};

/// The IREDGe EDGe network: three pooling stages, plain double-conv
/// blocks, skip connections, regression head.
#[derive(Debug, Clone)]
pub struct IrEdge {
    enc1: DoubleConv,
    enc2: DoubleConv,
    enc3: DoubleConv,
    bottleneck: DoubleConv,
    up3: UpBlock,
    up2: UpBlock,
    up1: UpBlock,
    head: RegressionHead,
}

impl IrEdge {
    /// Registers the model with `cin` input channels and base width
    /// `c`.
    pub fn new(store: &mut ParamStore, cin: usize, c: usize, seed: u64) -> Self {
        IrEdge {
            enc1: DoubleConv::new(store, "iredge.enc1", cin, c, seed),
            enc2: DoubleConv::new(store, "iredge.enc2", c, 2 * c, seed ^ 2),
            enc3: DoubleConv::new(store, "iredge.enc3", 2 * c, 4 * c, seed ^ 3),
            bottleneck: DoubleConv::new(store, "iredge.bottleneck", 4 * c, 8 * c, seed ^ 4),
            up3: UpBlock::new(store, "iredge.up3", 8 * c, 4 * c, 4 * c, seed ^ 5),
            up2: UpBlock::new(store, "iredge.up2", 4 * c, 2 * c, 2 * c, seed ^ 6),
            up1: UpBlock::new(store, "iredge.up1", 2 * c, c, c, seed ^ 7),
            head: RegressionHead::new(store, "iredge.head", c, seed ^ 8),
        }
    }
}

impl Model for IrEdge {
    fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let s1 = self.enc1.forward(tape, store, x);
        let p1 = tape.max_pool2(s1);
        let s2 = self.enc2.forward(tape, store, p1);
        let p2 = tape.max_pool2(s2);
        let s3 = self.enc3.forward(tape, store, p2);
        let p3 = tape.max_pool2(s3);
        let b = self.bottleneck.forward(tape, store, p3);
        let d3 = self.up3.forward(tape, store, b, s3);
        let d2 = self.up2.forward(tape, store, d3, s2);
        let d1 = self.up1.forward(tape, store, d2, s1);
        self.head.forward(tape, store, d1)
    }

    fn name(&self) -> &str {
        "IREDGe"
    }

    fn set_linear_head(&mut self, linear: bool) {
        self.head.set_relu(!linear);
    }

    fn boxed_clone(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_nn::{init, Tensor};

    #[test]
    fn forward_shape_and_nonnegativity() {
        let mut store = ParamStore::new();
        let m = IrEdge::new(&mut store, 5, 4, 1);
        let mut tape = Tape::new();
        let x = tape.input(init::uniform([1, 5, 16, 16], -1.0, 1.0, 2));
        let y = m.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), [1, 1, 16, 16]);
        assert!(tape.value(y).data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn trains_end_to_end_one_step() {
        let mut store = ParamStore::new();
        let m = IrEdge::new(&mut store, 3, 4, 1);
        let mut tape = Tape::new();
        let x = tape.input(init::uniform([1, 3, 8, 8], 0.0, 1.0, 3));
        let y = m.forward(&mut tape, &store, x);
        let target = Tensor::filled([1, 1, 8, 8], 0.5);
        let (_, grad) = irf_nn::loss::mae(tape.value(y), &target);
        tape.backward(y, grad, &mut store);
        assert!(store.grad_norm() > 0.0);
    }
}
