//! Inception modules A, B, and C (Szegedy et al., Inception-v3/v4).
//!
//! Multi-branch convolutions that see several kernel sizes at once.
//! Following the paper (and Inception-v4 best practice), the encoder
//! applies **A** at the earliest scale, **B** at moderate scale, and
//! **C** — optimized for high-dimensional features — at the deepest
//! scale.

use irf_nn::layers::{Conv2d, ConvRect, Norm};
use irf_nn::{NodeId, ParamStore, Tape};

/// Which Inception variant a block applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InceptionKind {
    /// 1x1 / 3x3 / double-3x3 branches (early layers).
    A,
    /// Factorized 1x7 + 7x1 branches (moderate-size features).
    B,
    /// Expanded 1x3 / 3x1 branches (high-dimensional features).
    C,
}

/// One Inception block: multi-branch convolution + norm + ReLU with
/// `cout` output channels split across three branches.
#[derive(Debug, Clone)]
pub struct Inception {
    kind: InceptionKind,
    // Branch 0: plain 1x1.
    b0: Conv2d,
    // Branch 1 and 2: chains whose composition depends on the kind.
    b1: Vec<BranchConv>,
    b2: Vec<BranchConv>,
    norm: Norm,
}

#[derive(Debug, Clone, Copy)]
enum BranchConv {
    Square(Conv2d),
    Rect(ConvRect),
}

impl BranchConv {
    fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        match self {
            BranchConv::Square(c) => c.forward(tape, store, x),
            BranchConv::Rect(c) => c.forward(tape, store, x),
        }
    }
}

impl Inception {
    /// Registers an Inception block mapping `cin` to `cout` channels.
    ///
    /// # Panics
    ///
    /// Panics if `cout < 3` (each branch needs at least one channel).
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        kind: InceptionKind,
        cin: usize,
        cout: usize,
        seed: u64,
    ) -> Self {
        assert!(cout >= 3, "inception needs at least 3 output channels");
        let c0 = cout - 2 * (cout / 3);
        let c1 = cout / 3;
        let c2 = cout / 3;
        let b0 = Conv2d::new(store, &format!("{name}.b0"), cin, c0, 1, 1, seed);
        let (b1, b2) = match kind {
            InceptionKind::A => {
                // b1: 1x1 -> 3x3 ; b2: 1x1 -> 3x3 -> 3x3.
                let b1 = vec![
                    BranchConv::Square(Conv2d::new(
                        store,
                        &format!("{name}.b1.0"),
                        cin,
                        c1,
                        1,
                        1,
                        seed ^ 1,
                    )),
                    BranchConv::Square(Conv2d::new(
                        store,
                        &format!("{name}.b1.1"),
                        c1,
                        c1,
                        3,
                        1,
                        seed ^ 2,
                    )),
                ];
                let b2 = vec![
                    BranchConv::Square(Conv2d::new(
                        store,
                        &format!("{name}.b2.0"),
                        cin,
                        c2,
                        1,
                        1,
                        seed ^ 3,
                    )),
                    BranchConv::Square(Conv2d::new(
                        store,
                        &format!("{name}.b2.1"),
                        c2,
                        c2,
                        3,
                        1,
                        seed ^ 4,
                    )),
                    BranchConv::Square(Conv2d::new(
                        store,
                        &format!("{name}.b2.2"),
                        c2,
                        c2,
                        3,
                        1,
                        seed ^ 5,
                    )),
                ];
                (b1, b2)
            }
            InceptionKind::B => {
                // Factorized 7x7: 1x1 -> 1x7 -> 7x1 (b1) and a longer
                // 1x1 -> 7x1 -> 1x7 chain (b2).
                let b1 = vec![
                    BranchConv::Square(Conv2d::new(
                        store,
                        &format!("{name}.b1.0"),
                        cin,
                        c1,
                        1,
                        1,
                        seed ^ 1,
                    )),
                    BranchConv::Rect(ConvRect::new(
                        store,
                        &format!("{name}.b1.1"),
                        c1,
                        c1,
                        1,
                        7,
                        seed ^ 2,
                    )),
                    BranchConv::Rect(ConvRect::new(
                        store,
                        &format!("{name}.b1.2"),
                        c1,
                        c1,
                        7,
                        1,
                        seed ^ 3,
                    )),
                ];
                let b2 = vec![
                    BranchConv::Square(Conv2d::new(
                        store,
                        &format!("{name}.b2.0"),
                        cin,
                        c2,
                        1,
                        1,
                        seed ^ 4,
                    )),
                    BranchConv::Rect(ConvRect::new(
                        store,
                        &format!("{name}.b2.1"),
                        c2,
                        c2,
                        7,
                        1,
                        seed ^ 5,
                    )),
                    BranchConv::Rect(ConvRect::new(
                        store,
                        &format!("{name}.b2.2"),
                        c2,
                        c2,
                        1,
                        7,
                        seed ^ 6,
                    )),
                ];
                (b1, b2)
            }
            InceptionKind::C => {
                // Expanded small kernels: 1x1 -> 1x3 (b1) and
                // 1x1 -> 3x1 -> 1x3 (b2).
                let b1 = vec![
                    BranchConv::Square(Conv2d::new(
                        store,
                        &format!("{name}.b1.0"),
                        cin,
                        c1,
                        1,
                        1,
                        seed ^ 1,
                    )),
                    BranchConv::Rect(ConvRect::new(
                        store,
                        &format!("{name}.b1.1"),
                        c1,
                        c1,
                        1,
                        3,
                        seed ^ 2,
                    )),
                ];
                let b2 = vec![
                    BranchConv::Square(Conv2d::new(
                        store,
                        &format!("{name}.b2.0"),
                        cin,
                        c2,
                        1,
                        1,
                        seed ^ 3,
                    )),
                    BranchConv::Rect(ConvRect::new(
                        store,
                        &format!("{name}.b2.1"),
                        c2,
                        c2,
                        3,
                        1,
                        seed ^ 4,
                    )),
                    BranchConv::Rect(ConvRect::new(
                        store,
                        &format!("{name}.b2.2"),
                        c2,
                        c2,
                        1,
                        3,
                        seed ^ 5,
                    )),
                ];
                (b1, b2)
            }
        };
        let norm = Norm::new(store, &format!("{name}.norm"), cout);
        Inception {
            kind,
            b0,
            b1,
            b2,
            norm,
        }
    }

    /// The variant of this block.
    #[must_use]
    pub fn kind(&self) -> InceptionKind {
        self.kind
    }

    /// Records the block: branch concat + norm + ReLU.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let y0 = self.b0.forward(tape, store, x);
        let mut y1 = x;
        for c in &self.b1 {
            y1 = c.forward(tape, store, y1);
        }
        let mut y2 = x;
        for c in &self.b2 {
            y2 = c.forward(tape, store, y2);
        }
        let cat = tape.concat_channels(y0, y1);
        let cat = tape.concat_channels(cat, y2);
        let normed = self.norm.forward(tape, store, cat);
        tape.relu(normed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_nn::{init, Tensor};

    #[test]
    fn all_kinds_preserve_spatial_size_and_hit_cout() {
        for kind in [InceptionKind::A, InceptionKind::B, InceptionKind::C] {
            let mut store = ParamStore::new();
            let inc = Inception::new(&mut store, "inc", kind, 5, 10, 42);
            let mut tape = Tape::new();
            let x = tape.input(Tensor::zeros([1, 5, 8, 8]));
            let y = inc.forward(&mut tape, &store, x);
            assert_eq!(tape.value(y).shape(), [1, 10, 8, 8], "{kind:?}");
        }
    }

    #[test]
    fn channel_split_covers_cout_exactly() {
        // cout = 10 -> branches 4 + 3 + 3.
        let mut store = ParamStore::new();
        let inc = Inception::new(&mut store, "inc", InceptionKind::A, 4, 10, 1);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::zeros([1, 4, 4, 4]));
        let y = inc.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape()[1], 10);
    }

    #[test]
    fn gradients_flow_through_all_branches() {
        let mut store = ParamStore::new();
        let inc = Inception::new(&mut store, "inc", InceptionKind::B, 3, 6, 7);
        let mut tape = Tape::new();
        let x = tape.input(init::uniform([1, 3, 8, 8], -1.0, 1.0, 3));
        let y = inc.forward(&mut tape, &store, x);
        tape.backward(y, Tensor::filled([1, 6, 8, 8], 1.0), &mut store);
        // Every conv branch parameter should have nonzero gradient norm.
        let zero_grads = store
            .iter()
            .filter(|(id, name, _)| {
                name.contains(".b") && store.grad(*id).data().iter().all(|&g| g == 0.0)
            })
            .count();
        assert_eq!(zero_grads, 0, "some branches received no gradient");
    }

    #[test]
    #[should_panic(expected = "at least 3 output channels")]
    fn tiny_cout_is_rejected() {
        let mut store = ParamStore::new();
        let _ = Inception::new(&mut store, "inc", InceptionKind::A, 4, 2, 1);
    }
}
