//! Uniform construction of every model in the zoo.

use crate::contest::ContestWinner;
use crate::ir_fusion_net::{IrFusionNet, IrFusionNetOptions};
use crate::iredge::IrEdge;
use crate::irpnet::IrpNet;
use crate::maunet::MaUnet;
use crate::mavirec::Mavirec;
use crate::pgau::Pgau;
use crate::Model;
use irf_nn::ParamStore;

/// Which model to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// IREDGe plain U-Net.
    IrEdge,
    /// MAVIREC folded 3-D U-Net.
    Mavirec,
    /// IRPnet pyramid + Kirchhoff loss.
    IrpNet,
    /// PGAU attention U-Net.
    Pgau,
    /// MAUnet multiscale attention U-Net.
    MaUnet,
    /// ICCAD-2023 contest-winner-style wide U-Net.
    ContestWinner,
    /// The paper's Inception Attention U-Net.
    IrFusion,
    /// IR-Fusion without Inception blocks (Fig. 8 "w/o Inception").
    IrFusionNoInception,
    /// IR-Fusion without CBAM (Fig. 8 "w/o CBAM").
    IrFusionNoCbam,
}

impl ModelKind {
    /// Stable numeric id for checkpoint headers.
    #[must_use]
    pub fn id(self) -> u32 {
        match self {
            ModelKind::IrEdge => 0,
            ModelKind::Mavirec => 1,
            ModelKind::IrpNet => 2,
            ModelKind::Pgau => 3,
            ModelKind::MaUnet => 4,
            ModelKind::ContestWinner => 5,
            ModelKind::IrFusion => 6,
            ModelKind::IrFusionNoInception => 7,
            ModelKind::IrFusionNoCbam => 8,
        }
    }

    /// Inverse of [`ModelKind::id`].
    #[must_use]
    pub fn from_id(id: u32) -> Option<ModelKind> {
        Some(match id {
            0 => ModelKind::IrEdge,
            1 => ModelKind::Mavirec,
            2 => ModelKind::IrpNet,
            3 => ModelKind::Pgau,
            4 => ModelKind::MaUnet,
            5 => ModelKind::ContestWinner,
            6 => ModelKind::IrFusion,
            7 => ModelKind::IrFusionNoInception,
            8 => ModelKind::IrFusionNoCbam,
            _ => return None,
        })
    }

    /// Every paper-facing model (Table I rows), in table order.
    pub const TABLE1: [ModelKind; 7] = [
        ModelKind::IrEdge,
        ModelKind::Mavirec,
        ModelKind::IrpNet,
        ModelKind::Pgau,
        ModelKind::MaUnet,
        ModelKind::ContestWinner,
        ModelKind::IrFusion,
    ];
}

/// Shared hyperparameters of a model instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Input feature channels.
    pub in_channels: usize,
    /// Base channel width (the paper trains at GPU scale; the CPU
    /// reproduction defaults narrower).
    pub base_channels: usize,
    /// Weight-initialization seed.
    pub seed: u64,
    /// Build with a linear (signed) output head instead of ReLU —
    /// used by the residual fusion pipeline.
    pub linear_head: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            in_channels: 9,
            base_channels: 6,
            seed: 0xC0FFEE,
            linear_head: false,
        }
    }
}

/// Builds a model into a fresh parameter store.
#[must_use]
pub fn build_model(kind: ModelKind, config: ModelConfig) -> (Box<dyn Model>, ParamStore) {
    let mut store = ParamStore::new();
    let (cin, c, seed) = (config.in_channels, config.base_channels, config.seed);
    let mut model: Box<dyn Model> = match kind {
        ModelKind::IrEdge => Box::new(IrEdge::new(&mut store, cin, c, seed)),
        ModelKind::Mavirec => Box::new(Mavirec::new(&mut store, cin, c, seed)),
        ModelKind::IrpNet => Box::new(IrpNet::new(&mut store, cin, c, seed)),
        ModelKind::Pgau => Box::new(Pgau::new(&mut store, cin, c, seed)),
        ModelKind::MaUnet => Box::new(MaUnet::new(&mut store, cin, c, seed)),
        ModelKind::ContestWinner => Box::new(ContestWinner::new(&mut store, cin, c, seed)),
        ModelKind::IrFusion => Box::new(IrFusionNet::new(&mut store, cin, c, seed)),
        ModelKind::IrFusionNoInception => Box::new(IrFusionNet::with_options(
            &mut store,
            cin,
            c,
            seed,
            IrFusionNetOptions {
                inception: false,
                ..IrFusionNetOptions::default()
            },
        )),
        ModelKind::IrFusionNoCbam => Box::new(IrFusionNet::with_options(
            &mut store,
            cin,
            c,
            seed,
            IrFusionNetOptions {
                cbam: false,
                ..IrFusionNetOptions::default()
            },
        )),
    };
    model.set_linear_head(config.linear_head);
    (model, store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_nn::{init, Tape};

    #[test]
    fn every_table1_model_builds_and_runs() {
        for kind in ModelKind::TABLE1 {
            let (model, store) = build_model(
                kind,
                ModelConfig {
                    in_channels: 4,
                    base_channels: 6,
                    seed: 1,
                    linear_head: false,
                },
            );
            let mut tape = Tape::new();
            let x = tape.input(init::uniform([1, 4, 16, 16], -1.0, 1.0, 2));
            let y = model.forward(&mut tape, &store, x);
            assert_eq!(tape.value(y).shape(), [1, 1, 16, 16], "{}", model.name());
            assert!(store.num_scalars() > 0);
        }
    }

    #[test]
    fn batched_forward_is_bitwise_identical_to_single_samples() {
        // The serving layer batches concurrent requests into one forward
        // pass; every model must produce bit-for-bit the same output for
        // sample `b` of a batch as for that sample alone.
        use irf_nn::Tensor;
        for kind in ModelKind::TABLE1 {
            let (model, store) = build_model(
                kind,
                ModelConfig {
                    in_channels: 4,
                    base_channels: 6,
                    seed: 1,
                    linear_head: true,
                },
            );
            let samples: Vec<Tensor> = (0..2)
                .map(|s| init::uniform([1, 4, 16, 16], -1.0, 1.0, 100 + s))
                .collect();
            let batched = {
                let mut tape = Tape::new();
                let x = tape.input(Tensor::concat_batch(&samples));
                let y = model.forward(&mut tape, &store, x);
                tape.value(y).clone()
            };
            assert_eq!(batched.shape(), [2, 1, 16, 16], "{}", model.name());
            for (s, part) in batched.split_batch().into_iter().enumerate() {
                let single = {
                    let mut tape = Tape::new();
                    let x = tape.input(samples[s].clone());
                    let y = model.forward(&mut tape, &store, x);
                    tape.value(y).clone()
                };
                let pb: Vec<u32> = part.data().iter().map(|v| v.to_bits()).collect();
                let sb: Vec<u32> = single.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(pb, sb, "{} sample {s} differs in batch", model.name());
            }
        }
    }

    #[test]
    fn names_match_paper_rows() {
        let names: Vec<String> = ModelKind::TABLE1
            .iter()
            .map(|&k| {
                build_model(
                    k,
                    ModelConfig {
                        in_channels: 3,
                        base_channels: 6,
                        seed: 1,
                        linear_head: false,
                    },
                )
                .0
                .name()
                .to_string()
            })
            .collect();
        assert_eq!(
            names,
            vec![
                "IREDGe",
                "MAVIREC",
                "IRPnet",
                "PGAU",
                "MAUnet",
                "ContestWinner",
                "IR-Fusion"
            ]
        );
    }

    #[test]
    fn only_irpnet_wants_kirchhoff() {
        for kind in ModelKind::TABLE1 {
            let (model, _) = build_model(
                kind,
                ModelConfig {
                    in_channels: 3,
                    base_channels: 6,
                    seed: 1,
                    linear_head: false,
                },
            );
            assert_eq!(model.wants_kirchhoff_loss(), kind == ModelKind::IrpNet);
        }
    }
}
