//! Convolutional Block Attention Module (Woo et al., ECCV'18).
//!
//! CBAM refines a feature map with two sequential gates (paper
//! Eq. (6)): channel attention `M_c` (global view) followed by spatial
//! attention `M_s` (local view):
//!
//! ```text
//! m'  = M_c(m) ⊗ m
//! m'' = M_s(m') ⊗ m'
//! ```

use irf_nn::layers::{Conv2d, Linear};
use irf_nn::{NodeId, ParamStore, Tape};

/// The CBAM layer.
#[derive(Debug, Clone, Copy)]
pub struct Cbam {
    /// Shared MLP of the channel gate (applied to both pooled vectors).
    fc1: Linear,
    fc2: Linear,
    /// 7x7 convolution of the spatial gate over [mean; max] maps.
    spatial: Conv2d,
}

impl Cbam {
    /// Registers CBAM for `c` channels with reduction ratio `r`
    /// (clamped so the bottleneck keeps at least one unit).
    pub fn new(store: &mut ParamStore, name: &str, c: usize, r: usize, seed: u64) -> Self {
        let hidden = (c / r).max(1);
        Cbam {
            fc1: Linear::new(store, &format!("{name}.mc.fc1"), c, hidden, seed),
            fc2: Linear::new(store, &format!("{name}.mc.fc2"), hidden, c, seed ^ 0x1111),
            spatial: Conv2d::new(store, &format!("{name}.ms.conv"), 2, 1, 7, 1, seed ^ 0x2222),
        }
    }

    /// Records channel attention: `sigmoid(MLP(avg) + MLP(max))`.
    fn channel_gate(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let avg = tape.global_avg_pool(x);
        let max = tape.global_max_pool(x);
        let a = self.fc1.forward(tape, store, avg);
        let a = tape.relu(a);
        let a = self.fc2.forward(tape, store, a);
        let m = self.fc1.forward(tape, store, max);
        let m = tape.relu(m);
        let m = self.fc2.forward(tape, store, m);
        let s = tape.add(a, m);
        tape.sigmoid(s)
    }

    /// Records spatial attention: `sigmoid(conv7x7([mean_c; max_c]))`.
    fn spatial_gate(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let mean = tape.channel_mean(x);
        let max = tape.channel_max(x);
        let cat = tape.concat_channels(mean, max);
        let conv = self.spatial.forward(tape, store, cat);
        tape.sigmoid(conv)
    }

    /// Records the full CBAM refinement `m'' = M_s(M_c(m) ⊗ m) ⊗ ...`.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let mc = self.channel_gate(tape, store, x);
        let xc = tape.mul_channel(x, mc);
        let ms = self.spatial_gate(tape, store, xc);
        tape.mul_spatial(xc, ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_nn::{init, Tensor};

    #[test]
    fn output_shape_matches_input() {
        let mut store = ParamStore::new();
        let cbam = Cbam::new(&mut store, "cbam", 8, 4, 3);
        let mut tape = Tape::new();
        let x = tape.input(init::uniform([2, 8, 6, 6], -1.0, 1.0, 1));
        let y = cbam.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), [2, 8, 6, 6]);
    }

    #[test]
    fn attention_is_a_bounded_gate() {
        // With sigmoid gates, |output| <= |input| elementwise.
        let mut store = ParamStore::new();
        let cbam = Cbam::new(&mut store, "cbam", 4, 2, 5);
        let mut tape = Tape::new();
        let xv = init::uniform([1, 4, 5, 5], -2.0, 2.0, 9);
        let x = tape.input(xv.clone());
        let y = cbam.forward(&mut tape, &store, x);
        for (o, i) in tape.value(y).data().iter().zip(xv.data()) {
            assert!(o.abs() <= i.abs() + 1e-6);
        }
    }

    #[test]
    fn gradients_flow_through_cbam() {
        let mut store = ParamStore::new();
        let cbam = Cbam::new(&mut store, "cbam", 4, 2, 5);
        let mut tape = Tape::new();
        let x = tape.input(init::uniform([1, 4, 4, 4], -1.0, 1.0, 9));
        let y = cbam.forward(&mut tape, &store, x);
        let seed = Tensor::filled(tape.value(y).shape(), 1.0);
        tape.backward(y, seed, &mut store);
        assert!(store.grad_norm() > 0.0, "parameters must receive gradient");
    }

    #[test]
    fn reduction_is_clamped() {
        // c=2, r=16 must not create a zero-width bottleneck.
        let mut store = ParamStore::new();
        let cbam = Cbam::new(&mut store, "cbam", 2, 16, 1);
        let mut tape = Tape::new();
        let x = tape.input(Tensor::zeros([1, 2, 4, 4]));
        let y = cbam.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), [1, 2, 4, 4]);
    }
}
