//! ICCAD-2023 contest-winner-style baseline: a wide plain U-Net with
//! an input refinement stem (the winning entries were heavily tuned
//! U-Net variants without architectural novelties).

use crate::blocks::{DoubleConv, RegressionHead, UpBlock};
use crate::Model;
use irf_nn::layers::ConvBlock;
use irf_nn::{NodeId, ParamStore, Tape};

/// The contest-winner-style model: stem + U-Net at 1.5x width.
#[derive(Debug, Clone)]
pub struct ContestWinner {
    stem: ConvBlock,
    enc1: DoubleConv,
    enc2: DoubleConv,
    enc3: DoubleConv,
    bottleneck: DoubleConv,
    up3: UpBlock,
    up2: UpBlock,
    up1: UpBlock,
    head: RegressionHead,
}

impl ContestWinner {
    /// Registers the model (internally widened by 3/2).
    pub fn new(store: &mut ParamStore, cin: usize, c: usize, seed: u64) -> Self {
        let w = c + c / 2;
        ContestWinner {
            stem: ConvBlock::new(store, "contest.stem", cin, w, 3, seed),
            enc1: DoubleConv::new(store, "contest.enc1", w, w, seed ^ 2),
            enc2: DoubleConv::new(store, "contest.enc2", w, 2 * w, seed ^ 3),
            enc3: DoubleConv::new(store, "contest.enc3", 2 * w, 4 * w, seed ^ 4),
            bottleneck: DoubleConv::new(store, "contest.bottleneck", 4 * w, 8 * w, seed ^ 5),
            up3: UpBlock::new(store, "contest.up3", 8 * w, 4 * w, 4 * w, seed ^ 6),
            up2: UpBlock::new(store, "contest.up2", 4 * w, 2 * w, 2 * w, seed ^ 7),
            up1: UpBlock::new(store, "contest.up1", 2 * w, w, w, seed ^ 8),
            head: RegressionHead::new(store, "contest.head", w, seed ^ 9),
        }
    }
}

impl Model for ContestWinner {
    fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let f = self.stem.forward(tape, store, x);
        let s1 = self.enc1.forward(tape, store, f);
        let p1 = tape.max_pool2(s1);
        let s2 = self.enc2.forward(tape, store, p1);
        let p2 = tape.max_pool2(s2);
        let s3 = self.enc3.forward(tape, store, p2);
        let p3 = tape.max_pool2(s3);
        let b = self.bottleneck.forward(tape, store, p3);
        let d3 = self.up3.forward(tape, store, b, s3);
        let d2 = self.up2.forward(tape, store, d3, s2);
        let d1 = self.up1.forward(tape, store, d2, s1);
        self.head.forward(tape, store, d1)
    }

    fn name(&self) -> &str {
        "ContestWinner"
    }

    fn set_linear_head(&mut self, linear: bool) {
        self.head.set_relu(!linear);
    }

    fn boxed_clone(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_nn::init;

    #[test]
    fn forward_shape() {
        let mut store = ParamStore::new();
        let m = ContestWinner::new(&mut store, 5, 4, 1);
        let mut tape = Tape::new();
        let x = tape.input(init::uniform([1, 5, 16, 16], -1.0, 1.0, 2));
        let y = m.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), [1, 1, 16, 16]);
    }

    #[test]
    fn wider_than_iredge() {
        let mut a = ParamStore::new();
        let _ = ContestWinner::new(&mut a, 5, 4, 1);
        let mut b = ParamStore::new();
        let _ = crate::iredge::IrEdge::new(&mut b, 5, 4, 1);
        assert!(a.num_scalars() > b.num_scalars());
    }
}
