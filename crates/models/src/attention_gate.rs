//! Attention gates on skip connections (Attention U-Net style, as
//! used by PGAU and by the Inception Attention U-Net).

use irf_nn::layers::Conv2d;
use irf_nn::{NodeId, ParamStore, Tape};

/// An additive attention gate: the decoder's gating signal decides
/// which skip-connection regions pass through.
///
/// ```text
/// att = sigmoid( psi( relu( theta_x(skip) + phi_g(gate) ) ) )
/// out = skip * att
/// ```
///
/// `gate` must already be at the skip's spatial resolution (the
/// decoder upsamples before gating).
#[derive(Debug, Clone, Copy)]
pub struct AttentionGate {
    theta_x: Conv2d,
    phi_g: Conv2d,
    psi: Conv2d,
}

impl AttentionGate {
    /// Registers a gate with `cskip`/`cgate` input channels and an
    /// internal width of `cmid`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        cskip: usize,
        cgate: usize,
        cmid: usize,
        seed: u64,
    ) -> Self {
        AttentionGate {
            theta_x: Conv2d::new(store, &format!("{name}.theta_x"), cskip, cmid, 1, 1, seed),
            phi_g: Conv2d::new(
                store,
                &format!("{name}.phi_g"),
                cgate,
                cmid,
                1,
                1,
                seed ^ 0xA,
            ),
            psi: Conv2d::new(store, &format!("{name}.psi"), cmid, 1, 1, 1, seed ^ 0xB),
        }
    }

    /// Records the gate; returns the gated skip tensor.
    ///
    /// # Panics
    ///
    /// Panics if `skip` and `gate` have different spatial sizes.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        skip: NodeId,
        gate: NodeId,
    ) -> NodeId {
        let tx = self.theta_x.forward(tape, store, skip);
        let pg = self.phi_g.forward(tape, store, gate);
        let sum = tape.add(tx, pg);
        let act = tape.relu(sum);
        let psi = self.psi.forward(tape, store, act);
        let att = tape.sigmoid(psi);
        tape.mul_spatial(skip, att)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_nn::{init, Tensor};

    #[test]
    fn gate_preserves_skip_shape() {
        let mut store = ParamStore::new();
        let ag = AttentionGate::new(&mut store, "ag", 8, 16, 4, 1);
        let mut tape = Tape::new();
        let skip = tape.input(init::uniform([1, 8, 8, 8], -1.0, 1.0, 2));
        let gate = tape.input(init::uniform([1, 16, 8, 8], -1.0, 1.0, 3));
        let y = ag.forward(&mut tape, &store, skip, gate);
        assert_eq!(tape.value(y).shape(), [1, 8, 8, 8]);
    }

    #[test]
    fn gate_attenuates_not_amplifies() {
        let mut store = ParamStore::new();
        let ag = AttentionGate::new(&mut store, "ag", 4, 4, 2, 7);
        let mut tape = Tape::new();
        let sv = init::uniform([1, 4, 4, 4], -2.0, 2.0, 5);
        let skip = tape.input(sv.clone());
        let gate = tape.input(init::uniform([1, 4, 4, 4], -1.0, 1.0, 6));
        let y = ag.forward(&mut tape, &store, skip, gate);
        for (o, i) in tape.value(y).data().iter().zip(sv.data()) {
            assert!(o.abs() <= i.abs() + 1e-6);
        }
    }

    #[test]
    fn gradients_reach_gate_parameters() {
        let mut store = ParamStore::new();
        let ag = AttentionGate::new(&mut store, "ag", 4, 4, 2, 7);
        let mut tape = Tape::new();
        let skip = tape.input(init::uniform([1, 4, 4, 4], -1.0, 1.0, 5));
        let gate = tape.input(init::uniform([1, 4, 4, 4], -1.0, 1.0, 6));
        let y = ag.forward(&mut tape, &store, skip, gate);
        tape.backward(y, Tensor::filled([1, 4, 4, 4], 1.0), &mut store);
        assert!(store.grad_norm() > 0.0);
    }
}
