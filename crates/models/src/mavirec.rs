//! MAVIREC (Chhabria et al., DATE'21): a 3-D U-Net for vectored IR
//! drop. The depth (time/vector) axis folds into input channels for
//! static analysis, so the reproduction models it as a U-Net preceded
//! by two channel-fusion convolutions (the collapsed 3-D stem).

use crate::blocks::{DoubleConv, RegressionHead, UpBlock};
use crate::Model;
use irf_nn::layers::ConvBlock;
use irf_nn::{NodeId, ParamStore, Tape};

/// The MAVIREC-style model: 3-D-stem fusion convs + U-Net.
#[derive(Debug, Clone)]
pub struct Mavirec {
    stem1: ConvBlock,
    stem2: ConvBlock,
    enc1: DoubleConv,
    enc2: DoubleConv,
    enc3: DoubleConv,
    bottleneck: DoubleConv,
    up3: UpBlock,
    up2: UpBlock,
    up1: UpBlock,
    head: RegressionHead,
}

impl Mavirec {
    /// Registers the model.
    pub fn new(store: &mut ParamStore, cin: usize, c: usize, seed: u64) -> Self {
        Mavirec {
            stem1: ConvBlock::new(store, "mavirec.stem1", cin, c, 3, seed),
            stem2: ConvBlock::new(store, "mavirec.stem2", c, c, 3, seed ^ 1),
            enc1: DoubleConv::new(store, "mavirec.enc1", c, c, seed ^ 2),
            enc2: DoubleConv::new(store, "mavirec.enc2", c, 2 * c, seed ^ 3),
            enc3: DoubleConv::new(store, "mavirec.enc3", 2 * c, 4 * c, seed ^ 4),
            bottleneck: DoubleConv::new(store, "mavirec.bottleneck", 4 * c, 8 * c, seed ^ 5),
            up3: UpBlock::new(store, "mavirec.up3", 8 * c, 4 * c, 4 * c, seed ^ 6),
            up2: UpBlock::new(store, "mavirec.up2", 4 * c, 2 * c, 2 * c, seed ^ 7),
            up1: UpBlock::new(store, "mavirec.up1", 2 * c, c, c, seed ^ 8),
            head: RegressionHead::new(store, "mavirec.head", c, seed ^ 9),
        }
    }
}

impl Model for Mavirec {
    fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        let f = self.stem1.forward(tape, store, x);
        let f = self.stem2.forward(tape, store, f);
        let s1 = self.enc1.forward(tape, store, f);
        let p1 = tape.max_pool2(s1);
        let s2 = self.enc2.forward(tape, store, p1);
        let p2 = tape.max_pool2(s2);
        let s3 = self.enc3.forward(tape, store, p2);
        let p3 = tape.max_pool2(s3);
        let b = self.bottleneck.forward(tape, store, p3);
        let d3 = self.up3.forward(tape, store, b, s3);
        let d2 = self.up2.forward(tape, store, d3, s2);
        let d1 = self.up1.forward(tape, store, d2, s1);
        self.head.forward(tape, store, d1)
    }

    fn name(&self) -> &str {
        "MAVIREC"
    }

    fn set_linear_head(&mut self, linear: bool) {
        self.head.set_relu(!linear);
    }

    fn boxed_clone(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_nn::init;

    #[test]
    fn forward_shape() {
        let mut store = ParamStore::new();
        let m = Mavirec::new(&mut store, 7, 4, 1);
        let mut tape = Tape::new();
        let x = tape.input(init::uniform([1, 7, 16, 16], -1.0, 1.0, 2));
        let y = m.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), [1, 1, 16, 16]);
    }

    #[test]
    fn has_more_parameters_than_iredge() {
        let mut a = ParamStore::new();
        let _ = Mavirec::new(&mut a, 5, 4, 1);
        let mut b = ParamStore::new();
        let _ = crate::iredge::IrEdge::new(&mut b, 5, 4, 1);
        assert!(a.num_scalars() > b.num_scalars());
    }
}
