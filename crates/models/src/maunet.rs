//! MAUnet (Wang et al., DAC'24): multiscale attention U-Net — the
//! input image is re-injected (downsampled) at every encoder level
//! and the bottleneck is refined with CBAM.

use crate::blocks::{DoubleConv, RegressionHead, UpBlock};
use crate::cbam::Cbam;
use crate::Model;
use irf_nn::{NodeId, ParamStore, Tape};

/// MAUnet: multiscale input injection + CBAM bottleneck attention.
#[derive(Debug, Clone)]
pub struct MaUnet {
    cin: usize,
    enc1: DoubleConv,
    enc2: DoubleConv,
    enc3: DoubleConv,
    bottleneck: DoubleConv,
    cbam: Cbam,
    up3: UpBlock,
    up2: UpBlock,
    up1: UpBlock,
    head: RegressionHead,
}

impl MaUnet {
    /// Registers the model.
    pub fn new(store: &mut ParamStore, cin: usize, c: usize, seed: u64) -> Self {
        MaUnet {
            cin,
            enc1: DoubleConv::new(store, "maunet.enc1", cin, c, seed),
            // Levels 2 and 3 see features + a downsampled input copy.
            enc2: DoubleConv::new(store, "maunet.enc2", c + cin, 2 * c, seed ^ 2),
            enc3: DoubleConv::new(store, "maunet.enc3", 2 * c + cin, 4 * c, seed ^ 3),
            bottleneck: DoubleConv::new(store, "maunet.bottleneck", 4 * c, 8 * c, seed ^ 4),
            cbam: Cbam::new(store, "maunet.cbam", 8 * c, 4, seed ^ 5),
            up3: UpBlock::new(store, "maunet.up3", 8 * c, 4 * c, 4 * c, seed ^ 6),
            up2: UpBlock::new(store, "maunet.up2", 4 * c, 2 * c, 2 * c, seed ^ 7),
            up1: UpBlock::new(store, "maunet.up1", 2 * c, c, c, seed ^ 8),
            head: RegressionHead::new(store, "maunet.head", c, seed ^ 9),
        }
    }
}

impl Model for MaUnet {
    fn forward(&self, tape: &mut Tape, store: &ParamStore, x: NodeId) -> NodeId {
        debug_assert_eq!(tape.value(x).shape()[1], self.cin, "input channel mismatch");
        // Multiscale copies of the raw input.
        let x_half = tape.avg_pool2(x);
        let x_quarter = tape.avg_pool2(x_half);
        let s1 = self.enc1.forward(tape, store, x);
        let p1 = tape.max_pool2(s1);
        let in2 = tape.concat_channels(p1, x_half);
        let s2 = self.enc2.forward(tape, store, in2);
        let p2 = tape.max_pool2(s2);
        let in3 = tape.concat_channels(p2, x_quarter);
        let s3 = self.enc3.forward(tape, store, in3);
        let p3 = tape.max_pool2(s3);
        let b = self.bottleneck.forward(tape, store, p3);
        let b = self.cbam.forward(tape, store, b);
        let d3 = self.up3.forward(tape, store, b, s3);
        let d2 = self.up2.forward(tape, store, d3, s2);
        let d1 = self.up1.forward(tape, store, d2, s1);
        self.head.forward(tape, store, d1)
    }

    fn name(&self) -> &str {
        "MAUnet"
    }

    fn set_linear_head(&mut self, linear: bool) {
        self.head.set_relu(!linear);
    }

    fn boxed_clone(&self) -> Box<dyn Model> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_nn::init;

    #[test]
    fn forward_shape() {
        let mut store = ParamStore::new();
        let m = MaUnet::new(&mut store, 5, 4, 1);
        let mut tape = Tape::new();
        let x = tape.input(init::uniform([1, 5, 16, 16], -1.0, 1.0, 2));
        let y = m.forward(&mut tape, &store, x);
        assert_eq!(tape.value(y).shape(), [1, 1, 16, 16]);
    }

    #[test]
    fn cbam_parameters_exist() {
        let mut store = ParamStore::new();
        let _ = MaUnet::new(&mut store, 5, 4, 1);
        assert!(store.iter().any(|(_, n, _)| n.contains("cbam")));
    }
}
