//! Power-grid circuit model, MNA system assembly, and rasterization.
//!
//! This crate turns a parsed SPICE netlist ([`irf_spice::Netlist`])
//! into:
//!
//! - a structured multi-layer [`PowerGrid`] (nodes with layer and
//!   coordinates, resistive segments, cell loads, power pads);
//! - a reduced SPD linear system via modified nodal analysis
//!   ([`stamp::PgSystem`]) expressed in **IR-drop coordinates**
//!   (`drop = Vdd - v`, pads are Dirichlet zeros folded into the
//!   diagonal), so the solution is non-negative and directly equals
//!   the per-node IR drop;
//! - fixed-size image rasterization ([`raster::Rasterizer`] /
//!   [`raster::GridMap`]) translating node coordinates to the pixel
//!   grid exactly as the paper does (`x = x_n / w`, `y = y_n / l`).
//!
//! # Example
//!
//! ```
//! use irf_pg::PowerGrid;
//!
//! let src = "\
//! R1 n1_m1_0_0 n1_m1_2000_0 0.5
//! R2 n1_m4_0_0 n1_m1_0_0 0.1
//! I1 n1_m1_2000_0 0 1m
//! V1 n1_m4_0_0 0 1.1
//! .end
//! ";
//! let netlist = irf_spice::parse(src)?;
//! let grid = PowerGrid::from_netlist(&netlist)?;
//! let system = grid.build_system();
//! assert_eq!(system.matrix.rows(), 2); // pad node eliminated
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod grid;
pub mod lef;
pub mod raster;
pub mod stamp;
pub mod stats;
pub mod streaming;
pub mod transient;

pub use error::ModelError;
pub use grid::{Load, Pad, PgNode, PowerGrid, Segment};
pub use raster::{GridMap, Rasterizer};
pub use stamp::{PgStructure, PgSystem};
pub use streaming::{grid_from_spice_path, grid_from_spice_reader, IngestError};

/// The power-grid model error type. Alias for [`ModelError`]: malformed
/// grids and bad simulation parameters surface as `Err(PgError)` rather
/// than panics.
pub type PgError = ModelError;
pub use stats::DesignStats;
pub use transient::TransientSim;
