//! The structured multi-layer power-grid model.

use crate::error::ModelError;
use crate::stamp::PgSystem;
use irf_spice::{Netlist, NodeId};
use std::collections::HashMap;

/// A circuit node of the power grid (never ground, never removed).
#[derive(Debug, Clone, PartialEq)]
pub struct PgNode {
    /// Name from the netlist.
    pub name: String,
    /// Metal layer (1 = bottom / cell layer). Nodes without the layer
    /// naming convention land on layer 1.
    pub layer: u32,
    /// X coordinate in database units.
    pub x: i64,
    /// Y coordinate in database units.
    pub y: i64,
    /// `true` if a voltage source pins this node (power pad).
    pub is_pad: bool,
}

/// A resistive segment (metal wire or inter-layer via).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Endpoint node indices into [`PowerGrid::nodes`].
    pub a: usize,
    /// Second endpoint.
    pub b: usize,
    /// Resistance in ohms (strictly positive).
    pub ohms: f64,
}

impl Segment {
    /// Conductance in siemens.
    #[must_use]
    pub fn conductance(&self) -> f64 {
        1.0 / self.ohms
    }
}

/// A cell load drawing DC current from a grid node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Load {
    /// Node index into [`PowerGrid::nodes`].
    pub node: usize,
    /// Drawn current in amperes (positive = current leaves the grid).
    pub amps: f64,
}

/// A power pad pinned to the supply voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pad {
    /// Node index into [`PowerGrid::nodes`].
    pub node: usize,
    /// Pad voltage in volts.
    pub volts: f64,
}

/// A validated multi-layer power grid.
///
/// Built from a netlist by [`PowerGrid::from_netlist`]; ground is
/// removed, voltage sources become [`Pad`]s, current sources become
/// [`Load`]s, and elements touching only ground are dropped.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PowerGrid {
    /// All circuit nodes.
    pub nodes: Vec<PgNode>,
    /// Resistive segments between nodes.
    pub segments: Vec<Segment>,
    /// Cell loads.
    pub loads: Vec<Load>,
    /// Power pads.
    pub pads: Vec<Pad>,
}

impl PowerGrid {
    /// Builds the model from a parsed netlist.
    ///
    /// Resistors with one terminal on ground contribute a grounded
    /// conductance only if the paper's formulation needs them; for a
    /// VDD grid they do not occur, so they are rejected together with
    /// non-positive resistances.
    ///
    /// # Errors
    ///
    /// - [`ModelError::NonPositiveResistance`] for `R <= 0`;
    /// - [`ModelError::NoPads`] when no voltage source exists;
    /// - [`ModelError::UngroundedSource`] when a voltage source's
    ///   negative terminal is not ground.
    pub fn from_netlist(netlist: &Netlist) -> Result<Self, ModelError> {
        let mut grid = PowerGrid::default();
        // Map netlist ids (minus ground) onto dense node indices.
        let mut index: HashMap<NodeId, usize> = HashMap::new();
        let mut node_index = |grid: &mut PowerGrid, id: NodeId| -> Option<usize> {
            if id.is_ground() {
                return None;
            }
            Some(*index.entry(id).or_insert_with(|| {
                let info = netlist.node(id);
                grid.nodes.push(PgNode {
                    name: info.name.clone(),
                    layer: info.layer.unwrap_or(1),
                    x: info.x.unwrap_or(0),
                    y: info.y.unwrap_or(0),
                    is_pad: false,
                });
                grid.nodes.len() - 1
            }))
        };
        for r in netlist.resistors() {
            if r.ohms <= 0.0 {
                return Err(ModelError::NonPositiveResistance {
                    name: r.name.clone(),
                    ohms: r.ohms,
                });
            }
            let a = node_index(&mut grid, r.a);
            let b = node_index(&mut grid, r.b);
            if let (Some(a), Some(b)) = (a, b) {
                if a != b {
                    grid.segments.push(Segment { a, b, ohms: r.ohms });
                }
            }
        }
        for i in netlist.current_sources() {
            // A load drawing current out of the grid: from = grid node,
            // to = ground. The reversed orientation injects current.
            let (node, sign) = if i.to.is_ground() {
                (node_index(&mut grid, i.from), 1.0)
            } else if i.from.is_ground() {
                (node_index(&mut grid, i.to), -1.0)
            } else {
                (node_index(&mut grid, i.from), 1.0)
            };
            if let Some(node) = node {
                grid.loads.push(Load {
                    node,
                    amps: sign * i.amps,
                });
            }
        }
        for v in netlist.voltage_sources() {
            if !v.minus.is_ground() {
                return Err(ModelError::UngroundedSource {
                    name: v.name.clone(),
                });
            }
            if let Some(node) = node_index(&mut grid, v.plus) {
                grid.nodes[node].is_pad = true;
                grid.pads.push(Pad {
                    node,
                    volts: v.volts,
                });
            }
        }
        if grid.pads.is_empty() {
            return Err(ModelError::NoPads);
        }
        Ok(grid)
    }

    /// Supply voltage: the maximum pad voltage.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NoPads`] if the grid has no pads (cannot
    /// happen for grids built by [`PowerGrid::from_netlist`]).
    pub fn try_vdd(&self) -> Result<f64, ModelError> {
        self.pads
            .iter()
            .map(|p| p.volts)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
            .ok_or(ModelError::NoPads)
    }

    /// Supply voltage: the maximum pad voltage.
    ///
    /// # Panics
    ///
    /// Panics if the grid has no pads (cannot happen for grids built
    /// by [`PowerGrid::from_netlist`]); use [`PowerGrid::try_vdd`] for
    /// grids of unknown provenance.
    #[must_use]
    pub fn vdd(&self) -> f64 {
        self.try_vdd().expect("grid has no pads")
    }

    /// Sorted list of metal layers present.
    #[must_use]
    pub fn layers(&self) -> Vec<u32> {
        let mut l: Vec<u32> = self.nodes.iter().map(|n| n.layer).collect();
        l.sort_unstable();
        l.dedup();
        l
    }

    /// Bounding box `(x0, y0, x1, y1)` over all nodes.
    #[must_use]
    pub fn bounding_box(&self) -> (i64, i64, i64, i64) {
        let mut bb = (i64::MAX, i64::MAX, i64::MIN, i64::MIN);
        for n in &self.nodes {
            bb.0 = bb.0.min(n.x);
            bb.1 = bb.1.min(n.y);
            bb.2 = bb.2.max(n.x);
            bb.3 = bb.3.max(n.y);
        }
        if self.nodes.is_empty() {
            (0, 0, 0, 0)
        } else {
            bb
        }
    }

    /// Adjacency list over segments: for each node, `(neighbour,
    /// conductance)` pairs. Used by feature extraction (shortest-path
    /// resistance) and validation.
    #[must_use]
    pub fn adjacency(&self) -> Vec<Vec<(usize, f64)>> {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for s in &self.segments {
            adj[s.a].push((s.b, s.conductance()));
            adj[s.b].push((s.a, s.conductance()));
        }
        adj
    }

    /// Total current drawn by all loads (amperes).
    #[must_use]
    pub fn total_load_current(&self) -> f64 {
        self.loads.iter().map(|l| l.amps).sum()
    }

    /// Builds the reduced SPD system in IR-drop coordinates.
    /// See [`PgSystem`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidNodeIndex`] when a segment, load,
    /// or pad references a node outside the grid's node list.
    pub fn try_build_system(&self) -> Result<PgSystem, ModelError> {
        PgSystem::try_build(self)
    }

    /// Builds the reduced SPD system in IR-drop coordinates.
    /// See [`PgSystem`].
    ///
    /// # Panics
    ///
    /// Panics on malformed grids; use [`PowerGrid::try_build_system`]
    /// for grids of unknown provenance.
    #[must_use]
    pub fn build_system(&self) -> PgSystem {
        PgSystem::build(self)
    }

    /// Merges parallel segments (same unordered endpoint pair) into
    /// one equivalent segment with the combined conductance —
    /// netlist sanitation that shrinks the MNA system without changing
    /// the electrical behaviour. Returns the number of segments
    /// merged away.
    pub fn merge_parallel_segments(&mut self) -> usize {
        use std::collections::HashMap;
        let before = self.segments.len();
        let mut combined: HashMap<(usize, usize), f64> = HashMap::new();
        let mut order: Vec<(usize, usize)> = Vec::new();
        for s in &self.segments {
            let key = (s.a.min(s.b), s.a.max(s.b));
            match combined.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    *e.get_mut() += s.conductance();
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(s.conductance());
                    order.push(key);
                }
            }
        }
        self.segments = order
            .into_iter()
            .map(|(a, b)| Segment {
                a,
                b,
                ohms: 1.0 / combined[&(a, b)],
            })
            .collect();
        before - self.segments.len()
    }

    /// Validation findings for a grid (empty = clean). Complements
    /// [`PowerGrid::is_connected_to_pads`] with the lint-level issues
    /// sign-off flows check before a solve.
    #[must_use]
    pub fn validate(&self) -> Vec<String> {
        let mut issues = Vec::new();
        if self.pads.is_empty() {
            issues.push("no power pads".to_string());
        }
        if self.loads.is_empty() {
            issues.push("no cell loads (all drops will be zero)".to_string());
        }
        if !self.is_connected_to_pads() {
            issues.push("some nodes cannot reach a pad (singular system)".to_string());
        }
        // Parallel duplicates.
        let mut seen = std::collections::HashSet::new();
        let mut dups = 0usize;
        for s in &self.segments {
            if !seen.insert((s.a.min(s.b), s.a.max(s.b))) {
                dups += 1;
            }
        }
        if dups > 0 {
            issues.push(format!(
                "{dups} parallel segments (consider merge_parallel_segments)"
            ));
        }
        // Negative loads feed current *into* the grid; legal but worth
        // flagging for a VDD net.
        let injecting = self.loads.iter().filter(|l| l.amps < 0.0).count();
        if injecting > 0 {
            issues.push(format!("{injecting} loads inject current into the grid"));
        }
        issues
    }

    /// `true` when every node can reach a pad through segments — a
    /// well-formed grid; floating islands make the reduced system
    /// singular.
    #[must_use]
    pub fn is_connected_to_pads(&self) -> bool {
        if self.pads.is_empty() {
            return false;
        }
        let adj = self.adjacency();
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<usize> = self.pads.iter().map(|p| p.node).collect();
        for &s in &stack {
            seen[s] = true;
        }
        while let Some(u) = stack.pop() {
            for &(v, _) in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen.iter().all(|&s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_spice::parse;

    const SRC: &str = "\
R1 n1_m1_0_0 n1_m1_2000_0 0.5
R2 n1_m4_0_0 n1_m1_0_0 0.1
I1 n1_m1_2000_0 0 1m
V1 n1_m4_0_0 0 1.1
.end
";

    #[test]
    fn builds_nodes_segments_loads_pads() {
        let g = PowerGrid::from_netlist(&parse(SRC).unwrap()).unwrap();
        assert_eq!(g.nodes.len(), 3);
        assert_eq!(g.segments.len(), 2);
        assert_eq!(g.loads.len(), 1);
        assert_eq!(g.pads.len(), 1);
        assert_eq!(g.vdd(), 1.1);
        assert!(g.nodes[g.pads[0].node].is_pad);
    }

    #[test]
    fn layers_are_collected() {
        let g = PowerGrid::from_netlist(&parse(SRC).unwrap()).unwrap();
        assert_eq!(g.layers(), vec![1, 4]);
    }

    #[test]
    fn reversed_current_source_injects() {
        let src = "R1 a b 1.0\nI1 0 b 2m\nV1 a 0 1.0\n";
        let g = PowerGrid::from_netlist(&parse(src).unwrap()).unwrap();
        assert_eq!(g.loads[0].amps, -2e-3);
    }

    #[test]
    fn no_pads_is_rejected() {
        let src = "R1 a b 1.0\n";
        assert_eq!(
            PowerGrid::from_netlist(&parse(src).unwrap()),
            Err(ModelError::NoPads)
        );
    }

    #[test]
    fn zero_resistance_is_rejected() {
        let src = "R1 a b 0\nV1 a 0 1.0\n";
        assert!(matches!(
            PowerGrid::from_netlist(&parse(src).unwrap()),
            Err(ModelError::NonPositiveResistance { .. })
        ));
    }

    #[test]
    fn ungrounded_source_is_rejected() {
        let src = "R1 a b 1.0\nV1 a b 1.0\n";
        assert!(matches!(
            PowerGrid::from_netlist(&parse(src).unwrap()),
            Err(ModelError::UngroundedSource { .. })
        ));
    }

    #[test]
    fn connectivity_check() {
        let g = PowerGrid::from_netlist(&parse(SRC).unwrap()).unwrap();
        assert!(g.is_connected_to_pads());
        let island = "R1 a b 1.0\nR2 c d 1.0\nV1 a 0 1.0\n";
        let g = PowerGrid::from_netlist(&parse(island).unwrap()).unwrap();
        assert!(!g.is_connected_to_pads());
    }

    #[test]
    fn parallel_segments_merge_to_equivalent_conductance() {
        let src = "V1 p 0 1.0\nR1 p a 2.0\nR2 p a 2.0\nR3 a b 1.0\nI1 b 0 1m\n";
        let mut g = PowerGrid::from_netlist(&parse(src).unwrap()).unwrap();
        assert_eq!(g.segments.len(), 3);
        let merged = g.merge_parallel_segments();
        assert_eq!(merged, 1);
        assert_eq!(g.segments.len(), 2);
        // Two 2-ohm resistors in parallel = 1 ohm.
        let pa = g
            .segments
            .iter()
            .find(|s| (s.a, s.b) != (1, 2) && (s.b, s.a) != (1, 2))
            .unwrap();
        assert!((pa.ohms - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validate_flags_issues() {
        let src = "V1 p 0 1.0\nR1 p a 2.0\nR2 p a 2.0\nI1 0 a 1m\n";
        let g = PowerGrid::from_netlist(&parse(src).unwrap()).unwrap();
        let issues = g.validate();
        assert!(issues.iter().any(|i| i.contains("parallel")));
        assert!(issues.iter().any(|i| i.contains("inject")));
        // A clean grid validates empty.
        let clean = "V1 p 0 1.0\nR1 p a 2.0\nI1 a 0 1m\n";
        let g = PowerGrid::from_netlist(&parse(clean).unwrap()).unwrap();
        assert!(g.validate().is_empty(), "{:?}", g.validate());
    }

    #[test]
    fn merged_grid_solves_identically() {
        let src = "V1 p 0 1.0\nR1 p a 2.0\nR2 p a 2.0\nR3 a b 1.0\nI1 b 0 1m\n";
        let g0 = PowerGrid::from_netlist(&parse(src).unwrap()).unwrap();
        let mut g1 = g0.clone();
        g1.merge_parallel_segments();
        let s0 = g0.build_system();
        let s1 = g1.build_system();
        let x0 = irf_sparse::Solver::new(irf_sparse::SolverKind::Cholesky)
            .solve(&s0.matrix, &s0.rhs)
            .x;
        let x1 = irf_sparse::Solver::new(irf_sparse::SolverKind::Cholesky)
            .solve(&s1.matrix, &s1.rhs)
            .x;
        for (a, b) in x0.iter().zip(&x1) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn bounding_box_spans_nodes() {
        let g = PowerGrid::from_netlist(&parse(SRC).unwrap()).unwrap();
        assert_eq!(g.bounding_box(), (0, 0, 2000, 0));
    }
}
