//! Transient power-grid simulation (backward Euler).
//!
//! The paper's scope is *static* analysis, but its solver taxonomy
//! leads with the transient flow ("direct solvers such as KLU and
//! Cholmod are usually employed for transient simulation with a
//! constant time step"). This module provides that substrate: node
//! capacitances added to the static model, backward-Euler stepping
//! `(G + C/h) d_{t+1} = (C/h) d_t + I_{t+1}`, and a single sparse
//! Cholesky factorization reused across every step — exactly why
//! direct solvers win in the constant-step regime.

use crate::error::ModelError;
use crate::grid::PowerGrid;
use crate::stamp::PgSystem;
use irf_sparse::cholesky::CholeskyFactor;
use irf_sparse::TripletMatrix;

/// A prepared transient simulator over a fixed grid and time step.
#[derive(Debug)]
pub struct TransientSim {
    system: PgSystem,
    factor: CholeskyFactor,
    /// Per-unknown capacitance over time step (`C/h` diagonal).
    c_over_h: Vec<f64>,
    /// Current state in IR-drop coordinates (volts).
    state: Vec<f64>,
}

impl TransientSim {
    /// Builds the simulator.
    ///
    /// `cap_farads` is the capacitance attached from every non-pad
    /// node to the supply (decap + parasitic), `dt_seconds` the fixed
    /// step. The initial state is the DC steady state for zero load
    /// (all drops zero).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NonPositiveParameter`] for non-positive
    /// `cap_farads` / `dt_seconds`, [`ModelError::InvalidNodeIndex`]
    /// for malformed grids, and [`ModelError::NotPositiveDefinite`]
    /// when the stepped system cannot be factored (indicates a
    /// floating grid).
    pub fn new(grid: &PowerGrid, cap_farads: f64, dt_seconds: f64) -> Result<Self, ModelError> {
        // `is_nan() ||` keeps NaN on the error path (NaN fails every
        // ordered comparison).
        if cap_farads.is_nan() || cap_farads <= 0.0 {
            return Err(ModelError::NonPositiveParameter {
                what: "transient capacitance",
                value: cap_farads,
            });
        }
        if dt_seconds.is_nan() || dt_seconds <= 0.0 {
            return Err(ModelError::NonPositiveParameter {
                what: "transient dt",
                value: dt_seconds,
            });
        }
        let system = grid.try_build_system()?;
        let n = system.dim();
        let c_over_h = vec![cap_farads / dt_seconds; n];
        // A = G + C/h (diagonal lump).
        let mut t = TripletMatrix::with_capacity(n, n, system.matrix.nnz() + n);
        for (r, c, v) in system.matrix.iter() {
            t.push(r, c, v);
        }
        for (i, &coh) in c_over_h.iter().enumerate() {
            t.push(i, i, coh);
        }
        let factor =
            CholeskyFactor::factor(&t.to_csr()).map_err(|e| ModelError::NotPositiveDefinite {
                detail: e.to_string(),
            })?;
        Ok(TransientSim {
            system,
            factor,
            c_over_h,
            state: vec![0.0; n],
        })
    }

    /// Number of unknowns.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.system.dim()
    }

    /// Current per-node drops (full grid indexing, pads = 0).
    #[must_use]
    pub fn drops(&self) -> Vec<f64> {
        self.system.expand_solution(&self.state)
    }

    /// Advances one step under the given per-unknown load currents
    /// (amperes; use [`PgSystem::index_of`] to map node indices).
    /// Returns the worst drop after the step.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DimensionMismatch`] if
    /// `loads.len() != self.dim()`.
    pub fn step(&mut self, loads: &[f64]) -> Result<f64, ModelError> {
        if loads.len() != self.dim() {
            return Err(ModelError::DimensionMismatch {
                what: "transient load vector",
                expected: self.dim(),
                got: loads.len(),
            });
        }
        let rhs: Vec<f64> = self
            .c_over_h
            .iter()
            .zip(&self.state)
            .zip(loads)
            .map(|((coh, d), i)| coh * d + i)
            .collect();
        self.state = self.factor.solve(&rhs);
        Ok(self.state.iter().cloned().fold(0.0, f64::max))
    }

    /// Runs `steps` steps with a constant load vector, returning the
    /// worst drop after each step (the classic RC charge-up curve).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::DimensionMismatch`] if
    /// `loads.len() != self.dim()`.
    pub fn run_constant(&mut self, loads: &[f64], steps: usize) -> Result<Vec<f64>, ModelError> {
        (0..steps).map(|_| self.step(loads)).collect()
    }

    /// The underlying reduced system (for load-vector construction).
    #[must_use]
    pub fn system(&self) -> &PgSystem {
        &self.system
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_sparse::{Solver, SolverKind};
    use irf_spice::parse;

    fn grid() -> PowerGrid {
        let src = "\
V1 p 0 1.0
R1 p a 1.0
R2 a b 1.0
I1 b 0 1m
";
        PowerGrid::from_netlist(&parse(src).unwrap()).unwrap()
    }

    fn static_loads(sys: &PgSystem) -> Vec<f64> {
        sys.rhs.clone()
    }

    #[test]
    fn converges_to_the_static_solution() {
        let g = grid();
        let mut sim = TransientSim::new(&g, 1e-9, 1e-9).expect("SPD");
        let loads = static_loads(sim.system());
        // Many time constants later the drop settles at the DC value.
        let curve = sim.run_constant(&loads, 200).expect("step");
        let sys = g.build_system();
        let dc = Solver::new(SolverKind::Cholesky).solve(&sys.matrix, &sys.rhs);
        let dc_worst = dc.x.iter().cloned().fold(0.0, f64::max);
        let settled = *curve.last().unwrap();
        assert!(
            (settled - dc_worst).abs() < 1e-6 * dc_worst.max(1e-12),
            "settled {settled:e} vs DC {dc_worst:e}"
        );
    }

    #[test]
    fn charge_up_is_monotone_under_constant_load() {
        let g = grid();
        let mut sim = TransientSim::new(&g, 1e-9, 1e-10).expect("SPD");
        let loads = static_loads(sim.system());
        let curve = sim.run_constant(&loads, 50).expect("step");
        for pair in curve.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-15, "drop must rise monotonically");
        }
        // Starts well below the settled value (capacitors hold it up).
        assert!(curve[0] < *curve.last().unwrap());
    }

    #[test]
    fn load_release_decays_back_to_zero() {
        let g = grid();
        let mut sim = TransientSim::new(&g, 1e-9, 1e-10).expect("SPD");
        let loads = static_loads(sim.system());
        sim.run_constant(&loads, 100).expect("step");
        let zero = vec![0.0; sim.dim()];
        // Slowest mode decays as (C/h) / (C/h + lambda_min) per step;
        // 800 steps cover many time constants of this RC chain.
        let decay = sim.run_constant(&zero, 800).expect("step");
        assert!(*decay.last().unwrap() < 1e-9, "drops must decay to zero");
        for pair in decay.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-15, "decay must be monotone");
        }
    }

    #[test]
    fn smaller_capacitance_responds_faster() {
        let g = grid();
        let reach = |cap: f64| {
            let mut sim = TransientSim::new(&g, cap, 1e-10).expect("SPD");
            let loads = static_loads(sim.system());
            let curve = sim.run_constant(&loads, 10).expect("step");
            *curve.last().unwrap()
        };
        let fast = reach(1e-10);
        let slow = reach(1e-8);
        assert!(
            fast > slow,
            "less decap => drop develops faster ({fast:e} vs {slow:e})"
        );
    }

    #[test]
    fn transient_peak_never_exceeds_dc_for_step_loads() {
        // With a pure step load, backward Euler charge-up approaches DC
        // from below (no overshoot for an RC network).
        let g = grid();
        let mut sim = TransientSim::new(&g, 1e-9, 1e-10).expect("SPD");
        let loads = static_loads(sim.system());
        let curve = sim.run_constant(&loads, 500).expect("step");
        let sys = g.build_system();
        let dc = Solver::new(SolverKind::Cholesky).solve(&sys.matrix, &sys.rhs);
        let dc_worst = dc.x.iter().cloned().fold(0.0, f64::max);
        for v in curve {
            assert!(v <= dc_worst * (1.0 + 1e-9));
        }
    }
}
