//! Minimal LEF (Library Exchange Format) reader.
//!
//! The paper derives its image pitch from LEF: "Based on the row `w`
//! and height `l` from LEF, a design's layer of size `Wc x Lc`
//! translates to an image of `W (= Wc // w) x L (= Lc // l)` pixels."
//! This module reads exactly the subset that computation needs — the
//! `UNITS DATABASE MICRONS` factor and `SITE ... SIZE w BY h ;`
//! definitions — and builds the matching [`Rasterizer`].

use crate::raster::Rasterizer;
use std::error::Error;
use std::fmt;

/// A placement site from a LEF file, in database units.
#[derive(Debug, Clone, PartialEq)]
pub struct Site {
    /// Site name (e.g. `core`).
    pub name: String,
    /// Site width in database units.
    pub width_dbu: i64,
    /// Site (row) height in database units.
    pub height_dbu: i64,
}

/// Error reading a LEF snippet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseLefError {
    /// `SIZE w BY h` line malformed.
    BadSize {
        /// 1-based line number.
        line: usize,
    },
    /// No `SITE` definition found.
    NoSite,
}

impl fmt::Display for ParseLefError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseLefError::BadSize { line } => write!(f, "malformed SIZE at line {line}"),
            ParseLefError::NoSite => write!(f, "no SITE definition found"),
        }
    }
}

impl Error for ParseLefError {}

/// Parses the sites of a LEF source. Dimensions in the file are
/// microns; they are converted with the `UNITS DATABASE MICRONS`
/// factor (default 1000, LEF's own default).
///
/// # Errors
///
/// Returns [`ParseLefError::BadSize`] on malformed `SIZE` statements
/// and [`ParseLefError::NoSite`] when the source has no site at all.
pub fn parse_sites(src: &str) -> Result<Vec<Site>, ParseLefError> {
    let mut dbu_per_micron = 1000.0f64;
    let mut sites = Vec::new();
    let mut current: Option<String> = None;
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let upper = line.to_ascii_uppercase();
        let fields: Vec<&str> = line.split_whitespace().collect();
        if upper.starts_with("UNITS") {
            continue;
        }
        if upper.starts_with("DATABASE") && fields.len() >= 3 {
            if let Ok(v) = fields[2].trim_end_matches(';').parse::<f64>() {
                dbu_per_micron = v;
            }
        } else if upper.starts_with("SITE") && fields.len() >= 2 && current.is_none() {
            current = Some(fields[1].to_string());
        } else if upper.starts_with("SIZE") {
            if let Some(name) = current.clone() {
                // SIZE <w> BY <h> ;
                let w = fields.get(1).and_then(|s| s.parse::<f64>().ok());
                let h = fields
                    .get(3)
                    .and_then(|s| s.trim_end_matches(';').parse::<f64>().ok());
                match (w, h) {
                    (Some(w), Some(h)) => {
                        sites.push(Site {
                            name,
                            width_dbu: (w * dbu_per_micron).round() as i64,
                            height_dbu: (h * dbu_per_micron).round() as i64,
                        });
                        current = None;
                    }
                    _ => return Err(ParseLefError::BadSize { line: idx + 1 }),
                }
            }
        } else if upper.starts_with("END") {
            current = None;
        }
    }
    if sites.is_empty() {
        return Err(ParseLefError::NoSite);
    }
    Ok(sites)
}

/// Builds the paper's rasterizer from a die bounding box and a LEF
/// site: `W = Wc / w` columns and `L = Lc / l` rows (at least 1 each).
#[must_use]
pub fn rasterizer_from_site(bbox: (i64, i64, i64, i64), site: &Site) -> Rasterizer {
    let (x0, y0, x1, y1) = bbox;
    let w = (((x1 - x0) / site.width_dbu.max(1)).max(1)) as usize;
    let h = (((y1 - y0) / site.height_dbu.max(1)).max(1)) as usize;
    Rasterizer::new(bbox, w, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEF: &str = "\
UNITS
  DATABASE MICRONS 2000 ;
END UNITS
SITE core
  CLASS CORE ;
  SIZE 0.2 BY 1.6 ;
END core
SITE io
  SIZE 1.0 BY 8.0 ;
END io
";

    #[test]
    fn parses_sites_with_units() {
        let sites = parse_sites(LEF).expect("valid LEF");
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].name, "core");
        assert_eq!(sites[0].width_dbu, 400); // 0.2 um * 2000 dbu/um
        assert_eq!(sites[0].height_dbu, 3200);
    }

    #[test]
    fn default_units_are_1000() {
        let src = "SITE s\n  SIZE 1.0 BY 2.0 ;\nEND s\n";
        let sites = parse_sites(src).expect("valid");
        assert_eq!(sites[0].width_dbu, 1000);
        assert_eq!(sites[0].height_dbu, 2000);
    }

    #[test]
    fn missing_site_is_an_error() {
        assert_eq!(
            parse_sites("UNITS\nEND UNITS\n"),
            Err(ParseLefError::NoSite)
        );
    }

    #[test]
    fn malformed_size_is_reported_with_line() {
        let src = "SITE s\n  SIZE nonsense ;\nEND s\n";
        assert_eq!(parse_sites(src), Err(ParseLefError::BadSize { line: 2 }));
    }

    #[test]
    fn rasterizer_matches_paper_formula() {
        let site = Site {
            name: "core".into(),
            width_dbu: 400,
            height_dbu: 3200,
        };
        // Die of 102_400 x 102_400: W = 256 columns, L = 32 rows.
        let r = rasterizer_from_site((0, 0, 102_400, 102_400), &site);
        assert_eq!(r.width(), 256);
        assert_eq!(r.height(), 32);
    }

    #[test]
    fn degenerate_site_still_yields_a_grid() {
        let site = Site {
            name: "wide".into(),
            width_dbu: 1_000_000,
            height_dbu: 1_000_000,
        };
        let r = rasterizer_from_site((0, 0, 100, 100), &site);
        assert_eq!((r.width(), r.height()), (1, 1));
    }
}
