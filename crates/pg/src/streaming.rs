//! Streaming grid ingest: SPICE bytes → [`PowerGrid`] with no
//! [`Netlist`](irf_spice::Netlist) and no source text in memory.
//!
//! The materializing path (`read_to_string` → [`irf_spice::parse`] →
//! [`PowerGrid::from_netlist`]) holds three full-size artifacts at
//! once: the source text, the netlist (which stores an owned name
//! `String` for *every element card*), and the grid. At million-node
//! scale the first two exist only to be thrown away. This module
//! subscribes to the card-visitor stream ([`irf_spice::visit_cards`])
//! instead and builds the grid directly:
//!
//! * **R cards** are absorbed immediately: node names intern into the
//!   grid's node table as they first appear, segments are pushed in
//!   card order, and non-positive resistances error on the spot.
//! * **I and V cards** are buffered compactly (a resolved node index
//!   when the name is already interned, the bare name otherwise —
//!   never the element name) and replayed after the stream ends.
//!
//! # Parity with the materializing path
//!
//! [`PowerGrid::from_netlist`] assigns grid node indices in
//! *element-type-major* order: first appearance while walking all
//! resistors, then all current sources, then all voltage sources.
//! The accumulator reproduces that exactly — R cards intern during
//! streaming (stream order = netlist resistor order), and the
//! deferred I/V replay interns any still-unseen names in buffered
//! card order, which is precisely when the type-major walk would have
//! met them. Sign conventions, pad marking, `layer`/`x`/`y` defaults
//! and error checks replicate `from_netlist` line for line, and a
//! test asserts the two paths produce equal grids on the same bytes.
//!
//! Two documented differences on *invalid* input only:
//!
//! * duplicate element names are not detected (that check needs
//!   whole-file state the visitor stream deliberately does not keep —
//!   parse the netlist with [`irf_spice::parse_reader`] when it
//!   matters);
//! * errors surface in stream order, so a model error (say `R <= 0`
//!   on line 3) can win over a parse error later in the file, where
//!   the two-phase batch path would report the parse error first.
//!   Valid designs are unaffected.

use crate::error::ModelError;
use crate::grid::{Load, Pad, PgNode, PowerGrid, Segment};
use irf_spice::error::{ParseError, ParseErrorKind};
use irf_spice::{NodeInfo, StreamError, StreamedCard, StreamedCardKind};
use std::collections::HashMap;
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

/// Read-buffer capacity for [`grid_from_spice_path`].
const FILE_BUF_BYTES: usize = 1 << 20;

/// Error from a streaming grid ingest: the reader failed, the SPICE
/// text was malformed, or the design is electrically invalid.
#[derive(Debug)]
pub enum IngestError {
    /// The underlying reader failed (including non-UTF-8 bytes).
    Io(io::Error),
    /// The SPICE text failed to parse.
    Parse(ParseError),
    /// The parsed design violates a grid invariant (non-positive
    /// resistance, ungrounded source, no pads).
    Model(ModelError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "i/o error while reading netlist: {e}"),
            IngestError::Parse(e) => write!(f, "{e}"),
            IngestError::Model(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Parse(e) => Some(e),
            IngestError::Model(e) => Some(e),
        }
    }
}

impl From<StreamError> for IngestError {
    fn from(e: StreamError) -> Self {
        match e {
            StreamError::Io(e) => IngestError::Io(e),
            StreamError::Parse(e) => IngestError::Parse(e),
        }
    }
}

impl From<ModelError> for IngestError {
    fn from(e: ModelError) -> Self {
        IngestError::Model(e)
    }
}

/// A buffered reference to a grid node: resolved to its final index
/// when the name was already interned at buffering time, otherwise
/// the bare name, interned at replay. Indices never change once
/// assigned, so early resolution is always safe.
#[derive(Debug)]
enum NodeRef {
    Resolved(usize),
    Named(String),
}

/// Streaming accumulator; see the [module docs](self) for the parity
/// argument.
#[derive(Debug, Default)]
struct Accumulator {
    grid: PowerGrid,
    index: HashMap<String, usize>,
    /// Buffered I cards: `(chosen node, signed amps)`.
    loads: Vec<(NodeRef, f64)>,
    /// Buffered V cards: `(element name, minus-is-ground, plus,
    /// volts)`.
    pads: Vec<(String, bool, NodeRef, f64)>,
}

impl Accumulator {
    /// Interns `name` into the grid's node table (first-appearance
    /// order), or returns `None` for ground.
    fn node_index(&mut self, name: &str) -> Option<usize> {
        if name == "0" {
            return None;
        }
        if let Some(&idx) = self.index.get(name) {
            return Some(idx);
        }
        let info = NodeInfo::from_name(name);
        self.grid.nodes.push(PgNode {
            name: info.name,
            layer: info.layer.unwrap_or(1),
            x: info.x.unwrap_or(0),
            y: info.y.unwrap_or(0),
            is_pad: false,
        });
        let idx = self.grid.nodes.len() - 1;
        self.index.insert(name.to_string(), idx);
        Some(idx)
    }

    /// A deferred reference: resolved now when possible, by name
    /// otherwise.
    fn node_ref(&self, name: &str) -> NodeRef {
        match self.index.get(name) {
            Some(&idx) => NodeRef::Resolved(idx),
            None => NodeRef::Named(name.to_string()),
        }
    }

    fn resolve(&mut self, r: NodeRef) -> Option<usize> {
        match r {
            NodeRef::Resolved(idx) => Some(idx),
            NodeRef::Named(name) => self.node_index(&name),
        }
    }

    fn absorb(&mut self, card: &StreamedCard<'_>) -> Result<(), ModelError> {
        match card.kind {
            StreamedCardKind::Resistor => {
                if card.value <= 0.0 {
                    return Err(ModelError::NonPositiveResistance {
                        name: card.name.to_string(),
                        ohms: card.value,
                    });
                }
                let a = self.node_index(card.a);
                let b = self.node_index(card.b);
                if let (Some(a), Some(b)) = (a, b) {
                    if a != b {
                        self.grid.segments.push(Segment {
                            a,
                            b,
                            ohms: card.value,
                        });
                    }
                }
            }
            StreamedCardKind::CurrentSource => {
                // Same orientation rule as `PowerGrid::from_netlist`:
                // a load draws current from the grid node toward
                // ground; the reversed orientation injects.
                let (node, sign) = if card.b == "0" {
                    (card.a, 1.0)
                } else if card.a == "0" {
                    (card.b, -1.0)
                } else {
                    (card.a, 1.0)
                };
                if node != "0" {
                    let r = self.node_ref(node);
                    self.loads.push((r, sign * card.value));
                }
            }
            StreamedCardKind::VoltageSource => {
                self.pads.push((
                    card.name.to_string(),
                    card.b == "0",
                    self.node_ref(card.a),
                    card.value,
                ));
            }
        }
        Ok(())
    }

    fn finish(mut self) -> Result<PowerGrid, ModelError> {
        let loads = std::mem::take(&mut self.loads);
        for (r, amps) in loads {
            if let Some(node) = self.resolve(r) {
                self.grid.loads.push(Load { node, amps });
            }
        }
        let pads = std::mem::take(&mut self.pads);
        for (name, minus_is_ground, plus, volts) in pads {
            if !minus_is_ground {
                return Err(ModelError::UngroundedSource { name });
            }
            if let Some(node) = self.resolve(plus) {
                self.grid.nodes[node].is_pad = true;
                self.grid.pads.push(Pad { node, volts });
            }
        }
        if self.grid.pads.is_empty() {
            return Err(ModelError::NoPads);
        }
        Ok(self.grid)
    }
}

/// Streams SPICE text from `reader` directly into a [`PowerGrid`],
/// never materializing the source or a netlist. Produces a grid
/// **equal** to
/// `PowerGrid::from_netlist(&irf_spice::parse(&text)?)` on the same
/// bytes (asserted by tests); see the [module docs](self) for the two
/// invalid-input caveats.
///
/// # Errors
///
/// [`IngestError::Io`] / [`IngestError::Parse`] from the stream,
/// [`IngestError::Model`] for electrically invalid designs.
pub fn grid_from_spice_reader<R: BufRead>(reader: R) -> Result<PowerGrid, IngestError> {
    let mut span = irf_trace::span("grid_stream_ingest");
    let mut acc = Accumulator::default();
    let mut model_err: Option<ModelError> = None;
    let result = irf_spice::visit_cards(reader, |card| match acc.absorb(card) {
        Ok(()) => Ok(()),
        Err(e) => {
            // The visitor contract only carries `ParseError`; park the
            // model error and abort with a sentinel that is replaced
            // below.
            model_err = Some(e);
            Err(ParseError {
                line: card.line,
                kind: ParseErrorKind::InvalidValue(String::new()),
            })
        }
    });
    if let Some(e) = model_err {
        return Err(IngestError::Model(e));
    }
    result?;
    let grid = acc.finish()?;
    if span.is_recording() {
        span.attr("nodes", grid.nodes.len());
        span.attr("segments", grid.segments.len());
        span.attr("loads", grid.loads.len());
        span.attr("pads", grid.pads.len());
    }
    Ok(grid)
}

/// Opens `path` and streams it through [`grid_from_spice_reader`]
/// behind a large file buffer — the bounded-memory front door for
/// on-disk netlists.
///
/// # Errors
///
/// See [`grid_from_spice_reader`]; opening the file can also fail
/// with [`IngestError::Io`].
pub fn grid_from_spice_path(path: impl AsRef<Path>) -> Result<PowerGrid, IngestError> {
    let file = File::open(path).map_err(IngestError::Io)?;
    grid_from_spice_reader(BufReader::with_capacity(FILE_BUF_BYTES, file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_spice::parse;
    use std::io::Cursor;

    fn materialized(src: &str) -> Result<PowerGrid, ModelError> {
        PowerGrid::from_netlist(&parse(src).expect("parses"))
    }

    fn streamed(src: &str) -> Result<PowerGrid, IngestError> {
        grid_from_spice_reader(Cursor::new(src))
    }

    #[test]
    fn matches_from_netlist_on_valid_designs() {
        let cases = [
            // Standard mix with coordinates, comments, continuations.
            "* hdr\nR1 n1_m1_0_0 n1_m1_2000_0 0.5\nR2 n1_m4_0_0 n1_m1_0_0 0.1\n\
             I1 n1_m1_2000_0 0 1m\nV1 n1_m4_0_0\n+ 0 1.1\n.end\n",
            // Reversed + floating current sources, pad-to-pad segment.
            "V1 p 0 1.0\nV2 q 0 1.0\nR1 p q 1.0\nR2 p a 1.0\nI1 0 a 2m\nI2 a b 1m\n",
            // Load on a node no resistor touches; grounded resistor leg.
            "V1 p 0 1.0\nR1 p a 1.0\nR2 a 0 5.0\nI1 zz 0 3m\n",
            // Self-loop resistor dropped; parallel segments kept.
            "V1 p 0 1.0\nR1 p a 2.0\nR2 p a 2.0\nR3 a a 9.0\nI1 a 0 1m\n",
            // Current source where both terminals are grid nodes: only
            // `from` carries the load.
            "V1 p 0 1.0\nR1 p a 1.0\nR2 p b 1.0\nI1 a b 4m\n",
        ];
        for src in cases {
            let want = materialized(src).expect("valid");
            let got = streamed(src).expect("valid");
            assert_eq!(want, got, "src={src:?}");
        }
    }

    #[test]
    fn node_interning_is_type_major_like_from_netlist() {
        // V1 names `late` before any resistor does, but from_netlist
        // interns resistors first — the streaming path must too.
        let src = "V1 late 0 1.0\nI1 early2 0 1m\nR1 late early 1.0\nR2 early early2 2.0\n";
        let want = materialized(src).expect("valid");
        let got = streamed(src).expect("valid");
        assert_eq!(want, got);
        let names: Vec<&str> = got.nodes.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["late", "early", "early2"]);
    }

    #[test]
    fn model_errors_match() {
        let cases = [
            "R1 a b 0\nV1 a 0 1.0\n",   // non-positive resistance
            "R1 a b -2\nV1 a 0 1.0\n",  // negative resistance
            "R1 a b 1.0\nV1 a b 1.0\n", // ungrounded source
            "R1 a b 1.0\nI1 a 0 1m\n",  // no pads
        ];
        for src in cases {
            let want = materialized(src).expect_err("invalid");
            match streamed(src) {
                Err(IngestError::Model(got)) => assert_eq!(want, got, "src={src:?}"),
                other => panic!("expected model error for {src:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn parse_errors_surface_with_line_numbers() {
        match streamed("V1 p 0 1.0\nR1 p a zz\n") {
            Err(IngestError::Parse(e)) => assert_eq!(e.line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn path_ingest_roundtrips() {
        let src = "V1 p 0 1.0\nR1 p a 1.0\nI1 a 0 1m\n";
        let path = std::env::temp_dir().join("irf_pg_stream_test.sp");
        std::fs::write(&path, src).expect("writes");
        let got = grid_from_spice_path(&path).expect("valid");
        std::fs::remove_file(&path).ok();
        assert_eq!(got, materialized(src).expect("valid"));
    }

    #[test]
    fn streamed_grid_solves_like_materialized() {
        let src = "\
V1 n1_m4_0_0 0 1.0
R1 n1_m4_0_0 n1_m1_0_0 0.2
R2 n1_m1_0_0 n1_m1_1000_0 0.4
R3 n1_m1_1000_0 n1_m1_2000_0 0.4
I1 n1_m1_1000_0 0 2m
I2 n1_m1_2000_0 0 1m
";
        let a = materialized(src).expect("valid").build_system();
        let b = streamed(src).expect("valid").build_system();
        assert_eq!(a, b);
    }
}
