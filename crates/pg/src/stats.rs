//! Design-level statistics used in reports and dataset summaries.

use crate::grid::PowerGrid;
use std::fmt;

/// Aggregate statistics of one power-grid design.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignStats {
    /// Total circuit nodes (excluding ground).
    pub nodes: usize,
    /// Resistive segments.
    pub segments: usize,
    /// Cell loads.
    pub loads: usize,
    /// Power pads.
    pub pads: usize,
    /// Metal layers present.
    pub layers: Vec<u32>,
    /// Total load current in amperes.
    pub total_current: f64,
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Die bounding box `(x0, y0, x1, y1)` in database units.
    pub bounding_box: (i64, i64, i64, i64),
}

impl DesignStats {
    /// Computes statistics for a grid.
    #[must_use]
    pub fn from_grid(grid: &PowerGrid) -> Self {
        DesignStats {
            nodes: grid.nodes.len(),
            segments: grid.segments.len(),
            loads: grid.loads.len(),
            pads: grid.pads.len(),
            layers: grid.layers(),
            total_current: grid.total_load_current(),
            vdd: grid.vdd(),
            bounding_box: grid.bounding_box(),
        }
    }
}

impl fmt::Display for DesignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} segments, {} loads, {} pads, layers {:?}, {:.3} A total load @ {:.2} V",
            self.nodes,
            self.segments,
            self.loads,
            self.pads,
            self.layers,
            self.total_current,
            self.vdd
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_spice::parse;

    #[test]
    fn stats_match_grid() {
        let src = "\
R1 n1_m1_0_0 n1_m1_2000_0 0.5
R2 n1_m4_0_0 n1_m1_0_0 0.1
I1 n1_m1_2000_0 0 1m
V1 n1_m4_0_0 0 1.1
";
        let g = PowerGrid::from_netlist(&parse(src).unwrap()).unwrap();
        let s = DesignStats::from_grid(&g);
        assert_eq!(s.nodes, 3);
        assert_eq!(s.segments, 2);
        assert_eq!(s.pads, 1);
        assert_eq!(s.layers, vec![1, 4]);
        assert!((s.total_current - 1e-3).abs() < 1e-15);
        let text = s.to_string();
        assert!(text.contains("3 nodes"));
    }
}
