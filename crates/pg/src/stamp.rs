//! MNA assembly of the reduced SPD system in IR-drop coordinates.
//!
//! Assembly is split along the stage-graph boundary the incremental
//! pipeline exploits: [`PgStructure`] is the *topology-only* artifact
//! (conductance matrix + node/row maps, determined by nodes, segments,
//! and the pad set — never by loads), while the right-hand side is a
//! cheap function of the load currents ([`PgStructure::rhs`]). A
//! current-only edit therefore reuses the assembled matrix verbatim.

use crate::error::ModelError;
use crate::grid::{Load, PowerGrid};
use irf_sparse::{CsrAssembler, CsrMatrix, TripletMatrix};

/// The topology half of the reduced system `G d = I`: the conductance
/// matrix over non-pad nodes and the grid-node ↔ reduced-row maps.
///
/// Pads are Dirichlet nodes with `d = 0`; their coupling conductances
/// are folded into the diagonal of their neighbours, which keeps the
/// system symmetric positive definite and strictly diagonally dominant
/// at pad neighbours. Nothing here depends on the load currents.
#[derive(Debug, Clone, PartialEq)]
pub struct PgStructure {
    /// Reduced conductance matrix over non-pad nodes.
    pub matrix: CsrMatrix,
    /// For each grid node index, its row in the reduced system
    /// (`None` for pads).
    pub index_of: Vec<Option<usize>>,
    /// Reduced row -> grid node index.
    pub node_of: Vec<usize>,
}

impl PgStructure {
    /// Assembles the conductance matrix and node maps from a grid.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidNodeIndex`] when a segment, load,
    /// or pad references a node outside the grid's node list (cannot
    /// happen for grids produced by
    /// [`PowerGrid::from_netlist`](crate::PowerGrid::from_netlist)).
    pub fn try_build(grid: &PowerGrid) -> Result<Self, ModelError> {
        let n_nodes = grid.nodes.len();
        let bad_index = |what: &'static str, index: usize| ModelError::InvalidNodeIndex {
            what,
            index,
            nodes: n_nodes,
        };
        for s in &grid.segments {
            for idx in [s.a, s.b] {
                if idx >= n_nodes {
                    return Err(bad_index("segment", idx));
                }
            }
        }
        for l in &grid.loads {
            if l.node >= n_nodes {
                return Err(bad_index("load", l.node));
            }
        }
        for p in &grid.pads {
            if p.node >= n_nodes {
                return Err(bad_index("pad", p.node));
            }
        }
        let mut span = irf_trace::span("mna_assembly");
        let mut index_of = vec![None; n_nodes];
        let mut node_of = Vec::new();
        for (i, node) in grid.nodes.iter().enumerate() {
            if !node.is_pad {
                index_of[i] = Some(node_of.len());
                node_of.push(i);
            }
        }
        let n = node_of.len();
        // Two-pass, memory-lean assembly: a count pass sizes each row,
        // then stamps land directly in their row buckets — no triplet
        // buffer (24 B/entry) at million-node scale. The fill pass
        // stamps in the exact order the old triplet path pushed, and
        // both finish through the same sort+merge back half, so the
        // matrix is bitwise identical to a triplet assembly (and to
        // what [`PgStructure::restamped`] regenerates).
        let mut asm = CsrAssembler::new(n, n);
        for s in &grid.segments {
            match (index_of[s.a], index_of[s.b]) {
                (Some(a), Some(b)) => asm.count_conductance(a, b),
                (Some(a), None) | (None, Some(a)) => asm.count_grounded(a),
                (None, None) => {} // pad-to-pad segment carries no unknown
            }
        }
        asm.begin_fill();
        for s in &grid.segments {
            let g = s.conductance();
            match (index_of[s.a], index_of[s.b]) {
                (Some(a), Some(b)) => asm.stamp_conductance(a, b, g),
                (Some(a), None) | (None, Some(a)) => asm.stamp_grounded(a, g),
                (None, None) => {}
            }
        }
        let matrix = asm.finish();
        if span.is_recording() {
            span.attr("grid_nodes", n_nodes);
            span.attr("unknowns", n);
            span.attr("nnz", matrix.nnz());
            span.attr("segments", grid.segments.len());
        }
        Ok(PgStructure {
            matrix,
            index_of,
            node_of,
        })
    }

    /// Assembles the structure, panicking on malformed grids.
    ///
    /// # Panics
    ///
    /// Panics where [`PgStructure::try_build`] would error.
    #[must_use]
    pub fn build(grid: &PowerGrid) -> Self {
        Self::try_build(grid).expect("malformed power grid")
    }

    /// Re-stamps an edited grid's conductances into this structure's
    /// sparsity pattern — the topology-delta fast path that skips the
    /// full MNA re-assembly sort.
    ///
    /// `edited` must be the same grid with only segment resistances
    /// changed: same node list, same pad set, same segment endpoints.
    /// Anything else — a structural mismatch, a new connection falling
    /// outside the base pattern, or a conductance sum landing on exact
    /// zero — returns `None`, and the caller falls back to
    /// [`PgStructure::build`]. On `Some`, the result is bitwise
    /// identical to a cold build of `edited`: triplets are regenerated
    /// in the exact [`PgStructure::try_build`] stamping order and
    /// scatter-added in that same order.
    #[must_use]
    pub fn restamped(&self, edited: &PowerGrid) -> Option<PgStructure> {
        if edited.nodes.len() != self.index_of.len() {
            return None;
        }
        for (node, idx) in edited.nodes.iter().zip(&self.index_of) {
            if node.is_pad != idx.is_none() {
                return None;
            }
        }
        let n = self.node_of.len();
        let mut span = irf_trace::span("mna_restamp");
        let mut t = TripletMatrix::with_capacity(n, n, 4 * edited.segments.len());
        for s in &edited.segments {
            if s.a >= self.index_of.len() || s.b >= self.index_of.len() {
                return None;
            }
            let g = s.conductance();
            match (self.index_of[s.a], self.index_of[s.b]) {
                (Some(a), Some(b)) => t.stamp_conductance(a, b, g),
                (Some(a), None) => t.stamp_grounded_conductance(a, g),
                (None, Some(b)) => t.stamp_grounded_conductance(b, g),
                (None, None) => {} // pad-to-pad segment carries no unknown
            }
        }
        let matrix = t.to_csr_with_pattern(&self.matrix)?;
        if span.is_recording() {
            span.attr("unknowns", n);
            span.attr("nnz", matrix.nnz());
            span.attr("segments", edited.segments.len());
        }
        Some(PgStructure {
            matrix,
            index_of: self.index_of.clone(),
            node_of: self.node_of.clone(),
        })
    }

    /// Dimension of the reduced system.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.node_of.len()
    }

    /// Builds the load-current right-hand side for this structure —
    /// the only part of the system that depends on the current vector.
    /// Loads on pads (or out-of-range nodes) contribute nothing.
    #[must_use]
    pub fn rhs(&self, loads: &[Load]) -> Vec<f64> {
        let mut rhs = vec![0.0; self.dim()];
        for l in loads {
            if let Some(Some(row)) = self.index_of.get(l.node) {
                rhs[*row] += l.amps;
            }
        }
        rhs
    }

    /// Expands a reduced solution to per-grid-node IR drops (pads get
    /// exactly `0.0`).
    ///
    /// # Panics
    ///
    /// Panics if `reduced.len() != self.dim()`.
    #[must_use]
    pub fn expand_solution(&self, reduced: &[f64]) -> Vec<f64> {
        assert_eq!(
            reduced.len(),
            self.dim(),
            "reduced solution length mismatch"
        );
        let mut full = vec![0.0; self.index_of.len()];
        for (row, &node) in self.node_of.iter().enumerate() {
            full[node] = reduced[row];
        }
        full
    }
}

/// The reduced linear system `G d = I` of a power grid, expressed in
/// IR-drop coordinates `d_i = Vdd - v_i`: a [`PgStructure`] plus the
/// load-current right-hand side. Solving yields per-node IR drops
/// directly.
#[derive(Debug, Clone, PartialEq)]
pub struct PgSystem {
    /// Reduced conductance matrix over non-pad nodes.
    pub matrix: CsrMatrix,
    /// Load-current right-hand side (amperes).
    pub rhs: Vec<f64>,
    /// For each grid node index, its row in the reduced system
    /// (`None` for pads).
    pub index_of: Vec<Option<usize>>,
    /// Reduced row -> grid node index.
    pub node_of: Vec<usize>,
}

impl PgSystem {
    /// Assembles the reduced system from a power grid.
    ///
    /// # Errors
    ///
    /// See [`PgStructure::try_build`].
    pub fn try_build(grid: &PowerGrid) -> Result<Self, ModelError> {
        let structure = PgStructure::try_build(grid)?;
        Ok(Self::from_structure(structure, &grid.loads))
    }

    /// Assembles the reduced system from a power grid.
    ///
    /// # Panics
    ///
    /// Panics if a segment references an out-of-range node (cannot
    /// happen for grids produced by
    /// [`PowerGrid::from_netlist`](crate::PowerGrid::from_netlist)).
    #[must_use]
    pub fn build(grid: &PowerGrid) -> Self {
        Self::try_build(grid).expect("malformed power grid")
    }

    /// Combines an already-assembled structure with a load vector.
    #[must_use]
    pub fn from_structure(structure: PgStructure, loads: &[Load]) -> Self {
        let rhs = structure.rhs(loads);
        PgSystem {
            matrix: structure.matrix,
            rhs,
            index_of: structure.index_of,
            node_of: structure.node_of,
        }
    }

    /// Dimension of the reduced system.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.node_of.len()
    }

    /// Expands a reduced solution to per-grid-node IR drops (pads get
    /// exactly `0.0`).
    ///
    /// # Panics
    ///
    /// Panics if `reduced.len() != self.dim()`.
    #[must_use]
    pub fn expand_solution(&self, reduced: &[f64]) -> Vec<f64> {
        assert_eq!(
            reduced.len(),
            self.dim(),
            "reduced solution length mismatch"
        );
        let mut full = vec![0.0; self.index_of.len()];
        for (row, &node) in self.node_of.iter().enumerate() {
            full[node] = reduced[row];
        }
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::PowerGrid;
    use irf_sparse::{Solver, SolverKind};
    use irf_spice::parse;

    /// Chain: pad --1R-- n1 --1R-- n2, with 1 mA drawn at n2.
    /// Exact drops: d(n1) = 1 mV, d(n2) = 2 mV.
    const CHAIN: &str = "\
V1 p 0 1.0
R1 p n1 1.0
R2 n1 n2 1.0
I1 n2 0 1m
.end
";

    fn chain_system() -> PgSystem {
        PowerGrid::from_netlist(&parse(CHAIN).unwrap())
            .unwrap()
            .build_system()
    }

    #[test]
    fn reduced_dimension_excludes_pads() {
        let s = chain_system();
        assert_eq!(s.dim(), 2);
        assert_eq!(s.matrix.rows(), 2);
    }

    #[test]
    fn system_is_spd_and_symmetric() {
        let s = chain_system();
        assert!(s.matrix.is_symmetric(0.0));
        for i in 0..s.dim() {
            assert!(s.matrix.get(i, i) > 0.0);
        }
    }

    #[test]
    fn hand_computed_drops_match() {
        let s = chain_system();
        let report = Solver::new(SolverKind::Cholesky).solve(&s.matrix, &s.rhs);
        let drops = s.expand_solution(&report.x);
        // Node order follows first appearance: p, n1, n2.
        let by_name = |_name: &str, idx: usize| drops[idx];
        assert!((by_name("p", 0) - 0.0).abs() < 1e-12);
        assert!((by_name("n1", 1) - 1e-3).abs() < 1e-12);
        assert!((by_name("n2", 2) - 2e-3).abs() < 1e-12);
    }

    #[test]
    fn pad_to_pad_segments_are_dropped() {
        let src = "V1 p 0 1.0\nV2 q 0 1.0\nR1 p q 1.0\nR2 p a 1.0\nI1 a 0 1m\n";
        let g = PowerGrid::from_netlist(&parse(src).unwrap()).unwrap();
        let s = g.build_system();
        assert_eq!(s.dim(), 1);
        assert_eq!(s.matrix.get(0, 0), 1.0);
    }

    #[test]
    fn rhs_collects_loads() {
        let src = "V1 p 0 1.0\nR1 p a 1.0\nI1 a 0 1m\nI2 a 0 2m\n";
        let g = PowerGrid::from_netlist(&parse(src).unwrap()).unwrap();
        let s = g.build_system();
        assert!((s.rhs[0] - 3e-3).abs() < 1e-15);
    }

    #[test]
    fn restamped_resistance_edit_matches_cold_build_bitwise() {
        let src = "\
V1 p 0 1.0
R1 p n1 1.0
R2 n1 n2 1.0
R3 n2 n3 2.0
I1 n3 0 1m
";
        let base_grid = PowerGrid::from_netlist(&parse(src).unwrap()).unwrap();
        let base = PgStructure::build(&base_grid);

        let mut edited = base_grid.clone();
        edited.segments[1].ohms *= 1.5;
        edited.segments[2].ohms *= 0.25;
        let fast = base.restamped(&edited).expect("same pattern");
        let cold = PgStructure::build(&edited);
        assert_eq!(fast, cold);

        // Identical grid restamps to an identical structure.
        assert_eq!(base.restamped(&base_grid).expect("identity"), base);
    }

    #[test]
    fn restamped_declines_on_structural_changes() {
        let src = "V1 p 0 1.0\nR1 p a 1.0\nR2 a b 1.0\nR3 b c 1.0\nI1 c 0 1m\n";
        let grid = PowerGrid::from_netlist(&parse(src).unwrap()).unwrap();
        let base = PgStructure::build(&grid);

        // Different node count.
        let smaller = PowerGrid::from_netlist(
            &parse("V1 p 0 1.0\nR1 p a 1.0\nR2 a b 1.0\nI1 b 0 1m\n").unwrap(),
        )
        .unwrap();
        assert!(base.restamped(&smaller).is_none());

        // New connection a--c outside the base sparsity pattern (the
        // base chain only couples a-b and b-c).
        let mut rewired = grid.clone();
        let (a, c) = (rewired.segments[0].b, rewired.segments[2].b);
        rewired
            .segments
            .push(crate::grid::Segment { a, b: c, ohms: 1.0 });
        assert!(base.restamped(&rewired).is_none());

        // Pad set mismatch.
        let mut repadded = grid.clone();
        repadded.nodes[1].is_pad = true;
        assert!(base.restamped(&repadded).is_none());

        // Segment endpoint out of range.
        let mut broken = grid.clone();
        broken.segments[0].b = 99;
        assert!(base.restamped(&broken).is_none());
    }

    #[test]
    fn drop_solution_is_nonnegative() {
        // Any passive grid with positive loads has non-negative drops.
        let src = "\
V1 n1_m4_0_0 0 1.0
R1 n1_m4_0_0 n1_m1_0_0 0.2
R2 n1_m1_0_0 n1_m1_1000_0 0.4
R3 n1_m1_1000_0 n1_m1_2000_0 0.4
I1 n1_m1_1000_0 0 2m
I2 n1_m1_2000_0 0 1m
";
        let g = PowerGrid::from_netlist(&parse(src).unwrap()).unwrap();
        let s = g.build_system();
        let x = Solver::new(SolverKind::Cholesky).solve(&s.matrix, &s.rhs).x;
        assert!(x.iter().all(|&d| d >= -1e-15));
    }
}
