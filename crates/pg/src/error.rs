//! Errors raised while building the circuit model.

use std::error::Error;
use std::fmt;

/// Error building a [`crate::PowerGrid`] from a netlist.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A resistor had a non-positive resistance.
    NonPositiveResistance {
        /// Element name.
        name: String,
        /// The offending value.
        ohms: f64,
    },
    /// The design has no voltage source, so the system is floating.
    NoPads,
    /// A voltage source was not referenced to ground.
    UngroundedSource {
        /// Element name.
        name: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NonPositiveResistance { name, ohms } => {
                write!(f, "resistor '{name}' has non-positive resistance {ohms}")
            }
            ModelError::NoPads => write!(f, "design has no voltage source (floating grid)"),
            ModelError::UngroundedSource { name } => {
                write!(f, "voltage source '{name}' is not referenced to ground")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ModelError::NoPads.to_string().contains("floating"));
        let e = ModelError::NonPositiveResistance {
            name: "R9".into(),
            ohms: 0.0,
        };
        assert!(e.to_string().contains("R9"));
    }
}
