//! Errors raised while building the circuit model.

use std::error::Error;
use std::fmt;

/// Error building or using a [`crate::PowerGrid`] model.
///
/// Also exported as [`PgError`](crate::PgError): malformed grids and
/// bad simulation parameters surface as errors rather than panics,
/// following the same convention as `FeatureError::NoPads` upstream.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A resistor had a non-positive resistance.
    NonPositiveResistance {
        /// Element name.
        name: String,
        /// The offending value.
        ohms: f64,
    },
    /// The design has no voltage source, so the system is floating.
    NoPads,
    /// A voltage source was not referenced to ground.
    UngroundedSource {
        /// Element name.
        name: String,
    },
    /// A segment, load, or pad referenced a node index outside the
    /// grid's node list.
    InvalidNodeIndex {
        /// Which element kind held the bad reference.
        what: &'static str,
        /// The out-of-range index.
        index: usize,
        /// Number of nodes in the grid.
        nodes: usize,
    },
    /// A numeric parameter that must be strictly positive was not.
    NonPositiveParameter {
        /// Parameter name.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A vector length disagreed with the model dimension.
    DimensionMismatch {
        /// What was being checked.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// The assembled system could not be factored (not positive
    /// definite; indicates a floating grid).
    NotPositiveDefinite {
        /// Underlying solver diagnostic.
        detail: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NonPositiveResistance { name, ohms } => {
                write!(f, "resistor '{name}' has non-positive resistance {ohms}")
            }
            ModelError::NoPads => write!(f, "design has no voltage source (floating grid)"),
            ModelError::UngroundedSource { name } => {
                write!(f, "voltage source '{name}' is not referenced to ground")
            }
            ModelError::InvalidNodeIndex { what, index, nodes } => {
                write!(
                    f,
                    "{what} references node {index}, but grid has {nodes} nodes"
                )
            }
            ModelError::NonPositiveParameter { what, value } => {
                write!(f, "{what} must be positive, got {value}")
            }
            ModelError::DimensionMismatch {
                what,
                expected,
                got,
            } => {
                write!(f, "{what}: expected length {expected}, got {got}")
            }
            ModelError::NotPositiveDefinite { detail } => {
                write!(f, "system is not positive definite ({detail})")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ModelError::NoPads.to_string().contains("floating"));
        let e = ModelError::NonPositiveResistance {
            name: "R9".into(),
            ohms: 0.0,
        };
        assert!(e.to_string().contains("R9"));
    }
}
