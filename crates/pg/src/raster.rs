//! 2-D maps and node-to-pixel rasterization.
//!
//! The paper represents each PG design as a stack of fixed-size images
//! ("each node is planted into the 256 x 256 grid" via `x = x_n / w`,
//! `y = y_n / l`). [`Rasterizer`] implements that mapping for an
//! arbitrary target resolution, and [`GridMap`] is the dense f32 image
//! the features and the ML models operate on.

/// A dense row-major 2-D map of `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct GridMap {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl GridMap {
    /// Creates a zero-filled `width x height` map.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        GridMap {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Creates a map filled with `value`.
    #[must_use]
    pub fn filled(width: usize, height: usize, value: f32) -> Self {
        GridMap {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    #[must_use]
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), width * height, "grid map buffer size mismatch");
        GridMap {
            width,
            height,
            data,
        }
    }

    /// Map width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Map height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw buffer, row-major.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw buffer, row-major.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the map, returning the buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x]
    }

    /// Sets the value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x] = v;
    }

    /// Adds `v` at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn add(&mut self, x: usize, y: usize, v: f32) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.data[y * self.width + x] += v;
    }

    /// Maximum value (`0.0` for an all-zero map; `NEG_INFINITY` never
    /// escapes because maps are never empty).
    #[must_use]
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum value.
    #[must_use]
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Mean value.
    #[must_use]
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Returns a copy scaled so the maximum absolute value is 1
    /// (all-zero maps stay zero).
    #[must_use]
    pub fn normalized(&self) -> GridMap {
        let m = self.data.iter().fold(0.0_f32, |acc, v| acc.max(v.abs()));
        if m == 0.0 {
            return self.clone();
        }
        let data = self.data.iter().map(|v| v / m).collect();
        GridMap {
            width: self.width,
            height: self.height,
            data,
        }
    }

    /// Rotates the map 90 degrees clockwise `quarters` times — the
    /// augmentation the paper applies (90/180/270).
    #[must_use]
    pub fn rotated(&self, quarters: u32) -> GridMap {
        let mut cur = self.clone();
        for _ in 0..(quarters % 4) {
            let (w, h) = (cur.width, cur.height);
            let mut out = GridMap::new(h, w);
            for y in 0..h {
                for x in 0..w {
                    // clockwise: (x, y) -> (h - 1 - y, x)
                    out.set(h - 1 - y, x, cur.get(x, y));
                }
            }
            cur = out;
        }
        cur
    }

    /// Serializes the map as CSV (`y` rows by `x` columns) for
    /// plotting the paper's figures with external tools.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for y in 0..self.height {
            for x in 0..self.width {
                if x > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}", self.get(x, y)));
            }
            out.push('\n');
        }
        out
    }

    /// Writes the map as a binary PGM image (for Fig. 6-style dumps),
    /// linearly scaled to 0..=255.
    #[must_use]
    pub fn to_pgm(&self) -> Vec<u8> {
        let (lo, hi) = (self.min(), self.max());
        let span = if hi > lo { hi - lo } else { 1.0 };
        let mut out = format!("P5\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend(
            self.data
                .iter()
                .map(|v| (((v - lo) / span) * 255.0).round().clamp(0.0, 255.0) as u8),
        );
        out
    }
}

/// Maps database-unit node coordinates onto a fixed pixel grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rasterizer {
    x0: i64,
    y0: i64,
    /// Tile size in database units per pixel along x.
    tile_w: f64,
    /// Tile size along y.
    tile_h: f64,
    width: usize,
    height: usize,
}

impl Rasterizer {
    /// Builds a rasterizer covering `bbox = (x0, y0, x1, y1)` with a
    /// `width x height` pixel grid.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    #[must_use]
    pub fn new(bbox: (i64, i64, i64, i64), width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "raster must have positive size");
        let (x0, y0, x1, y1) = bbox;
        let span_x = (x1 - x0).max(1) as f64;
        let span_y = (y1 - y0).max(1) as f64;
        Rasterizer {
            x0,
            y0,
            tile_w: span_x / width as f64,
            tile_h: span_y / height as f64,
            width,
            height,
        }
    }

    /// Output width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Output height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel for a node coordinate (clamped to the grid).
    #[must_use]
    pub fn pixel(&self, x: i64, y: i64) -> (usize, usize) {
        let px = (((x - self.x0) as f64) / self.tile_w).floor() as isize;
        let py = (((y - self.y0) as f64) / self.tile_h).floor() as isize;
        (
            px.clamp(0, self.width as isize - 1) as usize,
            py.clamp(0, self.height as isize - 1) as usize,
        )
    }

    /// Splats `(x, y, value)` samples, averaging values that land on
    /// the same pixel (the paper's per-tile mean).
    #[must_use]
    pub fn splat_mean(&self, samples: impl IntoIterator<Item = (i64, i64, f64)>) -> GridMap {
        let mut sum = GridMap::new(self.width, self.height);
        let mut count = GridMap::new(self.width, self.height);
        for (x, y, v) in samples {
            let (px, py) = self.pixel(x, y);
            sum.add(px, py, v as f32);
            count.add(px, py, 1.0);
        }
        for (s, c) in sum.data_mut().iter_mut().zip(count.data()) {
            if *c > 0.0 {
                *s /= c;
            }
        }
        sum
    }

    /// Splats samples, summing values per pixel (used for current
    /// maps, where tile totals are physically meaningful).
    #[must_use]
    pub fn splat_sum(&self, samples: impl IntoIterator<Item = (i64, i64, f64)>) -> GridMap {
        let mut sum = GridMap::new(self.width, self.height);
        for (x, y, v) in samples {
            let (px, py) = self.pixel(x, y);
            sum.add(px, py, v as f32);
        }
        sum
    }

    /// Splats samples keeping the per-pixel maximum (used for the
    /// golden IR-drop label, where the worst drop in a tile matters).
    #[must_use]
    pub fn splat_max(&self, samples: impl IntoIterator<Item = (i64, i64, f64)>) -> GridMap {
        let mut out = GridMap::new(self.width, self.height);
        let mut seen = vec![false; self.width * self.height];
        for (x, y, v) in samples {
            let (px, py) = self.pixel(x, y);
            let idx = py * self.width + px;
            if !seen[idx] || out.data()[idx] < v as f32 {
                out.data_mut()[idx] = v as f32;
                seen[idx] = true;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut m = GridMap::new(4, 3);
        m.set(3, 2, 7.5);
        assert_eq!(m.get(3, 2), 7.5);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn stats_are_correct() {
        let m = GridMap::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.max(), 4.0);
        assert_eq!(m.min(), 1.0);
        assert_eq!(m.mean(), 2.5);
    }

    #[test]
    fn normalized_caps_at_one() {
        let m = GridMap::from_vec(1, 3, vec![-4.0, 2.0, 1.0]).normalized();
        assert_eq!(m.data(), &[-1.0, 0.5, 0.25]);
        // all-zero stays zero
        let z = GridMap::new(2, 2).normalized();
        assert!(z.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rotation_quarter_turns() {
        let m = GridMap::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        // clockwise 90: (0,0)=1 goes to (1,0)
        let r = m.rotated(1);
        assert_eq!(r.get(1, 0), 1.0);
        assert_eq!(r.get(0, 0), 3.0);
        // four quarter turns restore the original
        assert_eq!(m.rotated(4), m);
        // 180 = two 90s
        assert_eq!(m.rotated(2), m.rotated(1).rotated(1));
    }

    #[test]
    fn rasterizer_corners_map_to_corner_pixels() {
        let r = Rasterizer::new((0, 0, 1000, 1000), 10, 10);
        assert_eq!(r.pixel(0, 0), (0, 0));
        assert_eq!(r.pixel(999, 999), (9, 9));
        assert_eq!(r.pixel(1000, 1000), (9, 9)); // clamped
        assert_eq!(r.pixel(-5, -5), (0, 0)); // clamped
    }

    #[test]
    fn splat_mean_averages() {
        let r = Rasterizer::new((0, 0, 100, 100), 2, 2);
        let m = r.splat_mean([(10, 10, 1.0), (20, 20, 3.0), (90, 90, 5.0)]);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 1), 5.0);
        assert_eq!(m.get(1, 0), 0.0);
    }

    #[test]
    fn splat_sum_totals() {
        let r = Rasterizer::new((0, 0, 100, 100), 2, 2);
        let m = r.splat_sum([(10, 10, 1.0), (20, 20, 3.0)]);
        assert_eq!(m.get(0, 0), 4.0);
    }

    #[test]
    fn splat_max_keeps_worst() {
        let r = Rasterizer::new((0, 0, 100, 100), 2, 2);
        let m = r.splat_max([(10, 10, 1.0), (20, 20, 3.0), (15, 15, 2.0)]);
        assert_eq!(m.get(0, 0), 3.0);
    }

    #[test]
    fn csv_rows_match_layout() {
        let m = GridMap::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.to_csv(), "1,2\n3,4\n");
    }

    #[test]
    fn pgm_has_header_and_payload() {
        let m = GridMap::from_vec(2, 2, vec![0.0, 0.5, 0.75, 1.0]);
        let pgm = m.to_pgm();
        assert!(pgm.starts_with(b"P5\n2 2\n255\n"));
        assert_eq!(pgm.len(), "P5\n2 2\n255\n".len() + 4);
        assert_eq!(*pgm.last().unwrap(), 255);
    }

    #[test]
    fn degenerate_bbox_is_handled() {
        let r = Rasterizer::new((5, 5, 5, 5), 4, 4);
        assert_eq!(r.pixel(5, 5), (0, 0));
    }
}
