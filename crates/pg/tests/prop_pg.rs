//! Randomized-but-deterministic property tests for the circuit model
//! and rasterization (fixed seeds, exact reproduction on failure).

use irf_pg::{GridMap, PowerGrid, Rasterizer};
use irf_runtime::Xoshiro256pp;
use irf_spice::parse;

const CASES: u64 = 64;

#[test]
fn rasterizer_always_lands_inside() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x96_01);
    for _ in 0..CASES {
        let bbox_w = rng.random_range(1i64..1_000_000);
        let bbox_h = rng.random_range(1i64..1_000_000);
        let w = rng.random_range(1usize..300);
        let h = rng.random_range(1usize..300);
        let x = rng.random_range(-2_000_000i64..2_000_000);
        let y = rng.random_range(-2_000_000i64..2_000_000);
        let r = Rasterizer::new((0, 0, bbox_w, bbox_h), w, h);
        let (px, py) = r.pixel(x, y);
        assert!(px < w && py < h);
    }
}

#[test]
fn rasterizer_is_monotone_along_axes() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x96_02);
    for _ in 0..CASES {
        let w = rng.random_range(2usize..64);
        let len = rng.random_range(2usize..10);
        let mut sorted: Vec<i64> = (0..len).map(|_| rng.random_range(0i64..10_000)).collect();
        sorted.sort_unstable();
        let r = Rasterizer::new((0, 0, 10_000, 10_000), w, w);
        let pixels: Vec<usize> = sorted.iter().map(|&x| r.pixel(x, 0).0).collect();
        for pair in pixels.windows(2) {
            assert!(pair[0] <= pair[1], "pixel mapping must be monotone");
        }
    }
}

#[test]
fn splat_sum_conserves_mass() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x96_03);
    for _ in 0..CASES {
        let len = rng.random_range(0usize..100);
        let samples: Vec<(i64, i64, f64)> = (0..len)
            .map(|_| {
                (
                    rng.random_range(0i64..1000),
                    rng.random_range(0i64..1000),
                    rng.random_range(-5.0f64..5.0),
                )
            })
            .collect();
        let w = rng.random_range(1usize..32);
        let h = rng.random_range(1usize..32);
        let r = Rasterizer::new((0, 0, 1000, 1000), w, h);
        let m = r.splat_sum(samples.clone());
        let total: f64 = m.data().iter().map(|&v| f64::from(v)).sum();
        let expect: f64 = samples.iter().map(|&(_, _, v)| v).sum();
        assert!((total - expect).abs() < 1e-3 * (1.0 + expect.abs()));
    }
}

#[test]
fn rotation_is_a_group_of_order_four() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x96_04);
    for _ in 0..CASES {
        let data: Vec<f32> = (0..36).map(|_| rng.random_range(-10.0f32..10.0)).collect();
        let quarters = rng.random_range(0u32..8);
        let m = GridMap::from_vec(6, 6, data);
        // r^(q) == r^(q mod 4); four quarter turns are the identity.
        assert_eq!(m.rotated(quarters), m.rotated(quarters % 4));
        assert_eq!(m.rotated(4), m.clone());
        // Rotation preserves the multiset of values (sum and max).
        let r = m.rotated(1);
        let sum_a: f32 = m.data().iter().sum();
        let sum_b: f32 = r.data().iter().sum();
        assert!((sum_a - sum_b).abs() < 1e-3);
        assert_eq!(m.max(), r.max());
    }
}

#[test]
fn mna_diagonal_dominance() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x96_05);
    for _ in 0..CASES {
        // A chain with one pad: the reduced matrix is diagonally
        // dominant with strict dominance at the pad neighbour.
        let len = rng.random_range(3usize..10);
        let res: Vec<f64> = (0..len).map(|_| rng.random_range(0.1f64..100.0)).collect();
        let mut src = String::from("V1 p 0 1.0\n");
        let mut prev = "p".to_string();
        for (i, r) in res.iter().enumerate() {
            let cur = format!("n{i}");
            src.push_str(&format!("R{i} {prev} {cur} {r}\n"));
            prev = cur;
        }
        src.push_str(&format!("I1 {prev} 0 1m\n"));
        let g = PowerGrid::from_netlist(&parse(&src).unwrap()).unwrap();
        let sys = g.build_system();
        for i in 0..sys.dim() {
            let (cols, vals) = sys.matrix.row(i);
            let mut diag = 0.0;
            let mut off = 0.0;
            for (&c, &v) in cols.iter().zip(vals) {
                if c == i {
                    diag = v;
                } else {
                    off += v.abs();
                }
            }
            assert!(diag >= off - 1e-9, "row {i} not diagonally dominant");
        }
    }
}

#[test]
fn grid_map_normalized_is_idempotent() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x96_06);
    for _ in 0..CASES {
        let data: Vec<f32> = (0..16)
            .map(|_| rng.random_range(-100.0f32..100.0))
            .collect();
        let m = GridMap::from_vec(4, 4, data);
        let n1 = m.normalized();
        let n2 = n1.normalized();
        for (a, b) in n1.data().iter().zip(n2.data()) {
            assert!((a - b).abs() < 1e-5);
        }
        assert!(n1.data().iter().all(|v| v.abs() <= 1.0 + 1e-6));
    }
}
