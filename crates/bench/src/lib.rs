//! Benchmark harness regenerating every table and figure of the
//! IR-Fusion paper.
//!
//! Binaries (run with `--release`):
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `table1` | Table I — main results across all models |
//! | `fig6`   | Fig. 6 — golden / MAUnet / IR-Fusion drop maps (PGM + ASCII) |
//! | `fig7`   | Fig. 7 — accuracy-vs-iterations trade-off vs PowerRush |
//! | `fig8`   | Fig. 8 — ablation study |
//! | `scaling` | thread-scaling throughput of the parallel hot paths |
//!
//! The `scaling` binary measures spmv and conv2d throughput at 1, 2,
//! 4, and 8 threads and emits JSON, feeding the runtime columns of the
//! paper's tables and the `BENCH_*.json` artifacts.

use irf_metrics::MetricReport;

/// Formats one Table-I-style row.
#[must_use]
pub fn format_row(name: &str, r: &MetricReport) -> String {
    format!(
        "{name:<16} | {:>8.3} | {:>6.3} | {:>9.4} | {:>8.3}",
        r.mae_e4(),
        r.f1,
        r.runtime_seconds,
        r.mirde_e4()
    )
}

/// Header matching [`format_row`].
#[must_use]
pub fn table_header() -> String {
    format!(
        "{:<16} | {:>8} | {:>6} | {:>9} | {:>8}\n{}",
        "Method",
        "MAE e-4",
        "F1",
        "Runtime s",
        "MIRDE e-4",
        "-".repeat(60)
    )
}

/// Parses the experiment scale from CLI args: `--tiny` selects the
/// smoke scale, anything else the paper-shaped scale.
#[must_use]
pub fn scale_from_args() -> ir_fusion::experiment::ExperimentScale {
    if std::env::args().any(|a| a == "--tiny") {
        ir_fusion::experiment::ExperimentScale::tiny()
    } else {
        ir_fusion::experiment::ExperimentScale::paper()
    }
}

/// The directory benchmark binaries write their artifacts (PGM / CSV /
/// JSON reports) into: `target/bench-out/`, created on first use so
/// outputs never land in the repository root.
///
/// # Panics
///
/// Panics when the directory cannot be created.
#[must_use]
pub fn bench_out(file: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new("target").join("bench-out");
    std::fs::create_dir_all(&dir).expect("create target/bench-out");
    dir.join(file)
}

/// Peak resident set size of the current process in bytes — `VmHWM`
/// from `/proc/self/status` — or `None` off Linux or when procfs is
/// unavailable. The kernel's high-water mark is monotone over the
/// process lifetime, so a phase that should demonstrate a memory
/// *bound* must be measured before any phase with a larger working
/// set runs.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_positive_on_linux() {
        let rss = peak_rss_bytes().expect("procfs available");
        assert!(rss > 1024 * 1024, "implausible peak RSS: {rss} bytes");
    }

    #[test]
    fn row_formatting_is_stable() {
        let r = MetricReport {
            mae_volts: 0.72e-4,
            f1: 0.71,
            mirde_volts: 3.05e-4,
            cc: 0.9,
            runtime_seconds: 6.98,
        };
        let row = format_row("IR-Fusion", &r);
        assert!(row.contains("IR-Fusion"));
        assert!(row.contains("0.720"));
        assert!(row.contains("0.710"));
    }

    #[test]
    fn header_aligns_with_rows() {
        let header_cols = table_header().lines().next().unwrap().matches('|').count();
        let r = MetricReport::default();
        assert_eq!(header_cols, format_row("x", &r).matches('|').count());
    }
}
