//! Thread-scaling benchmark for the parallel hot paths: sparse
//! matrix-vector products on a power-grid Laplacian and conv2d
//! forward passes, each measured at 1, 2, 4, and 8 threads.
//!
//! ```bash
//! cargo run -p irf-bench --bin scaling --release -- [--tiny] [--json PATH]
//! cargo run -p irf-bench --bin scaling --release -- --large 1000000 [--json PATH]
//! ```
//!
//! Emits a human-readable table on stdout and, with `--json PATH`, a
//! machine-readable report (suitable for `BENCH_scaling.json`). All
//! kernels are bitwise deterministic, so the checksum column must be
//! identical across thread counts — the benchmark fails otherwise.
//!
//! `--large N` switches to the end-to-end bounded-memory leg: a
//! scaled synthetic design of roughly `N` nodes is streamed to disk
//! ([`irf_data::synthesize_to_path`]), then for each thread count the
//! full prepare path runs from the file — streaming ingest
//! ([`irf_pg::grid_from_spice_path`]), two-pass MNA assembly, AMG
//! setup, and a truncated rough solve — with `VmHWM` peak-RSS
//! recorded after the streaming sweep and again after a
//! materialize-everything baseline (read the whole file into a
//! `String`, parse to a full [`irf_spice::Netlist`], then model).
//! Because the high-water mark is monotone, the streaming sweep runs
//! first; its peak is an upper bound on what the streaming path
//! needs. Matrix and solution checksums must be bitwise identical
//! across thread counts and between the streaming and baseline paths.

use irf_nn::{ParamStore, Tape, Tensor};
use irf_runtime::Xoshiro256pp;
use irf_sparse::{CsrMatrix, Solver, SolverKind, TripletMatrix};
use std::time::Instant;

struct Measurement {
    kernel: &'static str,
    threads: usize,
    reps: usize,
    seconds: f64,
    throughput: f64, // kernel-specific unit per second
    checksum: u64,
}

/// A `side x side` grid Laplacian with randomized conductances and two
/// grounded corners — the same structure the IR solver sees.
fn grid_laplacian(side: usize) -> CsrMatrix {
    let n = side * side;
    let mut rng = Xoshiro256pp::seed_from_u64(0xB3_4C);
    let mut t = TripletMatrix::new(n, n);
    for r in 0..side {
        for c in 0..side {
            let i = r * side + c;
            if c + 1 < side {
                t.stamp_conductance(i, i + 1, rng.random_range(0.5f64..2.0));
            }
            if r + 1 < side {
                t.stamp_conductance(i, i + side, rng.random_range(0.5f64..2.0));
            }
        }
    }
    t.stamp_grounded_conductance(0, 1.0);
    t.stamp_grounded_conductance(n - 1, 1.0);
    t.to_csr()
}

fn bench_spmv(a: &CsrMatrix, threads: usize, reps: usize) -> Measurement {
    irf_runtime::set_num_threads(threads);
    let n = a.rows();
    let mut rng = Xoshiro256pp::seed_from_u64(0xB3_01);
    let x: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0f64..1.0)).collect();
    let mut y = vec![0.0; n];
    a.spmv_into(&x, &mut y); // warm up (spawns the worker threads)
    let start = Instant::now();
    for _ in 0..reps {
        a.spmv_into(&x, &mut y);
    }
    let seconds = start.elapsed().as_secs_f64();
    let checksum = y.iter().fold(0u64, |h, v| h.rotate_left(7) ^ v.to_bits());
    Measurement {
        kernel: "spmv",
        threads,
        reps,
        seconds,
        // nonzeros processed per second (2 flops each).
        throughput: (a.nnz() * reps) as f64 / seconds,
        checksum,
    }
}

fn bench_conv2d(shape: [usize; 4], threads: usize, reps: usize) -> Measurement {
    irf_runtime::set_num_threads(threads);
    let mut rng = Xoshiro256pp::seed_from_u64(0xB3_02);
    let mut tensor = |shape: [usize; 4]| {
        let n: usize = shape.iter().product();
        let data: Vec<f32> = (0..n).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        Tensor::from_vec(shape, data)
    };
    let co = 16;
    let x = tensor(shape);
    let w = tensor([co, shape[1], 3, 3]);
    let b = tensor([1, co, 1, 1]);
    let mut store = ParamStore::new();
    let run = |store: &mut ParamStore| {
        let mut tape = Tape::new();
        let xi = tape.leaf(x.clone());
        let wi = tape.leaf(w.clone());
        let bi = tape.leaf(b.clone());
        let y = tape.conv2d(xi, wi, bi, 1, 1);
        let seed = Tensor::filled(tape.value(y).shape(), 1.0);
        tape.backward(y, seed, store);
        tape.value(y)
            .data()
            .iter()
            .fold(0u64, |h, v| h.rotate_left(7) ^ u64::from(v.to_bits()))
    };
    let mut checksum = run(&mut store); // warm up
    let start = Instant::now();
    for _ in 0..reps {
        checksum = run(&mut store);
    }
    let seconds = start.elapsed().as_secs_f64();
    let pixels = shape[0] * shape[2] * shape[3];
    Measurement {
        kernel: "conv2d",
        threads,
        reps,
        seconds,
        // output pixels (fwd+bwd) per second.
        throughput: (pixels * reps) as f64 / seconds,
        checksum,
    }
}

fn json_report(rows: &[Measurement], nodes: usize) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"thread-scaling\",\n");
    let peak_mb = irf_bench::peak_rss_bytes().map_or(0.0, |b| b as f64 / (1024.0 * 1024.0));
    out.push_str(&format!("  \"peak_rss_mb\": {peak_mb:.1},\n"));
    out.push_str(&format!("  \"grid_nodes\": {nodes},\n  \"results\": [\n"));
    for (i, m) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"threads\": {}, \"reps\": {}, \
             \"seconds\": {:.6}, \"throughput_per_s\": {:.1}, \"checksum\": \"{:016x}\"}}{}\n",
            m.kernel,
            m.threads,
            m.reps,
            m.seconds,
            m.throughput,
            m.checksum,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn bits_checksum<'a>(vals: impl Iterator<Item = &'a f64>) -> u64 {
    vals.fold(0u64, |h, v| h.rotate_left(7) ^ v.to_bits())
}

fn matrix_checksum(a: &CsrMatrix) -> u64 {
    let structure = a
        .row_ptr()
        .iter()
        .chain(a.col_idx())
        .fold(0u64, |h, &v| h.rotate_left(7) ^ v as u64);
    structure.rotate_left(13) ^ bits_checksum(a.values().iter())
}

struct LargeRun {
    threads: usize,
    ingest_seconds: f64,
    assemble_seconds: f64,
    amg_setup_seconds: f64,
    solve_seconds: f64,
    iterations: usize,
    matrix_checksum: u64,
    solution_checksum: u64,
    peak_rss_mb: f64,
}

/// One streaming end-to-end pass at a fixed thread count: file →
/// grid → reduced system → AMG setup → truncated rough solve.
fn large_pass(path: &std::path::Path, threads: usize) -> LargeRun {
    irf_runtime::set_num_threads(threads);
    let start = Instant::now();
    let grid = irf_pg::grid_from_spice_path(path).expect("streaming ingest");
    let ingest_seconds = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let system = irf_pg::PgSystem::try_build(&grid).expect("assembly");
    let assemble_seconds = start.elapsed().as_secs_f64();
    drop(grid);

    let start = Instant::now();
    let setup = Solver::new(SolverKind::AmgPcg).prepare(&system.matrix);
    let amg_setup_seconds = start.elapsed().as_secs_f64();

    // Rough solve: the fusion pipeline's "early truncation" regime.
    let report = setup
        .with_stopping(1e-3, 24)
        .solve(&system.matrix, &system.rhs);
    let peak = irf_bench::peak_rss_bytes().unwrap_or(0);
    LargeRun {
        threads,
        ingest_seconds,
        assemble_seconds,
        amg_setup_seconds,
        solve_seconds: report.solve_seconds,
        iterations: report.iterations,
        matrix_checksum: matrix_checksum(&system.matrix),
        solution_checksum: bits_checksum(report.x.iter()),
        peak_rss_mb: peak as f64 / (1024.0 * 1024.0),
    }
}

fn run_large(target_nodes: usize, json_path: Option<String>) {
    let spec = irf_data::SynthSpec::scaled_to_nodes(target_nodes, 42);
    let approx = irf_data::approx_node_count(&spec);
    let path = irf_bench::bench_out("large_grid.sp");
    println!("large-grid: target {target_nodes} nodes (approx {approx}), streaming to {path:?}");

    let start = Instant::now();
    irf_data::synthesize_to_path(&spec, &path).expect("synthesize to file");
    let synth_seconds = start.elapsed().as_secs_f64();
    let netlist_bytes = std::fs::metadata(&path).map_or(0, |m| m.len());
    println!(
        "synthesized {:.1} MiB in {synth_seconds:.2}s",
        netlist_bytes as f64 / (1024.0 * 1024.0)
    );

    println!(
        "{:>7} | {:>8} | {:>8} | {:>8} | {:>8} | {:>4} | {:>16} | {:>9}",
        "threads", "ingest_s", "asm_s", "amg_s", "solve_s", "it", "solution", "peakRSS"
    );
    println!("{}", "-".repeat(88));
    // Streaming passes first: VmHWM is monotone, so their peak must be
    // captured before the materialize-everything baseline inflates it.
    let mut runs = Vec::new();
    for &threads in &[1usize, 2, 4, 8] {
        let run = large_pass(&path, threads);
        println!(
            "{:>7} | {:>8.2} | {:>8.2} | {:>8.2} | {:>8.2} | {:>4} | {:016x} | {:>7.1}MB",
            run.threads,
            run.ingest_seconds,
            run.assemble_seconds,
            run.amg_setup_seconds,
            run.solve_seconds,
            run.iterations,
            run.solution_checksum,
            run.peak_rss_mb
        );
        runs.push(run);
    }
    assert!(
        runs.windows(2)
            .all(|w| w[0].matrix_checksum == w[1].matrix_checksum
                && w[0].solution_checksum == w[1].solution_checksum),
        "large-grid results are not deterministic across thread counts"
    );
    let streaming_peak_mb = runs.last().map_or(0.0, |r| r.peak_rss_mb);

    // Materialize-everything baseline at 1 thread: whole file in a
    // String, full Netlist, full PowerGrid — the pre-streaming shape
    // of the prepare path.
    irf_runtime::set_num_threads(1);
    let start = Instant::now();
    let src = std::fs::read_to_string(&path).expect("read netlist");
    let netlist = irf_spice::parse(&src).expect("parse netlist");
    drop(src);
    let parse_seconds = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let grid = irf_pg::PowerGrid::from_netlist(&netlist).expect("model grid");
    drop(netlist);
    let system = irf_pg::PgSystem::try_build(&grid).expect("assembly");
    let assemble_seconds = start.elapsed().as_secs_f64();
    let baseline_checksum = matrix_checksum(&system.matrix);
    let baseline_peak_mb = irf_bench::peak_rss_bytes().unwrap_or(0) as f64 / (1024.0 * 1024.0);
    assert_eq!(
        baseline_checksum, runs[0].matrix_checksum,
        "streaming and materialized assembly disagree"
    );
    println!(
        "baseline (materialized, 1 thread): parse {parse_seconds:.2}s + assemble \
         {assemble_seconds:.2}s, peak RSS {baseline_peak_mb:.1}MB (streaming sweep peaked \
         at {streaming_peak_mb:.1}MB)"
    );

    irf_runtime::set_num_threads(0);
    let mut out = String::from("{\n  \"benchmark\": \"large-grid-scaling\",\n");
    out.push_str(&format!(
        "  \"target_nodes\": {target_nodes},\n  \"grid_nodes\": {},\n  \"unknowns\": {},\n  \
         \"nnz\": {},\n  \"netlist_bytes\": {netlist_bytes},\n  \
         \"synth_seconds\": {synth_seconds:.3},\n  \"results\": [\n",
        grid.nodes.len(),
        system.matrix.rows(),
        system.matrix.nnz(),
    ));
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"ingest_seconds\": {:.3}, \"assemble_seconds\": {:.3}, \
             \"amg_setup_seconds\": {:.3}, \"solve_seconds\": {:.3}, \"iterations\": {}, \
             \"matrix_checksum\": \"{:016x}\", \"solution_checksum\": \"{:016x}\", \
             \"peak_rss_mb\": {:.1}}}{}\n",
            r.threads,
            r.ingest_seconds,
            r.assemble_seconds,
            r.amg_setup_seconds,
            r.solve_seconds,
            r.iterations,
            r.matrix_checksum,
            r.solution_checksum,
            r.peak_rss_mb,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"baseline\": {{\"parse_seconds\": {parse_seconds:.3}, \
         \"assemble_seconds\": {assemble_seconds:.3}, \"peak_rss_mb\": {baseline_peak_mb:.1}, \
         \"matrix_checksum\": \"{baseline_checksum:016x}\"}},\n  \
         \"streaming_peak_rss_mb\": {streaming_peak_mb:.1}\n}}\n"
    ));
    if let Some(path) = json_path {
        std::fs::write(&path, &out).expect("write JSON report");
        println!("\nwrote {path}");
    } else {
        println!("\n{out}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());
    if let Some(i) = args.iter().position(|a| a == "--large") {
        let target: usize = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or(1_000_000);
        run_large(target, json_path);
        return;
    }

    // >= 100k nodes at full scale so every kernel spans many chunks.
    let side = if tiny { 64 } else { 320 };
    let (spmv_reps, conv_reps) = if tiny { (20, 3) } else { (50, 5) };
    let conv_shape = if tiny { [1, 8, 32, 32] } else { [4, 8, 64, 64] };
    let a = grid_laplacian(side);
    println!(
        "thread-scaling: spmv on {} nodes ({} nnz), conv2d on {:?} (16 out channels)",
        a.rows(),
        a.nnz(),
        conv_shape
    );
    println!(
        "{:>8} | {:>7} | {:>9} | {:>14} | {:>8} | {:>16}",
        "kernel", "threads", "seconds", "throughput/s", "speedup", "checksum"
    );
    println!("{}", "-".repeat(78));

    let mut rows = Vec::new();
    let mut base = 0.0;
    for &threads in &[1usize, 2, 4, 8] {
        let m = bench_spmv(&a, threads, spmv_reps);
        if threads == 1 {
            base = m.throughput;
        }
        println!(
            "{:>8} | {:>7} | {:>9.4} | {:>14.1} | {:>7.2}x | {:016x}",
            m.kernel,
            m.threads,
            m.seconds,
            m.throughput,
            m.throughput / base,
            m.checksum
        );
        rows.push(m);
    }
    let spmv_checksums: Vec<u64> = rows.iter().map(|m| m.checksum).collect();
    assert!(
        spmv_checksums.windows(2).all(|w| w[0] == w[1]),
        "spmv results are not deterministic across thread counts"
    );

    for &threads in &[1usize, 2, 4, 8] {
        let m = bench_conv2d(conv_shape, threads, conv_reps);
        if threads == 1 {
            base = m.throughput;
        }
        println!(
            "{:>8} | {:>7} | {:>9.4} | {:>14.1} | {:>7.2}x | {:016x}",
            m.kernel,
            m.threads,
            m.seconds,
            m.throughput,
            m.throughput / base,
            m.checksum
        );
        rows.push(m);
    }
    let conv_checksums: Vec<u64> = rows[4..].iter().map(|m| m.checksum).collect();
    assert!(
        conv_checksums.windows(2).all(|w| w[0] == w[1]),
        "conv2d results are not deterministic across thread counts"
    );

    irf_runtime::set_num_threads(0);
    let report = json_report(&rows, a.rows());
    if let Some(path) = json_path {
        std::fs::write(&path, &report).expect("write JSON report");
        println!("\nwrote {path}");
    } else {
        println!("\n{report}");
    }
}
