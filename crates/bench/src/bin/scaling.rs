//! Thread-scaling benchmark for the parallel hot paths: sparse
//! matrix-vector products on a power-grid Laplacian and conv2d
//! forward passes, each measured at 1, 2, 4, and 8 threads.
//!
//! ```bash
//! cargo run -p irf-bench --bin scaling --release -- [--tiny] [--json PATH]
//! ```
//!
//! Emits a human-readable table on stdout and, with `--json PATH`, a
//! machine-readable report (suitable for `BENCH_scaling.json`). All
//! kernels are bitwise deterministic, so the checksum column must be
//! identical across thread counts — the benchmark fails otherwise.

use irf_nn::{ParamStore, Tape, Tensor};
use irf_runtime::Xoshiro256pp;
use irf_sparse::{CsrMatrix, TripletMatrix};
use std::time::Instant;

struct Measurement {
    kernel: &'static str,
    threads: usize,
    reps: usize,
    seconds: f64,
    throughput: f64, // kernel-specific unit per second
    checksum: u64,
}

/// A `side x side` grid Laplacian with randomized conductances and two
/// grounded corners — the same structure the IR solver sees.
fn grid_laplacian(side: usize) -> CsrMatrix {
    let n = side * side;
    let mut rng = Xoshiro256pp::seed_from_u64(0xB3_4C);
    let mut t = TripletMatrix::new(n, n);
    for r in 0..side {
        for c in 0..side {
            let i = r * side + c;
            if c + 1 < side {
                t.stamp_conductance(i, i + 1, rng.random_range(0.5f64..2.0));
            }
            if r + 1 < side {
                t.stamp_conductance(i, i + side, rng.random_range(0.5f64..2.0));
            }
        }
    }
    t.stamp_grounded_conductance(0, 1.0);
    t.stamp_grounded_conductance(n - 1, 1.0);
    t.to_csr()
}

fn bench_spmv(a: &CsrMatrix, threads: usize, reps: usize) -> Measurement {
    irf_runtime::set_num_threads(threads);
    let n = a.rows();
    let mut rng = Xoshiro256pp::seed_from_u64(0xB3_01);
    let x: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0f64..1.0)).collect();
    let mut y = vec![0.0; n];
    a.spmv_into(&x, &mut y); // warm up (spawns the worker threads)
    let start = Instant::now();
    for _ in 0..reps {
        a.spmv_into(&x, &mut y);
    }
    let seconds = start.elapsed().as_secs_f64();
    let checksum = y.iter().fold(0u64, |h, v| h.rotate_left(7) ^ v.to_bits());
    Measurement {
        kernel: "spmv",
        threads,
        reps,
        seconds,
        // nonzeros processed per second (2 flops each).
        throughput: (a.nnz() * reps) as f64 / seconds,
        checksum,
    }
}

fn bench_conv2d(shape: [usize; 4], threads: usize, reps: usize) -> Measurement {
    irf_runtime::set_num_threads(threads);
    let mut rng = Xoshiro256pp::seed_from_u64(0xB3_02);
    let mut tensor = |shape: [usize; 4]| {
        let n: usize = shape.iter().product();
        let data: Vec<f32> = (0..n).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        Tensor::from_vec(shape, data)
    };
    let co = 16;
    let x = tensor(shape);
    let w = tensor([co, shape[1], 3, 3]);
    let b = tensor([1, co, 1, 1]);
    let mut store = ParamStore::new();
    let run = |store: &mut ParamStore| {
        let mut tape = Tape::new();
        let xi = tape.leaf(x.clone());
        let wi = tape.leaf(w.clone());
        let bi = tape.leaf(b.clone());
        let y = tape.conv2d(xi, wi, bi, 1, 1);
        let seed = Tensor::filled(tape.value(y).shape(), 1.0);
        tape.backward(y, seed, store);
        tape.value(y)
            .data()
            .iter()
            .fold(0u64, |h, v| h.rotate_left(7) ^ u64::from(v.to_bits()))
    };
    let mut checksum = run(&mut store); // warm up
    let start = Instant::now();
    for _ in 0..reps {
        checksum = run(&mut store);
    }
    let seconds = start.elapsed().as_secs_f64();
    let pixels = shape[0] * shape[2] * shape[3];
    Measurement {
        kernel: "conv2d",
        threads,
        reps,
        seconds,
        // output pixels (fwd+bwd) per second.
        throughput: (pixels * reps) as f64 / seconds,
        checksum,
    }
}

fn json_report(rows: &[Measurement], nodes: usize) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"thread-scaling\",\n");
    out.push_str(&format!("  \"grid_nodes\": {nodes},\n  \"results\": [\n"));
    for (i, m) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"threads\": {}, \"reps\": {}, \
             \"seconds\": {:.6}, \"throughput_per_s\": {:.1}, \"checksum\": \"{:016x}\"}}{}\n",
            m.kernel,
            m.threads,
            m.reps,
            m.seconds,
            m.throughput,
            m.checksum,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    let json_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1).cloned())
    };

    // >= 100k nodes at full scale so every kernel spans many chunks.
    let side = if tiny { 64 } else { 320 };
    let (spmv_reps, conv_reps) = if tiny { (20, 3) } else { (50, 5) };
    let conv_shape = if tiny { [1, 8, 32, 32] } else { [4, 8, 64, 64] };
    let a = grid_laplacian(side);
    println!(
        "thread-scaling: spmv on {} nodes ({} nnz), conv2d on {:?} (16 out channels)",
        a.rows(),
        a.nnz(),
        conv_shape
    );
    println!(
        "{:>8} | {:>7} | {:>9} | {:>14} | {:>8} | {:>16}",
        "kernel", "threads", "seconds", "throughput/s", "speedup", "checksum"
    );
    println!("{}", "-".repeat(78));

    let mut rows = Vec::new();
    let mut base = 0.0;
    for &threads in &[1usize, 2, 4, 8] {
        let m = bench_spmv(&a, threads, spmv_reps);
        if threads == 1 {
            base = m.throughput;
        }
        println!(
            "{:>8} | {:>7} | {:>9.4} | {:>14.1} | {:>7.2}x | {:016x}",
            m.kernel,
            m.threads,
            m.seconds,
            m.throughput,
            m.throughput / base,
            m.checksum
        );
        rows.push(m);
    }
    let spmv_checksums: Vec<u64> = rows.iter().map(|m| m.checksum).collect();
    assert!(
        spmv_checksums.windows(2).all(|w| w[0] == w[1]),
        "spmv results are not deterministic across thread counts"
    );

    for &threads in &[1usize, 2, 4, 8] {
        let m = bench_conv2d(conv_shape, threads, conv_reps);
        if threads == 1 {
            base = m.throughput;
        }
        println!(
            "{:>8} | {:>7} | {:>9.4} | {:>14.1} | {:>7.2}x | {:016x}",
            m.kernel,
            m.threads,
            m.seconds,
            m.throughput,
            m.throughput / base,
            m.checksum
        );
        rows.push(m);
    }
    let conv_checksums: Vec<u64> = rows[4..].iter().map(|m| m.checksum).collect();
    assert!(
        conv_checksums.windows(2).all(|w| w[0] == w[1]),
        "conv2d results are not deterministic across thread counts"
    );

    irf_runtime::set_num_threads(0);
    let report = json_report(&rows, a.rows());
    if let Some(path) = json_path {
        std::fs::write(&path, &report).expect("write JSON report");
        println!("\nwrote {path}");
    } else {
        println!("\n{report}");
    }
}
