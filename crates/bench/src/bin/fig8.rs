//! Regenerates **Fig. 8** — the ablation study: retrain IR-Fusion with
//! one technique removed at a time and report the MAE increase (red
//! bars in the paper) and F1 decrease (blue bars).
//!
//! ```bash
//! cargo run -p irf-bench --bin fig8 --release -- [--tiny]
//! ```

use ir_fusion::experiment::fig8;
use irf_bench::scale_from_args;

fn bar(pct: f64) -> String {
    let n = (pct.clamp(0.0, 60.0) / 2.0).round() as usize;
    "█".repeat(n)
}

fn main() {
    let scale = scale_from_args();
    println!(
        "Fig. 8 reproduction: ablations of IR-Fusion ({} epochs, {}x{} maps)",
        scale.epochs, scale.resolution, scale.resolution
    );
    println!("(paper: every removed technique worsens MAE and/or F1; the numerical");
    println!(" solution and hierarchical features matter most for MAE)");
    println!();
    let bars = fig8(&scale);
    println!(
        "{:<18} | {:>10} | {:>10}",
        "Ablation", "ΔMAE (+%)", "ΔF1 (-%)"
    );
    println!("{}", "-".repeat(44));
    for b in &bars {
        println!(
            "{:<18} | {:>10.1} | {:>10.1}   {}",
            b.label,
            b.mae_increase_pct,
            b.f1_decrease_pct,
            bar(b.mae_increase_pct)
        );
    }
}
