//! Regenerates **Table I** — main results: MAE / F1 / runtime / MIRDE
//! for every model on held-out real-like designs.
//!
//! ```bash
//! cargo run -p irf-bench --bin table1 --release            # paper-shaped scale
//! cargo run -p irf-bench --bin table1 --release -- --tiny  # smoke scale
//! ```

use ir_fusion::experiment::table1;
use irf_bench::{format_row, scale_from_args, table_header};

fn main() {
    let scale = scale_from_args();
    println!(
        "Table I reproduction: {} fake + {} real-like designs, {} held out, {} epochs, {}x{} maps",
        scale.n_fake, scale.n_real, scale.n_test, scale.epochs, scale.resolution, scale.resolution
    );
    println!("(paper reference: IR-Fusion MAE 0.72, F1 0.71, runtime 6.98 s, MIRDE 3.05)");
    println!();
    println!("{}", table_header());
    let rows = table1(&scale);
    for row in &rows {
        println!("{}", format_row(&row.name, &row.report));
    }
    // Shape check mirrored in EXPERIMENTS.md: IR-Fusion should lead on
    // the accuracy metrics while paying runtime for the solver.
    if let (Some(ours), Some(best_baseline)) = (
        rows.iter().find(|r| r.name == "IR-Fusion"),
        rows.iter()
            .filter(|r| r.name != "IR-Fusion")
            .min_by(|a, b| a.report.mae_volts.total_cmp(&b.report.mae_volts)),
    ) {
        println!();
        println!(
            "IR-Fusion vs best baseline ({}): MAE {:+.1}%, F1 {:+.1}%",
            best_baseline.name,
            (ours.report.mae_volts / best_baseline.report.mae_volts - 1.0) * 100.0,
            (ours.report.f1 - best_baseline.report.f1) * 100.0,
        );
    }
}
