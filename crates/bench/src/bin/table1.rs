//! Regenerates **Table I** — main results: MAE / F1 / runtime / MIRDE
//! for every model on held-out real-like designs, plus int8/f16
//! quantized variants of each zoo entry with their accuracy-delta
//! gate verdicts.
//!
//! ```bash
//! cargo run -p irf-bench --bin table1 --release            # paper-shaped scale
//! cargo run -p irf-bench --bin table1 --release -- --tiny  # smoke scale
//! ```

use ir_fusion::experiment::table1_with_options;
use irf_bench::{format_row, scale_from_args, table_header};
use irf_nn::PrecisionMode;

fn main() {
    let scale = scale_from_args();
    println!(
        "Table I reproduction: {} fake + {} real-like designs, {} held out, {} epochs, {}x{} maps",
        scale.n_fake, scale.n_real, scale.n_test, scale.epochs, scale.resolution, scale.resolution
    );
    println!("(paper reference: IR-Fusion MAE 0.72, F1 0.71, runtime 6.98 s, MIRDE 3.05)");
    println!();
    println!("{}", table_header());
    let rows = table1_with_options(&scale, true);
    let mut gate_failures = 0usize;
    for row in &rows {
        if row.precision == PrecisionMode::F32 {
            println!("{}", format_row(&row.name, &row.report));
        } else {
            let gate = row.gate.expect("quantized rows carry a gate");
            if !gate.pass {
                gate_failures += 1;
            }
            println!(
                "{}  [{}: MAE {:+.2}%, F1 {:+.3} -> {}]",
                format_row(&format!("{} ({})", row.name, row.precision), &row.report),
                row.precision,
                gate.mae_delta_pct,
                gate.f1_delta,
                if gate.pass { "PASS" } else { "FAIL" },
            );
        }
    }
    // Shape check mirrored in EXPERIMENTS.md: IR-Fusion should lead on
    // the accuracy metrics while paying runtime for the solver.
    let f32_rows: Vec<_> = rows
        .iter()
        .filter(|r| r.precision == PrecisionMode::F32)
        .collect();
    if let (Some(ours), Some(best_baseline)) = (
        f32_rows.iter().find(|r| r.name == "IR-Fusion"),
        f32_rows
            .iter()
            .filter(|r| r.name != "IR-Fusion")
            .min_by(|a, b| a.report.mae_volts.total_cmp(&b.report.mae_volts)),
    ) {
        println!();
        println!(
            "IR-Fusion vs best baseline ({}): MAE {:+.1}%, F1 {:+.1}%",
            best_baseline.name,
            (ours.report.mae_volts / best_baseline.report.mae_volts - 1.0) * 100.0,
            (ours.report.f1 - best_baseline.report.f1) * 100.0,
        );
    }
    assert_eq!(
        gate_failures, 0,
        "{gate_failures} quantized variants failed the accuracy-delta gate"
    );
    println!("quantization gate: all quantized variants PASS");
}
