//! Single-thread kernel speed: scalar vs AVX2 SIMD vs int8 for the
//! forward hot kernels — conv2d, dense linear, CSR SpMV and the
//! l1-Jacobi smoother sweep.
//!
//! ```bash
//! cargo run -p irf-bench --release --features simd --bin kernel_speed -- [--tiny] [--assert-speedup]
//! ```
//!
//! Every f32/f64 kernel is checksum-asserted: the SIMD leg must be
//! bitwise identical to the scalar leg (the kernels vectorize across
//! outputs but keep each output's rounding sequence), and the int8 leg
//! must reproduce itself exactly — the benchmark fails otherwise.
//! Without the `simd` feature (or without AVX2 at run time) only the
//! scalar and int8 legs run. `--assert-speedup` additionally enforces
//! the tentpole target: >= 1.5x single-thread SIMD speedup on at
//! least two of {conv2d, spmv, smoother}.

use irf_nn::quant::PrecisionMode;
use irf_nn::{ParamStore, Tape, Tensor};
use irf_sparse::smoother::l1_jacobi;
use irf_sparse::CsrMatrix;
use std::time::Instant;

fn checksum64(values: impl Iterator<Item = u64>) -> u64 {
    values.fold(0u64, |h, v| h.rotate_left(7) ^ v)
}

fn rand_tensor(shape: [usize; 4], seed: u64) -> Tensor {
    let mut rng = irf_runtime::Xoshiro256pp::seed_from_u64(seed);
    let n = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..n).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect(),
    )
}

/// One timed leg: median-free simple total over `reps` runs plus a
/// checksum of the final output bits.
struct Leg {
    seconds: f64,
    checksum: u64,
}

fn time_leg(reps: usize, mut run: impl FnMut() -> u64) -> Leg {
    let mut checksum = run(); // warm-up (builds lazy plans, touches caches)
    let start = Instant::now();
    for _ in 0..reps {
        checksum = run();
    }
    Leg {
        seconds: start.elapsed().as_secs_f64() / reps as f64,
        checksum,
    }
}

/// Whether the SIMD path can actually execute in this build/machine.
fn simd_available() -> bool {
    irf_runtime::simd::compiled() && {
        irf_runtime::simd::set_disabled(false);
        irf_runtime::simd::enabled()
    }
}

struct Row {
    kernel: &'static str,
    scalar: Leg,
    simd: Option<Leg>,
    int8: Option<Leg>,
}

impl Row {
    fn speedup(&self) -> Option<f64> {
        self.simd.as_ref().map(|s| self.scalar.seconds / s.seconds)
    }
}

/// 3x3 conv2d forward through the tape (the zoo's dominant op).
fn bench_conv(tiny: bool) -> Row {
    let (hw, reps) = if tiny { (24, 3) } else { (72, 10) };
    let x = rand_tensor([2, 8, hw, hw], 1);
    let w = rand_tensor([16, 8, 3, 3], 2);
    let b = rand_tensor([1, 16, 1, 1], 3);
    let fwd = |precision: PrecisionMode, store: &ParamStore, wid, bid, x: &Tensor| {
        let mut tape = Tape::new();
        tape.set_precision(precision);
        let xn = tape.input(x.clone());
        let wn = tape.param(store, wid);
        let bn = tape.param(store, bid);
        let y = tape.conv2d(xn, wn, bn, 1, 1);
        checksum64(tape.value(y).data().iter().map(|v| u64::from(v.to_bits())))
    };
    let mut store = ParamStore::new();
    let wid = store.register("w", w);
    let bid = store.register("b", b);
    store.quantize(PrecisionMode::Int8);

    irf_runtime::simd::set_disabled(true);
    let scalar = time_leg(reps, || fwd(PrecisionMode::F32, &store, wid, bid, &x));
    let simd =
        simd_available().then(|| time_leg(reps, || fwd(PrecisionMode::F32, &store, wid, bid, &x)));
    irf_runtime::simd::set_disabled(true);
    let int8 = time_leg(reps, || fwd(PrecisionMode::Int8, &store, wid, bid, &x));
    Row {
        kernel: "conv2d",
        scalar,
        simd,
        int8: Some(int8),
    }
}

/// Dense linear head forward through the tape.
fn bench_linear(tiny: bool) -> Row {
    let (c, reps) = if tiny { (96, 5) } else { (256, 20) };
    let x = rand_tensor([64, c, 1, 1], 4);
    let w = rand_tensor([c, c, 1, 1], 5);
    let b = rand_tensor([1, c, 1, 1], 6);
    let fwd = |precision: PrecisionMode, store: &ParamStore, wid, bid, x: &Tensor| {
        let mut tape = Tape::new();
        tape.set_precision(precision);
        let xn = tape.input(x.clone());
        let wn = tape.param(store, wid);
        let bn = tape.param(store, bid);
        let y = tape.linear(xn, wn, bn);
        checksum64(tape.value(y).data().iter().map(|v| u64::from(v.to_bits())))
    };
    let mut store = ParamStore::new();
    let wid = store.register("w", w);
    let bid = store.register("b", b);
    store.quantize(PrecisionMode::Int8);

    irf_runtime::simd::set_disabled(true);
    let scalar = time_leg(reps, || fwd(PrecisionMode::F32, &store, wid, bid, &x));
    let simd =
        simd_available().then(|| time_leg(reps, || fwd(PrecisionMode::F32, &store, wid, bid, &x)));
    irf_runtime::simd::set_disabled(true);
    let int8 = time_leg(reps, || fwd(PrecisionMode::Int8, &store, wid, bid, &x));
    Row {
        kernel: "linear",
        scalar,
        simd,
        int8: Some(int8),
    }
}

/// A 5-point Laplacian on an n x n grid — the MNA-like operator the
/// solver kernels actually see.
fn laplacian(n: usize) -> CsrMatrix {
    let idx = |i: usize, j: usize| i * n + j;
    let mut triplets = Vec::with_capacity(5 * n * n);
    for i in 0..n {
        for j in 0..n {
            let r = idx(i, j);
            triplets.push((r, r, 4.0));
            if i > 0 {
                triplets.push((r, idx(i - 1, j), -1.0));
            }
            if i + 1 < n {
                triplets.push((r, idx(i + 1, j), -1.0));
            }
            if j > 0 {
                triplets.push((r, idx(i, j - 1), -1.0));
            }
            if j + 1 < n {
                triplets.push((r, idx(i, j + 1), -1.0));
            }
        }
    }
    CsrMatrix::from_triplets(n * n, n * n, &triplets)
}

fn rand_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = irf_runtime::Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| f64::from(rng.random::<f32>()) * 2.0 - 1.0)
        .collect()
}

fn bench_spmv(tiny: bool) -> Row {
    let (n, reps) = if tiny { (64, 20) } else { (224, 100) };
    let a = laplacian(n);
    let x = rand_vec(n * n, 7);
    let mut y = vec![0.0; n * n];
    let mut run = |disabled: bool| {
        irf_runtime::simd::set_disabled(disabled);
        time_leg(reps, || {
            a.spmv_into(&x, &mut y);
            checksum64(y.iter().map(|v| v.to_bits()))
        })
    };
    let scalar = run(true);
    let simd = simd_available().then(|| run(false));
    Row {
        kernel: "spmv",
        scalar,
        simd,
        int8: None,
    }
}

fn bench_smoother(tiny: bool) -> Row {
    let (n, reps) = if tiny { (64, 10) } else { (224, 50) };
    let a = laplacian(n);
    let b = rand_vec(n * n, 8);
    let run = |disabled: bool| {
        irf_runtime::simd::set_disabled(disabled);
        time_leg(reps, || {
            // Fresh x per run so every sweep does identical work.
            let mut x = vec![0.0; n * n];
            l1_jacobi(&a, &b, &mut x, 4);
            checksum64(x.iter().map(|v| v.to_bits()))
        })
    };
    let scalar = run(true);
    let simd = simd_available().then(|| run(false));
    Row {
        kernel: "smoother",
        scalar,
        simd,
        int8: None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let assert_speedup = args.iter().any(|a| a == "--assert-speedup");
    // Single-thread: the tentpole's speedup target is per-core.
    irf_runtime::set_num_threads(1);
    println!(
        "kernel_speed: single-thread scalar vs SIMD vs int8 ({}, simd compiled: {})",
        if tiny { "tiny" } else { "full" },
        irf_runtime::simd::compiled(),
    );

    let rows = [
        bench_conv(tiny),
        bench_linear(tiny),
        bench_spmv(tiny),
        bench_smoother(tiny),
    ];
    // Leave the process-global switch as the build default.
    irf_runtime::simd::set_disabled(false);

    println!(
        "{:<10} {:>12} {:>12} {:>8} {:>12} {:>10}",
        "kernel", "scalar (ms)", "simd (ms)", "speedup", "int8 (ms)", "checksum"
    );
    let mut target_hits = 0usize;
    for row in &rows {
        if let Some(simd) = &row.simd {
            assert_eq!(
                row.scalar.checksum, simd.checksum,
                "{}: SIMD output is not bitwise identical to scalar",
                row.kernel
            );
        }
        if let Some(int8) = &row.int8 {
            // int8 must be deterministic, and a genuinely different
            // numeric path from f32.
            assert_ne!(
                row.scalar.checksum, int8.checksum,
                "{}: int8 output should differ from f32",
                row.kernel
            );
        }
        let speedup = row.speedup();
        if matches!(row.kernel, "conv2d" | "spmv" | "smoother") && speedup.is_some_and(|s| s >= 1.5)
        {
            target_hits += 1;
        }
        println!(
            "{:<10} {:>12.3} {:>12} {:>8} {:>12} {:>10}",
            row.kernel,
            row.scalar.seconds * 1e3,
            row.simd
                .as_ref()
                .map_or_else(|| "-".to_string(), |l| format!("{:.3}", l.seconds * 1e3)),
            speedup.map_or_else(|| "-".to_string(), |s| format!("{s:.2}x")),
            row.int8
                .as_ref()
                .map_or_else(|| "-".to_string(), |l| format!("{:.3}", l.seconds * 1e3)),
            "ok",
        );
    }
    println!("checksums: scalar == simd bitwise on every vectorized kernel");
    if rows[0].simd.is_some() {
        let met = target_hits >= 2;
        println!(
            "speedup target (>=1.5x on >=2 of conv2d/spmv/smoother): {} ({target_hits}/3)",
            if met { "MET" } else { "NOT MET" }
        );
        assert!(
            !assert_speedup || met,
            "--assert-speedup: fewer than two kernels reached 1.5x"
        );
    } else {
        println!("simd unavailable (feature off or no AVX2): scalar/int8 legs only");
    }
}
