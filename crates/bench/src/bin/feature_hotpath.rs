//! Thread-scaling benchmark for the two trace-identified hot paths of
//! feature preparation: per-pad shortest-path effective resistance and
//! the chunked SPICE parse, each measured at 1, 2, 4, and 8 threads.
//!
//! ```bash
//! cargo run -p irf-bench --bin feature_hotpath --release -- [--tiny] [--json PATH]
//! ```
//!
//! Emits a human-readable table on stdout and, with `--json PATH`, a
//! machine-readable report (suitable for `BENCH_feature_hotpath.json`).
//! Both kernels are deterministic by construction — the shortest-path
//! fan-out folds per-pad partials in chunk order, the parallel parser
//! merges chunk results serially — so the checksum column must be
//! identical across thread counts and the benchmark fails otherwise.
//! Speedups are only meaningful on multi-core machines; on a single
//! core the checksum equality is still asserted.

use irf_data::synth::{synthesize, SynthSpec};
use irf_features::shortest_path::shortest_path_resistance_per_node;
use irf_pg::PowerGrid;
use std::time::Instant;

struct Measurement {
    kernel: &'static str,
    threads: usize,
    reps: usize,
    seconds: f64,
    throughput: f64, // kernel-specific unit per second
    checksum: u64,
}

fn checksum64(values: impl Iterator<Item = u64>) -> u64 {
    values.fold(0u64, |h, v| h.rotate_left(7) ^ v)
}

/// A many-pad synthetic grid: enough pads that the per-pad Dijkstra
/// fan-out spans several chunks, enough stripes that each pass is
/// non-trivial.
fn bench_spec(tiny: bool) -> SynthSpec {
    SynthSpec {
        m1_stripes: if tiny { 32 } else { 96 },
        m2_stripes: if tiny { 32 } else { 96 },
        m4_stripes: if tiny { 6 } else { 12 },
        pads: if tiny { 9 } else { 24 },
        stripe_jitter: 0.05,
        seed: 0xF0,
        ..SynthSpec::default()
    }
}

fn bench_shortest_path(grid: &PowerGrid, threads: usize, reps: usize) -> Measurement {
    irf_runtime::set_num_threads(threads);
    let mut values = shortest_path_resistance_per_node(grid).expect("grid has pads"); // warm up
    let start = Instant::now();
    for _ in 0..reps {
        values = shortest_path_resistance_per_node(grid).expect("grid has pads");
    }
    let seconds = start.elapsed().as_secs_f64();
    Measurement {
        kernel: "shortest_path",
        threads,
        reps,
        seconds,
        // pad-sourced Dijkstra passes per second.
        throughput: (grid.pads.len() * reps) as f64 / seconds,
        checksum: checksum64(values.iter().map(|v| v.to_bits())),
    }
}

fn bench_spice_parse(text: &str, threads: usize, reps: usize) -> Measurement {
    irf_runtime::set_num_threads(threads);
    // Small chunks so even the tiny netlist exercises the parallel
    // lex+parse fan-out and the serial merge.
    let parse = || irf_spice::parse_chunked(text, 256).expect("netlist parses");
    let mut netlist = parse(); // warm up
    let start = Instant::now();
    for _ in 0..reps {
        netlist = parse();
    }
    let seconds = start.elapsed().as_secs_f64();
    let checksum = checksum64(
        netlist
            .resistors()
            .iter()
            .map(|r| u64::from(r.a.0) ^ (u64::from(r.b.0) << 20) ^ r.ohms.to_bits())
            .chain(
                netlist
                    .current_sources()
                    .iter()
                    .map(|i| u64::from(i.from.0) ^ i.amps.to_bits()),
            ),
    );
    Measurement {
        kernel: "spice_parse",
        threads,
        reps,
        seconds,
        // source bytes parsed per second.
        throughput: (text.len() * reps) as f64 / seconds,
        checksum,
    }
}

fn json_report(rows: &[Measurement], nodes: usize, pads: usize, source_bytes: usize) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"feature-hotpath\",\n");
    out.push_str(&format!(
        "  \"grid_nodes\": {nodes},\n  \"pads\": {pads},\n  \"source_bytes\": {source_bytes},\n  \"results\": [\n"
    ));
    for (i, m) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"threads\": {}, \"reps\": {}, \
             \"seconds\": {:.6}, \"throughput_per_s\": {:.1}, \"checksum\": \"{:016x}\"}}{}\n",
            m.kernel,
            m.threads,
            m.reps,
            m.seconds,
            m.throughput,
            m.checksum,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    let json_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1).cloned())
    };

    let spec = bench_spec(tiny);
    let netlist = synthesize(&spec);
    let text = irf_spice::write(&netlist);
    let grid = PowerGrid::from_netlist(&netlist).expect("valid grid");
    let (sp_reps, parse_reps) = if tiny { (3, 10) } else { (5, 20) };
    println!(
        "feature-hotpath: shortest_path on {} nodes / {} pads, spice_parse on {} KiB",
        grid.nodes.len(),
        grid.pads.len(),
        text.len() / 1024
    );
    println!(
        "{:>14} | {:>7} | {:>9} | {:>14} | {:>8} | {:>16}",
        "kernel", "threads", "seconds", "throughput/s", "speedup", "checksum"
    );
    println!("{}", "-".repeat(84));

    let mut rows = Vec::new();
    let mut base = 0.0;
    for &threads in &[1usize, 2, 4, 8] {
        let m = bench_shortest_path(&grid, threads, sp_reps);
        if threads == 1 {
            base = m.throughput;
        }
        println!(
            "{:>14} | {:>7} | {:>9.4} | {:>14.1} | {:>7.2}x | {:016x}",
            m.kernel,
            m.threads,
            m.seconds,
            m.throughput,
            m.throughput / base,
            m.checksum
        );
        rows.push(m);
    }
    let sp_checksums: Vec<u64> = rows.iter().map(|m| m.checksum).collect();
    assert!(
        sp_checksums.windows(2).all(|w| w[0] == w[1]),
        "shortest-path results are not deterministic across thread counts"
    );

    for &threads in &[1usize, 2, 4, 8] {
        let m = bench_spice_parse(&text, threads, parse_reps);
        if threads == 1 {
            base = m.throughput;
        }
        println!(
            "{:>14} | {:>7} | {:>9.4} | {:>14.1} | {:>7.2}x | {:016x}",
            m.kernel,
            m.threads,
            m.seconds,
            m.throughput,
            m.throughput / base,
            m.checksum
        );
        rows.push(m);
    }
    let parse_checksums: Vec<u64> = rows[4..].iter().map(|m| m.checksum).collect();
    assert!(
        parse_checksums.windows(2).all(|w| w[0] == w[1]),
        "spice-parse results are not deterministic across thread counts"
    );

    irf_runtime::set_num_threads(0);
    let report = json_report(&rows, grid.nodes.len(), grid.pads.len(), text.len());
    if let Some(path) = json_path {
        std::fs::write(&path, &report).expect("write JSON report");
        println!("\nwrote {path}");
    } else {
        println!("\n{report}");
    }
}
