//! Serving-throughput benchmark: batched vs serial forward passes.
//!
//! ```bash
//! # In-process measurement (feeds EXPERIMENTS.md):
//! cargo run -p irf-bench --bin serve_load --release -- [--designs N]
//!     [--reps R] [--json PATH]
//!
//! # HTTP load generation against a running irf-serve:
//! cargo run -p irf-bench --bin serve_load --release -- --addr HOST:PORT
//!     [--clients C] [--requests R]
//! ```
//!
//! The in-process mode trains a tiny model, prepares a pool of design
//! stacks, and times `predict` loops against single `predict_batch`
//! calls at batch sizes 1/2/4/8. Batching must not change results
//! (bitwise — verified here), so any speedup is free throughput for
//! the server's micro-batcher.

use ir_fusion::{train, FusionConfig, IrFusionPipeline, PreparedStack, TrainedModel};
use irf_data::Dataset;
use irf_models::ModelKind;
use std::io::{Read, Write as _};
use std::net::TcpStream;
use std::time::Instant;

struct Args {
    addr: Option<String>,
    designs: usize,
    reps: usize,
    clients: usize,
    requests: usize,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        designs: 8,
        reps: 20,
        clients: 4,
        requests: 32,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().expect("flag needs a value");
        match flag.as_str() {
            "--addr" => args.addr = Some(value()),
            "--designs" => args.designs = value().parse().expect("number"),
            "--reps" => args.reps = value().parse().expect("number"),
            "--clients" => args.clients = value().parse().expect("number"),
            "--requests" => args.requests = value().parse().expect("number"),
            "--json" => args.json = Some(value()),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

struct Row {
    batch: usize,
    serial_per_sec: f64,
    batched_per_sec: f64,
}

fn bench_in_process(args: &Args) -> Vec<Row> {
    let config = FusionConfig::tiny();
    println!(
        "training tiny model + preparing {} designs...",
        args.designs
    );
    let dataset = Dataset::generate(2, 2, 1, 7);
    let trained: TrainedModel = train(ModelKind::IrFusion, &dataset, &config);
    let pipeline = IrFusionPipeline::new(config);
    let stacks: Vec<PreparedStack> = (0..args.designs)
        .map(|i| {
            pipeline
                .prepare_stack(&irf_data::Design::fake(100 + i as u64).grid)
                .expect("fake designs have pads")
        })
        .collect();

    let mut rows = Vec::new();
    println!(
        "{:<6} | {:>14} | {:>15} | {:>7}",
        "batch", "serial sm/s", "batched sm/s", "speedup"
    );
    println!("{}", "-".repeat(52));
    for batch in [1usize, 2, 4, 8] {
        let refs: Vec<&PreparedStack> = (0..batch).map(|i| &stacks[i % stacks.len()]).collect();

        // Serial: one forward per sample.
        let start = Instant::now();
        for _ in 0..args.reps {
            for stack in &refs {
                std::hint::black_box(pipeline.predict(&trained, stack));
            }
        }
        let serial = start.elapsed().as_secs_f64();

        // Batched: one forward per batch; results are bitwise equal.
        let start = Instant::now();
        for _ in 0..args.reps {
            std::hint::black_box(pipeline.predict_batch(&trained, &refs));
        }
        let batched = start.elapsed().as_secs_f64();

        let serial_maps: Vec<_> = refs.iter().map(|s| pipeline.predict(&trained, s)).collect();
        let batched_maps = pipeline.predict_batch(&trained, &refs);
        assert_eq!(
            serial_maps, batched_maps,
            "batching must not change results"
        );

        let n = (batch * args.reps) as f64;
        let row = Row {
            batch,
            serial_per_sec: n / serial,
            batched_per_sec: n / batched,
        };
        println!(
            "{:<6} | {:>14.1} | {:>15.1} | {:>6.2}x",
            row.batch,
            row.serial_per_sec,
            row.batched_per_sec,
            row.batched_per_sec / row.serial_per_sec
        );
        rows.push(row);
    }
    rows
}

fn write_json(path: &str, rows: &[Row]) {
    let mut out = String::from("{\"benchmark\":\"serve_load\",\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"batch\":{},\"serial_samples_per_sec\":{:.3},\"batched_samples_per_sec\":{:.3}}}",
            r.batch, r.serial_per_sec, r.batched_per_sec
        ));
    }
    out.push_str("]}");
    std::fs::write(path, out).expect("write json report");
    println!("wrote {path}");
}

/// Fires `requests` POST /predict calls from `clients` threads at a
/// running server and reports wall-clock throughput.
fn bench_http(addr: &str, clients: usize, requests: usize) {
    let addr = addr.to_string();
    let start = Instant::now();
    let handles: Vec<_> = (0..clients.max(1))
        .map(|c| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut ok = 0usize;
                let mut rejected = 0usize;
                for i in 0..requests {
                    // A small design pool so the feature cache gets hits.
                    let seed = (c * requests + i) % 4;
                    let body = format!("{{\"spec\":{{\"class\":\"fake\",\"seed\":{seed}}}}}");
                    match predict_once(&addr, &body) {
                        Some(200) => ok += 1,
                        Some(429) => rejected += 1,
                        _ => {}
                    }
                }
                (ok, rejected)
            })
        })
        .collect();
    let mut ok = 0;
    let mut rejected = 0;
    for h in handles {
        let (o, r) = h.join().expect("client thread");
        ok += o;
        rejected += r;
    }
    let seconds = start.elapsed().as_secs_f64();
    println!(
        "{ok} ok, {rejected} rejected (429) in {seconds:.2}s -> {:.1} req/s",
        ok as f64 / seconds
    );
}

fn predict_once(addr: &str, body: &str) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).ok()?;
    let head = format!(
        "POST /predict HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).ok()?;
    stream.write_all(body.as_bytes()).ok()?;
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    response.split(' ').nth(1)?.parse().ok()
}

fn main() {
    let args = parse_args();
    if let Some(addr) = &args.addr {
        println!(
            "load: {} clients x {} requests -> {addr}",
            args.clients, args.requests
        );
        bench_http(addr, args.clients, args.requests);
        return;
    }
    let rows = bench_in_process(&args);
    if let Some(path) = &args.json {
        write_json(path, &rows);
    }
}
