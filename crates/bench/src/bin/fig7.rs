//! Regenerates **Fig. 7** — the trade-off study: IR-Fusion vs the raw
//! PowerRush-style numerical solution at solver budgets `k = 1..=10`.
//!
//! ```bash
//! cargo run -p irf-bench --bin fig7 --release -- [--tiny]
//! ```

use ir_fusion::experiment::fig7;
use irf_bench::scale_from_args;

fn main() {
    let scale = scale_from_args();
    let k_max = if std::env::args().any(|a| a == "--tiny") {
        4
    } else {
        10
    };
    println!(
        "Fig. 7 reproduction: solver budget sweep k = 1..={k_max} on {} held-out designs",
        scale.n_test
    );
    println!("(paper headline: IR-Fusion at k=2 matches PowerRush at k=10 on MAE,");
    println!(" and reaches an F1 the numerical solver never attains)");
    println!();
    println!(
        "{:>3} | {:>14} | {:>8} || {:>14} | {:>8}",
        "k", "PowerRush MAE", "PR F1", "IR-Fusion MAE", "IRF F1"
    );
    println!("{}", "-".repeat(62));
    let points = fig7(&scale, k_max);
    for p in &points {
        println!(
            "{:>3} | {:>14.4e} | {:>8.3} || {:>14.4e} | {:>8.3}",
            p.iterations, p.numerical.mae_volts, p.numerical.f1, p.fused.mae_volts, p.fused.f1
        );
    }
    // Crossover analysis: the smallest k at which the fused MAE beats
    // the numerical MAE at k_max.
    if let Some(last) = points.last() {
        let target = last.numerical.mae_volts;
        if let Some(cross) = points.iter().find(|p| p.fused.mae_volts <= target) {
            println!();
            println!(
                "IR-Fusion reaches PowerRush's k={k_max} MAE ({target:.3e} V) at k={}",
                cross.iterations
            );
        }
        let best_num_f1 = points.iter().map(|p| p.numerical.f1).fold(0.0, f64::max);
        let best_fused_f1 = points.iter().map(|p| p.fused.f1).fold(0.0, f64::max);
        println!("best F1 — PowerRush {best_num_f1:.3} vs IR-Fusion {best_fused_f1:.3}");
    }
}
