//! Topology what-if and candidate-sweep benchmark: cold stage-graph
//! analysis versus warm current-delta and warm *topology*-delta
//! re-analysis, plus a ranked sweep over candidate PDN edit plans —
//! the serving story behind `POST /sweep`.
//!
//! ```bash
//! cargo run -p irf-bench --bin sweep --release -- [--tiny] [--json PATH]
//! ```
//!
//! Four modes are measured:
//!
//! - `cold`: what a cold `POST /predict` pays — SPICE netlist parse,
//!   grid construction, then the full pipeline walk with the store
//!   bypassed (MNA assembly, AMG setup, rough solve, features), every
//!   rep;
//! - `warm_current`: one cell current changes per rep — the parsed
//!   design, assembled system, AMG hierarchy, geometry and resistance
//!   maps are all reused;
//! - `warm_topology`: one strap resistance scale changes per rep —
//!   the parsed design and geometry maps are reused outright (no
//!   netlist re-parse, no structural re-rasterization), and the MNA
//!   system / AMG hierarchy are *re-stamped / rebuilt* from the warm
//!   base artifacts instead of assembled from scratch;
//! - `sweep`: eight candidate edit plans prepared against one warm
//!   base and ranked by worst-drop delta, per-candidate.
//!
//! Correctness is asserted, not assumed: every warm or swept result
//! must be bitwise identical to a cold bypass analysis of the same
//! edited grid, and the benchmark fails otherwise. The JSON report is
//! written to `target/bench-out/sweep.json` unless `--json PATH` says
//! otherwise.

use ir_fusion::{CachePolicy, FusionConfig, IrFusionPipeline, StageStore, TopologyDelta};
use irf_data::synth::{synthesize, SynthSpec};
use irf_pg::PowerGrid;
use std::sync::Arc;
use std::time::Instant;

struct Measurement {
    mode: &'static str,
    reps: usize,
    seconds: f64,
    per_analysis: f64,
    checksum: u64,
}

fn checksum64(values: impl Iterator<Item = u64>) -> u64 {
    values.fold(0u64, |h, v| h.rotate_left(7) ^ v)
}

fn stack_checksum(stack: &ir_fusion::PreparedStack) -> u64 {
    let (_, _, _, features) = stack.features.to_nchw();
    checksum64(
        stack
            .rough
            .data()
            .iter()
            .map(|v| u64::from(v.to_bits()))
            .chain(features.iter().map(|v| u64::from(v.to_bits()))),
    )
}

/// A grid big enough that MNA assembly and AMG setup dominate the cold
/// walk — the cost the incremental topology path is supposed to cut.
fn bench_spec(tiny: bool) -> SynthSpec {
    SynthSpec {
        m1_stripes: if tiny { 32 } else { 96 },
        m2_stripes: if tiny { 32 } else { 96 },
        m4_stripes: if tiny { 6 } else { 12 },
        pads: if tiny { 9 } else { 24 },
        stripe_jitter: 0.05,
        seed: 0xF1,
        ..SynthSpec::default()
    }
}

/// Strap layers and via pairs present in the grid, in first-seen
/// order — so candidate plans reference topology that actually exists.
fn discover(grid: &PowerGrid) -> (Vec<u32>, Vec<(u32, u32)>) {
    let mut straps = Vec::new();
    let mut vias = Vec::new();
    for s in &grid.segments {
        let (a, b) = (grid.nodes[s.a].layer, grid.nodes[s.b].layer);
        if a == b {
            if !straps.contains(&a) {
                straps.push(a);
            }
        } else {
            let pair = (a.min(b), a.max(b));
            if !vias.contains(&pair) {
                vias.push(pair);
            }
        }
    }
    (straps, vias)
}

fn json_report(
    rows: &[Measurement],
    nodes: usize,
    current_speedup: f64,
    topology_speedup: f64,
    sweep_candidates: usize,
    cache: (u64, u64),
) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"sweep-topology-whatif\",\n");
    out.push_str(&format!(
        "  \"grid_nodes\": {nodes},\n  \"warm_current_speedup\": {current_speedup:.2},\n  \
         \"warm_topology_speedup\": {topology_speedup:.2},\n  \
         \"sweep_candidates\": {sweep_candidates},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"results\": [\n",
        cache.0, cache.1
    ));
    for (i, m) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"reps\": {}, \"seconds\": {:.6}, \
             \"per_analysis_s\": {:.6}, \"checksum\": \"{:016x}\"}}{}\n",
            m.mode,
            m.reps,
            m.seconds,
            m.per_analysis,
            m.checksum,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[allow(clippy::too_many_lines)]
fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    let json_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1).cloned())
    };

    let spec = bench_spec(tiny);
    // Round-trip through SPICE text so the cold mode can pay the same
    // parse a cold `/predict` request pays, on the exact same design.
    let source = irf_spice::write(&synthesize(&spec));
    let grid = Arc::new(
        PowerGrid::from_netlist(&irf_spice::parse(&source).expect("round-trip parses"))
            .expect("valid grid"),
    );
    let (straps, vias) = discover(&grid);
    assert!(
        straps.len() >= 2 && !vias.is_empty(),
        "bench grid must offer strap layers and via pairs"
    );
    let reps = if tiny { 3 } else { 5 };
    let config = FusionConfig::tiny();
    // Roomy enough that base + every candidate stays warm per stage.
    let store = Arc::new(StageStore::new(64));
    let pipeline = IrFusionPipeline::new(config).with_cache(Arc::clone(&store));

    // Per-rep edits differ so each warm rep re-runs its recompute set
    // instead of hitting the stack artifact.
    let current_delta = |rep: usize| vec![(1usize, 1e-5 * (rep + 1) as f64)];
    let strap_delta = |rep: usize| {
        vec![TopologyDelta::Strap {
            layer: straps[0],
            scale: 0.5 + 0.05 * rep as f64,
        }]
    };

    println!(
        "sweep: {} nodes, {} reps per mode, strap layers {straps:?}, via pairs {vias:?}",
        grid.nodes.len(),
        reps
    );

    // Cold: parse the netlist, build the grid, and bypass the store —
    // every rep pays the full walk a cold `/predict` request pays.
    let cold_once = || {
        let parsed = Arc::new(
            PowerGrid::from_netlist(&irf_spice::parse(&source).expect("round-trip parses"))
                .expect("valid grid"),
        );
        pipeline
            .session(parsed)
            .cache_policy(CachePolicy::Bypass)
            .prepare()
            .expect("grid has pads")
    };
    let mut cold_stack = cold_once(); // warm up allocator
    let start = Instant::now();
    for _ in 0..reps {
        cold_stack = cold_once();
    }
    let cold_seconds = start.elapsed().as_secs_f64();
    let cold = Measurement {
        mode: "cold",
        reps,
        seconds: cold_seconds,
        per_analysis: cold_seconds / reps as f64,
        checksum: stack_checksum(&cold_stack),
    };

    // Prime the store with the base design.
    pipeline
        .session(Arc::clone(&grid))
        .prepare()
        .expect("grid has pads");

    // Warm current edits: topology-keyed artifacts all reused.
    let mut warm_stack = None;
    let start = Instant::now();
    for rep in 0..reps {
        warm_stack = Some(
            pipeline
                .session(Arc::clone(&grid))
                .with_current_deltas(&current_delta(rep))
                .prepare()
                .expect("grid has pads"),
        );
    }
    let warm_current_seconds = start.elapsed().as_secs_f64();
    let warm_current = Measurement {
        mode: "warm_current",
        reps,
        seconds: warm_current_seconds,
        per_analysis: warm_current_seconds / reps as f64,
        checksum: stack_checksum(&warm_stack.expect("at least one rep")),
    };

    // Warm topology edits: geometry maps reused, MNA re-stamped and
    // AMG rebuilt from the warm base artifacts.
    let mut topo_stack = None;
    let start = Instant::now();
    for rep in 0..reps {
        topo_stack = Some(
            pipeline
                .session(Arc::clone(&grid))
                .with_topology_deltas(&strap_delta(rep))
                .expect("valid strap delta")
                .prepare()
                .expect("grid has pads"),
        );
    }
    let warm_topology_seconds = start.elapsed().as_secs_f64();
    let warm_topology = Measurement {
        mode: "warm_topology",
        reps,
        seconds: warm_topology_seconds,
        per_analysis: warm_topology_seconds / reps as f64,
        checksum: stack_checksum(&topo_stack.expect("at least one rep")),
    };

    // The candidate sweep: eight plans against the same warm base,
    // ranked by worst-drop delta — the `POST /sweep` hot loop.
    type Candidate = (&'static str, Vec<(usize, f64)>, Vec<TopologyDelta>);
    let candidates: Vec<Candidate> = vec![
        (
            "thicken-bottom",
            vec![],
            vec![TopologyDelta::Strap {
                layer: straps[0],
                scale: 0.5,
            }],
        ),
        (
            "thin-bottom",
            vec![],
            vec![TopologyDelta::Strap {
                layer: straps[0],
                scale: 1.5,
            }],
        ),
        (
            "thicken-mid",
            vec![],
            vec![TopologyDelta::Strap {
                layer: straps[1],
                scale: 0.7,
            }],
        ),
        (
            "better-vias",
            vec![],
            vec![TopologyDelta::Via {
                lower: vias[0].0,
                upper: vias[0].1,
                scale: 0.6,
            }],
        ),
        (
            "worse-vias",
            vec![],
            vec![TopologyDelta::Via {
                lower: vias[0].0,
                upper: vias[0].1,
                scale: 2.0,
            }],
        ),
        ("more-load", vec![(1, 2e-3)], vec![]),
        ("less-load", vec![(1, -2e-4)], vec![]),
        (
            "combo",
            vec![(2, 5e-4)],
            vec![
                TopologyDelta::Strap {
                    layer: straps[0],
                    scale: 0.8,
                },
                TopologyDelta::Segment {
                    segment: 0,
                    ohms: grid.segments[0].ohms * 0.9,
                },
            ],
        ),
    ];
    let base_stack = pipeline
        .session(Arc::clone(&grid))
        .prepare()
        .expect("grid has pads");
    let base_max = f64::from(base_stack.rough.max());
    let start = Instant::now();
    let swept: Vec<_> = candidates
        .iter()
        .map(|(label, currents, topology)| {
            let before = (store.hits(), store.misses());
            let mut session = pipeline.session(Arc::clone(&grid));
            if !currents.is_empty() {
                session = session.with_current_deltas(currents);
            }
            if !topology.is_empty() {
                session = session
                    .with_topology_deltas(topology)
                    .expect("valid candidate plan");
            }
            let stack = session.prepare().expect("grid has pads");
            let after = (store.hits(), store.misses());
            (
                *label,
                session,
                stack,
                after.0 - before.0,
                after.1 - before.1,
            )
        })
        .collect();
    let sweep_seconds = start.elapsed().as_secs_f64();
    let sweep = Measurement {
        mode: "sweep",
        reps: swept.len(),
        seconds: sweep_seconds,
        per_analysis: sweep_seconds / swept.len() as f64,
        checksum: checksum64(swept.iter().map(|(_, _, stack, ..)| stack_checksum(stack))),
    };

    // Bitwise correctness gates: every incremental result must equal a
    // cold bypass analysis of the same edited grid.
    let bypass = |session: &ir_fusion::AnalysisSession<'_>| {
        session
            .clone()
            .cache_policy(CachePolicy::Bypass)
            .prepare()
            .expect("grid has pads")
    };
    let reference = pipeline
        .session(Arc::clone(&grid))
        .with_current_deltas(&current_delta(reps - 1))
        .cache_policy(CachePolicy::Bypass)
        .prepare()
        .expect("grid has pads");
    assert_eq!(
        stack_checksum(&reference),
        warm_current.checksum,
        "warm current-delta analysis is not bitwise identical to cold"
    );
    let reference = pipeline
        .session(Arc::clone(&grid))
        .with_topology_deltas(&strap_delta(reps - 1))
        .expect("valid strap delta")
        .cache_policy(CachePolicy::Bypass)
        .prepare()
        .expect("grid has pads");
    assert_eq!(
        stack_checksum(&reference),
        warm_topology.checksum,
        "warm topology-delta analysis is not bitwise identical to cold"
    );
    for (label, session, stack, ..) in &swept {
        assert_eq!(
            stack_checksum(&bypass(session)),
            stack_checksum(stack),
            "sweep candidate {label} is not bitwise identical to cold"
        );
    }

    // Ranked sweep table, best first (worst-drop delta, then order).
    let mut ranking: Vec<_> = swept
        .iter()
        .enumerate()
        .map(|(i, (label, _, stack, hits, misses))| {
            let delta = f64::from(stack.rough.max()) - base_max;
            (i, *label, delta, *hits, *misses)
        })
        .collect();
    ranking.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)));
    println!("\nranked candidates (worst-drop delta vs base, volts):");
    for (rank, (_, label, delta, hits, misses)) in ranking.iter().enumerate() {
        println!(
            "  #{:<2} {label:<16} {delta:+.6e}  (cache {hits} hits / {misses} misses)",
            rank + 1
        );
    }

    let current_speedup = cold.per_analysis / warm_current.per_analysis;
    let topology_speedup = cold.per_analysis / warm_topology.per_analysis;
    assert!(
        topology_speedup > 1.0,
        "topology-delta re-analysis must beat cold ({topology_speedup:.2}x)"
    );
    println!(
        "\n{:>14} | {:>5} | {:>9} | {:>12} | {:>8} | {:>16}",
        "mode", "reps", "seconds", "per-analysis", "speedup", "checksum"
    );
    println!("{}", "-".repeat(80));
    let rows = vec![cold, warm_current, warm_topology, sweep];
    for m in &rows {
        println!(
            "{:>14} | {:>5} | {:>9.4} | {:>12.6} | {:>7.2}x | {:016x}",
            m.mode,
            m.reps,
            m.seconds,
            m.per_analysis,
            rows[0].per_analysis / m.per_analysis,
            m.checksum
        );
    }
    println!(
        "\nwarm topology-delta re-analysis is {topology_speedup:.2}x faster than cold \
         (parsed design + geometry maps reused; MNA re-stamped, AMG rebuilt; \
         {} stage hits, {} misses)",
        store.hits(),
        store.misses()
    );

    let report = json_report(
        &rows,
        grid.nodes.len(),
        current_speedup,
        topology_speedup,
        swept.len(),
        (store.hits(), store.misses()),
    );
    let path = json_path
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| irf_bench::bench_out("sweep.json"));
    std::fs::write(&path, &report).expect("write JSON report");
    println!("wrote {}", path.display());
}
