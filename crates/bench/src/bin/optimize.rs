//! Closed-loop optimizer benchmark: drive the worst-case IR drop of
//! the bench grid to a target under a metal budget, and prove the loop
//! beats the brute-force alternative — the serving story behind
//! `POST /optimize`.
//!
//! ```bash
//! cargo run -p irf-bench --bin optimize --release -- [--tiny] [--json PATH]
//! ```
//!
//! Three claims are asserted, not printed-and-hoped:
//!
//! - **the loop closes**: the optimizer meets a worst-drop target
//!   placed between the base design and the "widen everything"
//!   ceiling, within its evaluation budget;
//! - **it spends less metal than brute force**: the winning plan costs
//!   strictly less than widening every strap layer and upsizing every
//!   via pair at once;
//! - **it is deterministic**: the full trajectory checksum is
//!   identical at 1/2/4/8 solver threads on fresh stores, and across
//!   two runs against the same warm store.
//!
//! A fourth measurement records what the warm-started rough solve
//! (the optimizer's inner-loop speedup) buys on a small conductance
//! edit: seeded-PCG iterations and solve seconds versus cold.

use ir_fusion::{FusionConfig, IrFusionPipeline, StageStore, TopologyDelta};
use irf_data::synth::{synthesize, SynthSpec};
use irf_opt::{CostModel, OptimizationReport, Optimizer, OptimizerConfig};
use irf_pg::PowerGrid;
use std::sync::Arc;
use std::time::Instant;

/// Same grid the sweep benchmark uses: big enough that assembly and
/// AMG setup dominate a cold walk.
fn bench_spec(tiny: bool) -> SynthSpec {
    SynthSpec {
        m1_stripes: if tiny { 32 } else { 96 },
        m2_stripes: if tiny { 32 } else { 96 },
        m4_stripes: if tiny { 6 } else { 12 },
        pads: if tiny { 9 } else { 24 },
        stripe_jitter: 0.05,
        seed: 0xF1,
        ..SynthSpec::default()
    }
}

/// Strap layers and via pairs present in the grid, in first-seen order.
fn discover(grid: &PowerGrid) -> (Vec<u32>, Vec<(u32, u32)>) {
    let mut straps = Vec::new();
    let mut vias = Vec::new();
    for s in &grid.segments {
        let (a, b) = (grid.nodes[s.a].layer, grid.nodes[s.b].layer);
        if a == b {
            if !straps.contains(&a) {
                straps.push(a);
            }
        } else {
            let pair = (a.min(b), a.max(b));
            if !vias.contains(&pair) {
                vias.push(pair);
            }
        }
    }
    (straps, vias)
}

struct Run {
    threads: usize,
    seconds: f64,
    checksum: u64,
}

fn run_optimizer(
    grid: &Arc<PowerGrid>,
    config: &OptimizerConfig,
    cost_model: &CostModel,
    store: Arc<StageStore>,
) -> (OptimizationReport, f64) {
    let pipeline = IrFusionPipeline::new(FusionConfig::tiny()).with_cache(store);
    let optimizer = Optimizer::new(&pipeline, config.clone()).with_cost_model(cost_model.clone());
    let start = Instant::now();
    let report = optimizer
        .run(Arc::clone(grid))
        .expect("optimizer run succeeds");
    (report, start.elapsed().as_secs_f64())
}

#[allow(clippy::too_many_lines)]
fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    let json_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1).cloned())
    };

    let grid = Arc::new(
        PowerGrid::from_netlist(&synthesize(&bench_spec(tiny))).expect("valid bench grid"),
    );
    let (straps, vias) = discover(&grid);
    assert!(
        straps.len() >= 2 && !vias.is_empty(),
        "bench grid must offer strap layers and via pairs"
    );
    let cost_model = CostModel::default();

    irf_runtime::set_num_threads(0);
    let pipeline =
        IrFusionPipeline::new(FusionConfig::tiny()).with_cache(Arc::new(StageStore::new(64)));
    let base_max = f64::from(
        pipeline
            .session(Arc::clone(&grid))
            .prepare()
            .expect("grid has pads")
            .rough
            .max(),
    );

    // The brute-force alternative: widen every strap layer and upsize
    // every via pair at once. Its drop is (close to) the best any edit
    // plan built from the same knobs can reach; its metal cost is the
    // bar the optimizer has to come in under.
    let widen_everything: Vec<TopologyDelta> = straps
        .iter()
        .map(|&layer| TopologyDelta::Strap { layer, scale: 0.5 })
        .chain(vias.iter().map(|&(lower, upper)| TopologyDelta::Via {
            lower,
            upper,
            scale: 0.5,
        }))
        .collect();
    let widen_cost = cost_model.plan_cost(&grid, &widen_everything);
    let widen_max = f64::from(
        pipeline
            .session(Arc::clone(&grid))
            .with_topology_deltas(&widen_everything)
            .expect("widen-everything plan applies")
            .prepare()
            .expect("grid has pads")
            .rough
            .max(),
    );
    assert!(
        widen_max < base_max,
        "widening everything must improve the drop ({widen_max} vs {base_max})"
    );

    // Target: 65% of the way from the base drop to the widen-everything
    // ceiling — ambitious enough to need several iterations, slack
    // enough that a partial plan (= less metal) can meet it.
    let target = widen_max + 0.35 * (base_max - widen_max);
    let config = OptimizerConfig {
        target_max_drop: target,
        metal_budget: widen_cost, // never allowed to out-spend brute force
        beam_width: 2,
        max_iterations: 8,
        max_evaluations: 64,
        candidates_per_state: 6,
        warm_start: true,
    };
    println!(
        "optimize: {} nodes, base {base_max:.6} V, widen-everything {widen_max:.6} V \
         (cost {widen_cost:.3}), target {target:.6} V",
        grid.nodes.len()
    );

    // Determinism gate 1: fresh store per thread count, identical
    // trajectory checksums at 1/2/4/8 threads.
    let mut runs: Vec<Run> = Vec::new();
    let mut report: Option<OptimizationReport> = None;
    for threads in [1usize, 2, 4, 8] {
        irf_runtime::set_num_threads(threads);
        let (r, seconds) =
            run_optimizer(&grid, &config, &cost_model, Arc::new(StageStore::new(64)));
        runs.push(Run {
            threads,
            seconds,
            checksum: r.checksum(),
        });
        report = Some(r);
    }
    let reference = runs[0].checksum;
    for run in &runs {
        assert_eq!(
            run.checksum, reference,
            "trajectory differs at {} threads",
            run.threads
        );
    }

    // Determinism gate 2: two runs against the same warm store — the
    // second is all cache hits and must reproduce the checksum.
    irf_runtime::set_num_threads(0);
    let shared = Arc::new(StageStore::new(256));
    let (first, _) = run_optimizer(&grid, &config, &cost_model, Arc::clone(&shared));
    let (second, warm_seconds) = run_optimizer(&grid, &config, &cost_model, shared);
    assert_eq!(
        first.checksum(),
        second.checksum(),
        "warm rerun must reproduce the trajectory bitwise"
    );

    // Closed-loop gates: target met, within budget, strictly cheaper
    // than brute force.
    let report = report.expect("at least one run");
    assert!(
        report.target_met,
        "optimizer failed to meet the target: stopped {} at {:.6} V",
        report.stop_reason.label(),
        report.winner.max_drop
    );
    assert!(
        report.evaluations <= config.max_evaluations,
        "loop overspent its evaluation budget"
    );
    assert!(
        report.winner.metal_cost < widen_cost,
        "winner must be strictly cheaper than widen-everything ({} vs {widen_cost})",
        report.winner.metal_cost
    );

    println!("\ntrajectory (best state per iteration):");
    for r in &report.trajectory {
        println!(
            "  #{:<2} evaluated {:>2}  max_drop {:.6} V  cost {:>8.3}  [{}]",
            r.iteration,
            r.evaluated,
            r.best_max_drop,
            r.best_cost,
            r.best_labels.join(" + ")
        );
    }
    println!(
        "\nwinner: {:.6} V (target {target:.6}) at cost {:.3} = {:.1}% of widen-everything, \
         plan [{}], stopped: {}, {} evaluations",
        report.winner.max_drop,
        report.winner.metal_cost,
        100.0 * report.winner.metal_cost / widen_cost,
        report.winner.labels.join(" + "),
        report.stop_reason.label(),
        report.evaluations
    );
    println!("\n{:>8} | {:>9} | {:>16}", "threads", "seconds", "checksum");
    println!("{}", "-".repeat(41));
    for run in &runs {
        println!(
            "{:>8} | {:>9.4} | {:016x}",
            run.threads, run.seconds, run.checksum
        );
    }
    println!("warm rerun (same store): {warm_seconds:.4}s, checksum reproduced");

    // Warm-start measurement: what seeding PCG from the base rough
    // solution buys on a small conductance edit — the optimizer's
    // inner-loop economics.
    let store = Arc::new(StageStore::new(64));
    let pipeline = IrFusionPipeline::new(FusionConfig::tiny()).with_cache(Arc::clone(&store));
    let base_session = pipeline.session(Arc::clone(&grid));
    base_session.prepare().expect("grid has pads");
    let seed = base_session.rough_solution().expect("base rough");
    let edit = vec![TopologyDelta::Strap {
        layer: straps[0],
        scale: 0.98,
    }];
    let cold_session = pipeline
        .session(Arc::clone(&grid))
        .with_topology_deltas(&edit)
        .expect("valid edit");
    let t0 = Instant::now();
    let cold_rough = cold_session.rough_solution().expect("cold rough");
    let cold_seconds = t0.elapsed().as_secs_f64();
    let warm_session = pipeline
        .session(Arc::clone(&grid))
        .with_topology_deltas(&edit)
        .expect("valid edit")
        .with_rough_warm_start(seed);
    let t0 = Instant::now();
    let warm_rough = warm_session.rough_solution().expect("warm rough");
    let warm_solve_seconds = t0.elapsed().as_secs_f64();
    assert!(
        warm_rough.report.iterations <= cold_rough.report.iterations,
        "warm-started solve must not iterate more than cold ({} vs {})",
        warm_rough.report.iterations,
        cold_rough.report.iterations
    );
    println!(
        "\nwarm-started rough solve on a 2% strap edit: {} PCG iterations / {:.4}s \
         vs cold {} / {:.4}s",
        warm_rough.report.iterations,
        warm_solve_seconds,
        cold_rough.report.iterations,
        cold_seconds
    );

    let mut out = String::from("{\n  \"benchmark\": \"optimize-closed-loop\",\n");
    out.push_str(&format!(
        "  \"grid_nodes\": {},\n  \"base_max_drop\": {base_max:.9},\n  \
         \"widen_max_drop\": {widen_max:.9},\n  \"widen_cost\": {widen_cost:.6},\n  \
         \"target_max_drop\": {target:.9},\n  \"target_met\": {},\n  \
         \"stop_reason\": \"{}\",\n  \"winner_max_drop\": {:.9},\n  \
         \"winner_cost\": {:.6},\n  \"winner_cost_fraction\": {:.4},\n  \
         \"iterations\": {},\n  \"evaluations\": {},\n  \
         \"warm_rerun_checksum_match\": true,\n  \
         \"warm_pcg_iterations\": {},\n  \"cold_pcg_iterations\": {},\n  \
         \"warm_solve_seconds\": {warm_solve_seconds:.6},\n  \
         \"cold_solve_seconds\": {cold_seconds:.6},\n  \"runs\": [\n",
        grid.nodes.len(),
        report.target_met,
        report.stop_reason.label(),
        report.winner.max_drop,
        report.winner.metal_cost,
        report.winner.metal_cost / widen_cost,
        report.trajectory.len(),
        report.evaluations,
        warm_rough.report.iterations,
        cold_rough.report.iterations,
    ));
    for (i, run) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \"seconds\": {:.6}, \"checksum\": \"{:016x}\"}}{}\n",
            run.threads,
            run.seconds,
            run.checksum,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    let path = json_path
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| irf_bench::bench_out("optimize.json"));
    std::fs::write(&path, &out).expect("write JSON report");
    println!("wrote {}", path.display());
}
