//! Incremental what-if benchmark: cold stage-graph analysis versus a
//! warm current-delta re-analysis that reuses the assembled MNA system,
//! the AMG solver setup and the structural feature maps from the
//! [`ir_fusion::StageStore`].
//!
//! ```bash
//! cargo run -p irf-bench --bin whatif --release -- [--tiny] [--json PATH]
//! ```
//!
//! Three modes are measured:
//!
//! - `cold`: full pipeline walk with the store bypassed — parse-model,
//!   MNA assembly, AMG setup, rough solve, features, every rep;
//! - `warm_delta`: one cell current changes per rep, so only the rough
//!   solve and the stack rebuild run (a different delta each rep keeps
//!   the stack artifact itself cold);
//! - `warm_identical`: the same design again — a pure stack hit.
//!
//! Correctness is asserted, not assumed: the warm-delta result must be
//! bitwise identical to a cold bypass analysis of the same edited grid,
//! and the benchmark fails otherwise. The headline number is the
//! `warm_delta` speedup over `cold` — the stage graph's reason to
//! exist.

use ir_fusion::{CachePolicy, FusionConfig, IrFusionPipeline, StageStore};
use irf_data::synth::{synthesize, SynthSpec};
use irf_pg::PowerGrid;
use std::sync::Arc;
use std::time::Instant;

struct Measurement {
    mode: &'static str,
    reps: usize,
    seconds: f64,
    per_analysis: f64,
    checksum: u64,
}

fn checksum64(values: impl Iterator<Item = u64>) -> u64 {
    values.fold(0u64, |h, v| h.rotate_left(7) ^ v)
}

fn stack_checksum(stack: &ir_fusion::PreparedStack) -> u64 {
    let (_, _, _, features) = stack.features.to_nchw();
    checksum64(
        stack
            .rough
            .data()
            .iter()
            .map(|v| u64::from(v.to_bits()))
            .chain(features.iter().map(|v| u64::from(v.to_bits()))),
    )
}

/// A grid big enough that MNA assembly and AMG setup dominate the cold
/// walk — the cost the warm path is supposed to skip.
fn bench_spec(tiny: bool) -> SynthSpec {
    SynthSpec {
        m1_stripes: if tiny { 32 } else { 96 },
        m2_stripes: if tiny { 32 } else { 96 },
        m4_stripes: if tiny { 6 } else { 12 },
        pads: if tiny { 9 } else { 24 },
        stripe_jitter: 0.05,
        seed: 0xF1,
        ..SynthSpec::default()
    }
}

fn json_report(rows: &[Measurement], nodes: usize, speedup: f64) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"whatif-incremental\",\n");
    out.push_str(&format!(
        "  \"grid_nodes\": {nodes},\n  \"warm_delta_speedup\": {speedup:.2},\n  \"results\": [\n"
    ));
    for (i, m) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"reps\": {}, \"seconds\": {:.6}, \
             \"per_analysis_s\": {:.6}, \"checksum\": \"{:016x}\"}}{}\n",
            m.mode,
            m.reps,
            m.seconds,
            m.per_analysis,
            m.checksum,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let tiny = std::env::args().any(|a| a == "--tiny");
    let json_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1).cloned())
    };

    let spec = bench_spec(tiny);
    let grid = Arc::new(PowerGrid::from_netlist(&synthesize(&spec)).expect("valid grid"));
    let reps = if tiny { 3 } else { 5 };
    let config = FusionConfig::tiny();
    let store = Arc::new(StageStore::new(reps + 2));
    let pipeline = IrFusionPipeline::new(config).with_cache(Arc::clone(&store));

    // Per-rep deltas differ so each warm rep re-runs the rough solve
    // and the stack rebuild instead of hitting the stack artifact.
    let delta = |rep: usize| vec![(1usize, 1e-5 * (rep + 1) as f64)];

    println!(
        "incremental: {} nodes, {} reps per mode",
        grid.nodes.len(),
        reps
    );

    // Cold: bypass the store entirely, every rep pays the full walk.
    let cold_session = pipeline
        .session(Arc::clone(&grid))
        .cache_policy(CachePolicy::Bypass);
    let mut cold_stack = cold_session.prepare().expect("grid has pads"); // warm up allocator
    let start = Instant::now();
    for _ in 0..reps {
        cold_stack = cold_session.prepare().expect("grid has pads");
    }
    let cold_seconds = start.elapsed().as_secs_f64();
    let cold = Measurement {
        mode: "cold",
        reps,
        seconds: cold_seconds,
        per_analysis: cold_seconds / reps as f64,
        checksum: stack_checksum(&cold_stack),
    };

    // Prime the store with the base design, then re-analyze current
    // edits against the warm assembled system / AMG setup.
    pipeline
        .session(Arc::clone(&grid))
        .prepare()
        .expect("grid has pads");
    let mut warm_stack = None;
    let start = Instant::now();
    for rep in 0..reps {
        let stack = pipeline
            .session(Arc::clone(&grid))
            .with_current_deltas(&delta(rep))
            .prepare()
            .expect("grid has pads");
        warm_stack = Some(stack);
    }
    let warm_seconds = start.elapsed().as_secs_f64();
    let warm_stack = warm_stack.expect("at least one rep");
    let warm = Measurement {
        mode: "warm_delta",
        reps,
        seconds: warm_seconds,
        per_analysis: warm_seconds / reps as f64,
        checksum: stack_checksum(&warm_stack),
    };

    // Warm identical repeat: the stack artifact itself is served.
    let start = Instant::now();
    let mut hit_stack = None;
    for _ in 0..reps {
        hit_stack = Some(
            pipeline
                .session(Arc::clone(&grid))
                .prepare()
                .expect("grid has pads"),
        );
    }
    let hit_seconds = start.elapsed().as_secs_f64();
    let hit = Measurement {
        mode: "warm_identical",
        reps,
        seconds: hit_seconds,
        per_analysis: hit_seconds / reps as f64,
        checksum: stack_checksum(&hit_stack.expect("at least one rep")),
    };

    // Bitwise correctness gate: the last warm-delta stack must equal a
    // cold bypass analysis of the same edited grid.
    let reference = pipeline
        .session(Arc::clone(&grid))
        .with_current_deltas(&delta(reps - 1))
        .cache_policy(CachePolicy::Bypass)
        .prepare()
        .expect("grid has pads");
    assert_eq!(
        stack_checksum(&reference),
        warm.checksum,
        "warm current-delta analysis is not bitwise identical to cold"
    );
    // The identical repeat serves the base design's own artifact.
    assert_eq!(
        stack_checksum(
            &pipeline
                .session(Arc::clone(&grid))
                .cache_policy(CachePolicy::Bypass)
                .prepare()
                .expect("grid has pads")
        ),
        hit.checksum,
        "warm identical repeat is not bitwise identical to cold"
    );

    let speedup = cold.per_analysis / warm.per_analysis;
    println!(
        "{:>14} | {:>5} | {:>9} | {:>12} | {:>8} | {:>16}",
        "mode", "reps", "seconds", "per-analysis", "speedup", "checksum"
    );
    println!("{}", "-".repeat(80));
    let rows = vec![cold, warm, hit];
    for m in &rows {
        println!(
            "{:>14} | {:>5} | {:>9.4} | {:>12.6} | {:>7.2}x | {:016x}",
            m.mode,
            m.reps,
            m.seconds,
            m.per_analysis,
            rows[0].per_analysis / m.per_analysis,
            m.checksum
        );
    }
    println!(
        "\nwarm current-delta re-analysis is {speedup:.2}x faster than cold \
         (assembled system + AMG setup + structural maps reused; {} stage hits, {} misses)",
        store.hits(),
        store.misses()
    );

    let report = json_report(&rows, grid.nodes.len(), speedup);
    if let Some(path) = json_path {
        std::fs::write(&path, &report).expect("write JSON report");
        println!("wrote {path}");
    } else {
        println!("\n{report}");
    }
}
