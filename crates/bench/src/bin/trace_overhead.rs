//! Measures the cost of leaving tracing instrumentation in the hot
//! path: full feature preparation (truncated AMG-PCG solve + feature
//! rasterization) with no collector installed versus with a collector
//! recording every span.
//!
//! ```bash
//! cargo run --release --bin trace_overhead [-- ITERS]
//! ```
//!
//! Untraced and traced iterations are interleaved so clock drift and
//! cache warmup hit both sides equally. The uninstalled path is the
//! one that matters: it must stay within noise of free (a relaxed
//! atomic load per span), which is what lets the spans ship enabled.

use ir_fusion::{FusionConfig, IrFusionPipeline};
use irf_data::synth::{synthesize, SynthSpec};
use irf_pg::PowerGrid;
use irf_trace::Collector;
use std::time::Instant;

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let grid = PowerGrid::from_netlist(&synthesize(&SynthSpec::default())).expect("valid grid");
    let pipeline = IrFusionPipeline::new(FusionConfig::tiny());

    for _ in 0..5 {
        std::hint::black_box(pipeline.prepare_stack(&grid).expect("grid has pads"));
    }

    let mut untraced_ns = 0u128;
    let mut traced_ns = 0u128;
    let mut events = 0usize;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(pipeline.prepare_stack(&grid).expect("grid has pads"));
        untraced_ns += t0.elapsed().as_nanos();

        let collector = Collector::install().expect("no competing collector");
        let t0 = Instant::now();
        std::hint::black_box(pipeline.prepare_stack(&grid).expect("grid has pads"));
        traced_ns += t0.elapsed().as_nanos();
        events = collector.finish().len();
    }

    let untraced_ms = untraced_ns as f64 / 1e6 / iters as f64;
    let traced_ms = traced_ns as f64 / 1e6 / iters as f64;
    let overhead = (traced_ms - untraced_ms) / untraced_ms * 100.0;
    println!(
        "{{\"iters\":{iters},\"untraced_ms\":{untraced_ms:.3},\"traced_ms\":{traced_ms:.3},\
         \"overhead_pct\":{overhead:.2},\"events_per_run\":{events}}}"
    );
}
