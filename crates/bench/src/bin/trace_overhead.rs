//! Measures the cost of leaving tracing instrumentation in the hot
//! path: full feature preparation (truncated AMG-PCG solve + feature
//! rasterization) with no collector installed versus with a collector
//! recording every span.
//!
//! ```bash
//! cargo run --release --bin trace_overhead [-- ITERS]
//! ```
//!
//! Untraced and traced iterations are interleaved so clock drift and
//! cache warmup hit both sides equally. The uninstalled path is the
//! one that matters: it must stay within noise of free (a relaxed
//! atomic load per span), which is what lets the spans ship enabled.

use ir_fusion::{FusionConfig, IrFusionPipeline};
use irf_data::synth::{synthesize, SynthSpec};
use irf_obs::log::{Format, Level};
use irf_obs::{FlightRecorder, RequestRecord};
use irf_pg::PowerGrid;
use irf_trace::Collector;
use std::time::Instant;

fn main() {
    let iters: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let grid = PowerGrid::from_netlist(&synthesize(&SynthSpec::default())).expect("valid grid");
    let pipeline = IrFusionPipeline::new(FusionConfig::tiny());

    for _ in 0..5 {
        std::hint::black_box(pipeline.prepare_stack(&grid).expect("grid has pads"));
    }

    let recorder = FlightRecorder::new(256);
    let mut untraced_ns = 0u128;
    let mut traced_ns = 0u128;
    let mut observed_ns = 0u128;
    let mut events = 0usize;
    for iter in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(pipeline.prepare_stack(&grid).expect("grid has pads"));
        untraced_ns += t0.elapsed().as_nanos();

        let collector = Collector::install().expect("no competing collector");
        let t0 = Instant::now();
        std::hint::black_box(pipeline.prepare_stack(&grid).expect("grid has pads"));
        traced_ns += t0.elapsed().as_nanos();
        events = collector.finish().len();

        // The "observed" leg prices the full request-scoped layer the
        // server adds on top of tracing: a request scope around the
        // work, trace finalization, the span-tree snapshot, the flight
        // recorder write, and rendering (not writing) the access-log
        // line.
        let id = 0x9e3779b97f4a7c15u64 ^ iter as u64;
        let collector = Collector::install().expect("no competing collector");
        let t0 = Instant::now();
        let scope = irf_trace::request::scope(id);
        std::hint::black_box(pipeline.prepare_stack(&grid).expect("grid has pads"));
        let stats = scope.finish();
        let trace = collector.finish();
        let spans = irf_obs::recorder::span_tree(&trace, id);
        recorder.record(RequestRecord {
            id,
            seq: 0,
            endpoint: "bench",
            status: 200,
            start_unix_ms: 0,
            duration_seconds: 0.0,
            queue_seconds: 0.0,
            batch_size: 1,
            stats,
            slo_objective_seconds: 0.5,
            slo_breached: false,
            spans: Some(spans),
        });
        let line = irf_obs::log::render(
            Format::Json,
            Level::Info,
            "access",
            &[
                ("request", format!("{id:016x}").as_str().into()),
                ("endpoint", "bench".into()),
                ("status", 200u64.into()),
                ("cache_hits", stats.cache_hits.into()),
                ("cache_misses", stats.cache_misses.into()),
                ("pcg_iterations", stats.pcg_iterations.into()),
            ],
        );
        std::hint::black_box(line);
        observed_ns += t0.elapsed().as_nanos();
    }

    let untraced_ms = untraced_ns as f64 / 1e6 / iters as f64;
    let traced_ms = traced_ns as f64 / 1e6 / iters as f64;
    let observed_ms = observed_ns as f64 / 1e6 / iters as f64;
    let overhead = (traced_ms - untraced_ms) / untraced_ms * 100.0;
    let obs_overhead = (observed_ms - untraced_ms) / untraced_ms * 100.0;
    println!(
        "{{\"iters\":{iters},\"untraced_ms\":{untraced_ms:.3},\"traced_ms\":{traced_ms:.3},\
         \"overhead_pct\":{overhead:.2},\"obs_ms\":{observed_ms:.3},\
         \"obs_overhead_pct\":{obs_overhead:.2},\"events_per_run\":{events}}}"
    );
}
