//! Regenerates **Fig. 6** — qualitative IR-drop maps: golden label vs
//! the SOTA baseline (MAUnet) vs IR-Fusion on one held-out design.
//! Writes PGM images and prints ASCII hotspot sketches.
//!
//! ```bash
//! cargo run -p irf-bench --bin fig6 --release -- [--tiny]
//! ```

use ir_fusion::{train, IrFusionPipeline};
use irf_bench::scale_from_args;
use irf_metrics::{f1_score, mae};
use irf_models::ModelKind;
use irf_pg::GridMap;
use std::fs;

fn sketch(map: &GridMap, label: &str) {
    println!("{label}: worst drop {:.3} mV", map.max() * 1e3);
    let thr9 = map.max() * 0.9;
    let thr7 = map.max() * 0.7;
    for y in (0..map.height()).step_by(map.height().div_ceil(12)) {
        let mut line = String::from("  ");
        for x in (0..map.width()).step_by(map.width().div_ceil(24)) {
            let v = map.get(x, y);
            line.push(if v > thr9 {
                '#'
            } else if v > thr7 {
                '+'
            } else {
                '.'
            });
        }
        println!("{line}");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = scale_from_args();
    let dataset = scale.dataset();
    let config = scale.config();
    let pipeline = IrFusionPipeline::new(config);

    println!(
        "training MAUnet and IR-Fusion ({} epochs each)...",
        scale.epochs
    );
    let maunet = train(ModelKind::MaUnet, &dataset, &config);
    let fusion = train(ModelKind::IrFusion, &dataset, &config);

    let design = dataset.test().next().expect("held-out design exists");
    println!("design under test: {}", design.name);
    let golden = pipeline.golden_map(&design.grid);
    let pred = |t: &ir_fusion::TrainedModel| {
        pipeline
            .stack_builder()
            .analyze(&design.grid, Some(t))
            .expect("design grid has pads")
            .fused_map
            .expect("model supplied")
    };
    let maunet_map = pred(&maunet);
    let fusion_map = pred(&fusion);

    fs::write(irf_bench::bench_out("fig6_golden.pgm"), golden.to_pgm())?;
    fs::write(irf_bench::bench_out("fig6_maunet.pgm"), maunet_map.to_pgm())?;
    fs::write(
        irf_bench::bench_out("fig6_irfusion.pgm"),
        fusion_map.to_pgm(),
    )?;
    fs::write(irf_bench::bench_out("fig6_golden.csv"), golden.to_csv())?;
    fs::write(irf_bench::bench_out("fig6_maunet.csv"), maunet_map.to_csv())?;
    fs::write(
        irf_bench::bench_out("fig6_irfusion.csv"),
        fusion_map.to_csv(),
    )?;
    println!("wrote target/bench-out/fig6_{{golden,maunet,irfusion}}.{{pgm,csv}}");
    println!();

    sketch(&golden, "(a) Golden");
    sketch(&maunet_map, "(b) MAUnet");
    sketch(&fusion_map, "(c) IR-Fusion (ours)");

    println!();
    println!(
        "MAUnet    : MAE {:.3e} V, F1 {:.3}",
        mae(maunet_map.data(), golden.data()),
        f1_score(maunet_map.data(), golden.data())
    );
    println!(
        "IR-Fusion : MAE {:.3e} V, F1 {:.3}",
        mae(fusion_map.data(), golden.data()),
        f1_score(fusion_map.data(), golden.data())
    );
    Ok(())
}
