//! Compare how each solver's *true error* (vs the exact Cholesky
//! solution) decays with iteration count on a real-like design — the
//! numerical backbone of the paper's Fig. 7 regime.
//!
//! ```bash
//! cargo run -p irf-bench --release --example solver_convergence
//! ```

use irf_data::golden::golden_drops;
use irf_data::real_like::real_like_spec;
use irf_data::synthesize;
use irf_pg::PowerGrid;
use irf_sparse::amg::AmgParams;
use irf_sparse::smoother::SmootherKind;
use irf_sparse::{Solver, SolverKind};

fn main() {
    let spec = real_like_spec(3);
    let grid = PowerGrid::from_netlist(&synthesize(&spec)).expect("valid grid");
    let sys = grid.build_system();
    let golden = golden_drops(&grid);
    println!(
        "design: {} unknowns, worst drop {:.2} mV",
        sys.dim(),
        golden.iter().cloned().fold(0.0, f64::max) * 1e3
    );
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>10}",
        "solver", "k=1", "k=2", "k=5", "k=10"
    );
    let light = AmgParams {
        smoother: SmootherKind::Jacobi,
        ..AmgParams::default()
    };
    for (label, kind, params) in [
        ("CG", SolverKind::Cg, AmgParams::default()),
        ("Jacobi-PCG", SolverKind::JacobiPcg, AmgParams::default()),
        ("AMG-PCG V-cycle/Jacobi", SolverKind::AmgPcgVCycle, light),
        (
            "AMG-PCG V-cycle/SGS",
            SolverKind::AmgPcgVCycle,
            AmgParams::default(),
        ),
        (
            "AMG-PCG K-cycle/SGS",
            SolverKind::AmgPcg,
            AmgParams::default(),
        ),
    ] {
        print!("{label:<26}");
        for k in [1usize, 2, 5, 10] {
            let r = Solver::new(kind)
                .with_amg_params(params)
                .with_tolerance(1e-14)
                .with_max_iterations(k)
                .solve(&sys.matrix, &sys.rhs);
            let x = sys.expand_solution(&r.x);
            let mae: f64 = x
                .iter()
                .zip(&golden)
                .map(|(a, b)| (a - b).abs())
                .sum::<f64>()
                / golden.len() as f64;
            print!(" {mae:>9.2e}");
        }
        println!();
    }
    println!();
    println!("The IR-Fusion pipeline's truncated solve uses the V-cycle/Jacobi");
    println!("operating point (rough at small k); the K-cycle is the production");
    println!("solver for full-accuracy signoff runs.");
}
