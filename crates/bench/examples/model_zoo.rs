//! Print the model zoo: per-model parameter counts and a forward
//! shape check — a quick sanity tour of `irf-models`.
//!
//! ```bash
//! cargo run -p irf-bench --release --example model_zoo
//! ```

use irf_models::{build_model, ModelConfig, ModelKind};
use irf_nn::{init, Tape};
use std::time::Instant;

fn main() {
    let config = ModelConfig {
        in_channels: 11,
        base_channels: 6,
        seed: 1,
        linear_head: false,
    };
    println!(
        "{:<16} {:>12} {:>14} {:>12}",
        "model", "parameters", "forward 32x32", "kirchhoff?"
    );
    println!("{}", "-".repeat(58));
    for kind in ModelKind::TABLE1 {
        let (model, store) = build_model(kind, config);
        let x = init::uniform([1, config.in_channels, 32, 32], -1.0, 1.0, 2);
        let t0 = Instant::now();
        let mut tape = Tape::new();
        let xin = tape.input(x);
        let y = model.forward(&mut tape, &store, xin);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(tape.value(y).shape(), [1, 1, 32, 32]);
        println!(
            "{:<16} {:>12} {:>11.1} ms {:>12}",
            model.name(),
            store.num_scalars(),
            ms,
            if model.wants_kirchhoff_loss() {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!();
    println!("All models map (1, C, H, W) feature stacks to a (1, 1, H, W)");
    println!("drop map; the fusion pipeline switches IR-Fusion's head to a");
    println!("linear (signed residual) output at training time.");
}
