//! Solver micro-benchmarks — the numerical cost model behind the
//! runtime columns of Table I and the x-axis of Fig. 7.
//!
//! Benches AMG-PCG against plain CG, Jacobi-PCG and sparse Cholesky on
//! synthesized power grids of growing size, plus the per-iteration
//! cost of the truncated (k = 1, 2, 5, 10) solves IR-Fusion actually
//! runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use irf_data::{synthesize, SynthSpec};
use irf_pg::{PgSystem, PowerGrid};
use irf_sparse::{Solver, SolverKind};
use std::hint::black_box;

fn grid_system(stripes: usize) -> PgSystem {
    let spec = SynthSpec {
        m1_stripes: stripes,
        m2_stripes: stripes,
        m4_stripes: (stripes / 4).max(2),
        seed: 42,
        ..SynthSpec::default()
    };
    PowerGrid::from_netlist(&synthesize(&spec))
        .expect("valid grid")
        .build_system()
}

fn bench_solver_kinds(c: &mut Criterion) {
    let sys = grid_system(16);
    let mut group = c.benchmark_group("solve_to_1e-8");
    group.sample_size(10);
    for kind in [
        SolverKind::Cg,
        SolverKind::JacobiPcg,
        SolverKind::Ic0Pcg,
        SolverKind::AmgPcg,
        SolverKind::AmgPcgVCycle,
        SolverKind::Cholesky,
    ] {
        group.bench_function(kind.label(), |b| {
            let solver = Solver::new(kind)
                .with_tolerance(1e-8)
                .with_max_iterations(20_000);
            b.iter(|| black_box(solver.solve(&sys.matrix, &sys.rhs)));
        });
    }
    group.finish();
}

fn bench_truncated_amg_pcg(c: &mut Criterion) {
    // The k = 1..10 budget of Fig. 7: AMG setup + k PCG iterations.
    let sys = grid_system(16);
    let mut group = c.benchmark_group("amg_pcg_truncated");
    group.sample_size(10);
    for k in [1usize, 2, 5, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let solver = Solver::new(SolverKind::AmgPcg)
                .with_tolerance(1e-14)
                .with_max_iterations(k);
            b.iter(|| black_box(solver.solve(&sys.matrix, &sys.rhs)));
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // Grid-size scaling of the production solver.
    let mut group = c.benchmark_group("amg_pcg_scaling");
    group.sample_size(10);
    for stripes in [8usize, 16, 24] {
        let sys = grid_system(stripes);
        group.bench_with_input(BenchmarkId::new("nodes", sys.dim()), &sys, |b, sys| {
            let solver = Solver::new(SolverKind::AmgPcg).with_tolerance(1e-8);
            b.iter(|| black_box(solver.solve(&sys.matrix, &sys.rhs)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_solver_kinds,
    bench_truncated_amg_pcg,
    bench_scaling
);
criterion_main!(benches);
