//! Feature-extraction micro-benchmarks: the cost of building the
//! hierarchical numerical-structural stack, per feature family.

use criterion::{criterion_group, criterion_main, Criterion};
use ir_fusion::{FusionConfig, IrFusionPipeline};
use irf_data::{synthesize, SynthSpec};
use irf_features::{FeatureConfig, FeatureExtractor};
use irf_pg::{PowerGrid, Rasterizer};
use std::hint::black_box;

fn grid() -> PowerGrid {
    PowerGrid::from_netlist(&synthesize(&SynthSpec {
        m1_stripes: 16,
        m2_stripes: 16,
        seed: 9,
        ..SynthSpec::default()
    }))
    .expect("valid grid")
}

fn bench_feature_families(c: &mut Criterion) {
    let g = grid();
    let raster = Rasterizer::new(g.bounding_box(), 64, 64);
    let mut group = c.benchmark_group("feature_family_64x64");
    group.sample_size(10);
    group.bench_function("current_total", |b| {
        b.iter(|| black_box(irf_features::current::total_current_map(&g, &raster)));
    });
    group.bench_function("current_per_layer", |b| {
        b.iter(|| black_box(irf_features::current::layer_current_maps(&g, &raster)));
    });
    group.bench_function("effective_distance", |b| {
        b.iter(|| black_box(irf_features::distance::effective_distance_map(&g, &raster)));
    });
    group.bench_function("pdn_density", |b| {
        b.iter(|| black_box(irf_features::density::pdn_density_map(&g, &raster)));
    });
    group.bench_function("resistance", |b| {
        b.iter(|| black_box(irf_features::resistance::resistance_map(&g, &raster)));
    });
    group.bench_function("shortest_path_resistance", |b| {
        b.iter(|| {
            black_box(irf_features::shortest_path::shortest_path_resistance_map(
                &g, &raster,
            ))
        });
    });
    group.finish();
}

fn bench_full_stack(c: &mut Criterion) {
    let g = grid();
    let mut pipeline_cfg = FusionConfig::default();
    pipeline_cfg.feature.width = 64;
    pipeline_cfg.feature.height = 64;
    let pipeline = IrFusionPipeline::new(pipeline_cfg);
    let (drops, _) = pipeline.rough_solution(&g);
    let extractor = FeatureExtractor::new(FeatureConfig {
        width: 64,
        height: 64,
        ..FeatureConfig::default()
    });
    let mut group = c.benchmark_group("stack");
    group.sample_size(10);
    group.bench_function("full_feature_stack_64x64", |b| {
        b.iter(|| black_box(extractor.extract(&g, &drops)));
    });
    group.finish();
}

fn bench_end_to_end_analysis(c: &mut Criterion) {
    // The complete Table-I-runtime path: truncated solve + raster.
    let g = grid();
    let mut cfg = FusionConfig::default();
    cfg.feature.width = 64;
    cfg.feature.height = 64;
    let pipeline = IrFusionPipeline::new(cfg);
    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    group.bench_function("rough_solve_plus_raster", |b| {
        b.iter(|| black_box(pipeline.analyze_grid(&g, None)));
    });
    group.bench_function("golden_direct_solve", |b| {
        b.iter(|| black_box(pipeline.golden_map(&g)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_feature_families,
    bench_full_stack,
    bench_end_to_end_analysis
);
criterion_main!(benches);
