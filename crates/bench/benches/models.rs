//! Model micro-benchmarks — inference cost of every Table I model and
//! the training-step cost of IR-Fusion (the ML half of the runtime
//! column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use irf_models::{build_model, ModelConfig, ModelKind};
use irf_nn::{init, loss, optim::Adam, Tape, Tensor};
use std::hint::black_box;

const RES: usize = 32;
const CHANNELS: usize = 9;

fn config() -> ModelConfig {
    ModelConfig {
        in_channels: CHANNELS,
        base_channels: 6,
        seed: 7,
        linear_head: false,
    }
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference_32x32");
    group.sample_size(10);
    let x = init::uniform([1, CHANNELS, RES, RES], -1.0, 1.0, 3);
    for kind in ModelKind::TABLE1 {
        let (model, store) = build_model(kind, config());
        group.bench_function(model.name(), |b| {
            b.iter(|| {
                let mut tape = Tape::new();
                let xin = tape.input(x.clone());
                let y = model.forward(&mut tape, &store, xin);
                black_box(tape.value(y).mean())
            });
        });
    }
    group.finish();
}

fn bench_training_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step_32x32");
    group.sample_size(10);
    let x = init::uniform([1, CHANNELS, RES, RES], -1.0, 1.0, 3);
    let target = Tensor::filled([1, 1, RES, RES], 0.3);
    for kind in [ModelKind::IrEdge, ModelKind::IrFusion] {
        let (model, mut store) = build_model(kind, config());
        let mut opt = Adam::new(1e-3);
        group.bench_function(model.name(), |b| {
            b.iter(|| {
                let mut tape = Tape::new();
                let xin = tape.input(x.clone());
                let y = model.forward(&mut tape, &store, xin);
                let (l, grad) = loss::mae(tape.value(y), &target);
                tape.backward(y, grad, &mut store);
                opt.step(&mut store);
                black_box(l)
            });
        });
    }
    group.finish();
}

fn bench_resolution_scaling(c: &mut Criterion) {
    // How IR-Fusion inference scales with map resolution (the paper
    // runs 256x256; the reproduction's default is lower).
    let mut group = c.benchmark_group("irfusion_resolution");
    group.sample_size(10);
    let (model, store) = build_model(ModelKind::IrFusion, config());
    for res in [16usize, 32, 64] {
        let x = init::uniform([1, CHANNELS, res, res], -1.0, 1.0, 3);
        group.bench_with_input(BenchmarkId::from_parameter(res), &x, |b, x| {
            b.iter(|| {
                let mut tape = Tape::new();
                let xin = tape.input(x.clone());
                let y = model.forward(&mut tape, &store, xin);
                black_box(tape.value(y).mean())
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_inference,
    bench_training_step,
    bench_resolution_scaling
);
criterion_main!(benches);
