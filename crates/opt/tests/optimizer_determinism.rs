//! Determinism contract of the closed loop, plus the edit-validation
//! edge cases an optimizer can plausibly generate.

use ir_fusion::{EditError, FusionConfig, IrFusionPipeline, StageStore, TopologyDelta};
use irf_data::{synthesize, SynthSpec};
use irf_opt::{CandidateGenerator, CostModel, Optimizer, OptimizerConfig, StopReason};
use irf_pg::PowerGrid;
use std::sync::{Arc, Mutex};

/// The global thread count is process-wide state; hold this lock while
/// flipping it (same pattern as `integration_determinism.rs`).
static THREAD_CONFIG: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = THREAD_CONFIG.lock().unwrap_or_else(|e| e.into_inner());
    irf_runtime::set_num_threads(n);
    let result = f();
    irf_runtime::set_num_threads(0);
    result
}

fn grid() -> Arc<PowerGrid> {
    let spec = SynthSpec {
        seed: 9,
        ..SynthSpec::default()
    };
    Arc::new(PowerGrid::from_netlist(&synthesize(&spec)).expect("valid grid"))
}

fn config(target: f64) -> OptimizerConfig {
    OptimizerConfig {
        target_max_drop: target,
        metal_budget: 1e9,
        beam_width: 2,
        max_iterations: 3,
        max_evaluations: 24,
        candidates_per_state: 4,
        warm_start: true,
    }
}

fn run_once(pipeline: &IrFusionPipeline, target_scale: f64) -> (u64, Vec<String>, usize) {
    let base = grid();
    let baseline = f64::from(
        pipeline
            .session(Arc::clone(&base))
            .prepare()
            .expect("pads")
            .rough
            .max(),
    );
    let report = Optimizer::new(pipeline, config(baseline * target_scale))
        .run(base)
        .expect("run succeeds");
    (
        report.checksum(),
        report.winner.labels.clone(),
        report.evaluations,
    )
}

/// `Optimizer::run` trajectories are byte-identical across 1/2/4/8
/// threads (fresh store each run) and across two runs against the
/// same warm base (shared store, second run all-hits).
#[test]
fn trajectories_are_identical_across_threads_and_warm_reruns() {
    let fusion = FusionConfig::tiny();
    let reference = with_threads(1, || {
        let pipeline = IrFusionPipeline::new(fusion).with_cache(Arc::new(StageStore::new(128)));
        run_once(&pipeline, 0.9)
    });
    assert!(!reference.1.is_empty(), "optimizer must apply some edit");

    for threads in [2, 4, 8] {
        let result = with_threads(threads, || {
            let pipeline = IrFusionPipeline::new(fusion).with_cache(Arc::new(StageStore::new(128)));
            run_once(&pipeline, 0.9)
        });
        assert_eq!(reference, result, "trajectory differs at {threads} threads");
    }

    // Two runs against the same warm base: the second run reuses the
    // first's artifacts and must still produce identical bytes.
    let (first, second) = with_threads(2, || {
        let pipeline = IrFusionPipeline::new(fusion).with_cache(Arc::new(StageStore::new(128)));
        (run_once(&pipeline, 0.9), run_once(&pipeline, 0.9))
    });
    assert_eq!(first, second, "rerun against warm base differs");
    assert_eq!(reference, first, "warm run differs from fresh run");
}

/// The loop closes on a modest (10%-better) target within its
/// evaluation budget, spending real metal to get there.
#[test]
fn loop_meets_a_modest_target() {
    let pipeline =
        IrFusionPipeline::new(FusionConfig::tiny()).with_cache(Arc::new(StageStore::new(128)));
    let base = grid();
    let baseline = f64::from(
        pipeline
            .session(Arc::clone(&base))
            .prepare()
            .expect("pads")
            .rough
            .max(),
    );
    let report = Optimizer::new(&pipeline, config(baseline * 0.9))
        .run(base)
        .expect("run succeeds");
    assert_eq!(report.stop_reason, StopReason::TargetMet);
    assert!(report.target_met);
    assert!(report.winner.max_drop <= baseline * 0.9);
    assert!(report.winner.metal_cost > 0.0);
    assert!(!report.trajectory.is_empty());
    assert!(report.evaluations <= 24);
}

/// An unreachable target under a tiny metal budget stops the loop on
/// budget exhaustion (never an error, never an infinite loop).
#[test]
fn tiny_budget_stops_on_budget_exhausted() {
    let pipeline =
        IrFusionPipeline::new(FusionConfig::tiny()).with_cache(Arc::new(StageStore::new(64)));
    let base = grid();
    let mut cfg = config(0.0); // unreachable target
    cfg.metal_budget = 1e-12;
    let report = Optimizer::new(&pipeline, cfg).run(base).expect("runs");
    assert_eq!(report.stop_reason, StopReason::BudgetExhausted);
    assert!(!report.target_met);
    assert!(report.winner.deltas.is_empty(), "nothing affordable");
}

/// Candidate generation is deterministic and priced: same inputs give
/// the same ordered labels, and every candidate costs > 0.
#[test]
fn candidate_generation_is_deterministic_and_priced() {
    let pipeline = IrFusionPipeline::new(FusionConfig::tiny());
    let base = grid();
    let rough = pipeline
        .session(Arc::clone(&base))
        .rough_solution()
        .expect("pads");
    let model = CostModel::default();
    let generator = CandidateGenerator::default();
    let a = generator.generate(&base, &rough.drops, &model);
    let b = generator.generate(&base, &rough.drops, &model);
    assert!(!a.is_empty());
    let labels: Vec<&str> = a.iter().map(|c| c.label.as_str()).collect();
    let again: Vec<&str> = b.iter().map(|c| c.label.as_str()).collect();
    assert_eq!(labels, again);
    for c in &a {
        assert!(c.cost > 0.0, "{} has no metal cost", c.label);
        assert!(c.predicted_delta >= 0.0);
        assert!(c.deltas.iter().all(|d| match *d {
            TopologyDelta::Strap { scale, .. } | TopologyDelta::Via { scale, .. } => scale < 1.0,
            TopologyDelta::Segment { ohms, .. } => ohms > 0.0,
        }));
    }
    // Sorted by predicted benefit first.
    for w in a.windows(2) {
        assert!(w[0].predicted_delta >= w[1].predicted_delta);
    }
}

/// Edit-validation edge cases the optimizer (or a buggy generator)
/// can produce. Duplicate strap edits on one layer are *legal* — they
/// compose multiplicatively — while non-positive scales and vias to
/// absent layers must be rejected atomically.
#[test]
fn edit_error_edge_cases() {
    let pipeline = IrFusionPipeline::new(FusionConfig::tiny());
    let base = grid();
    let strap_layer = base
        .segments
        .iter()
        .find_map(|s| {
            let (a, b) = (base.nodes[s.a].layer, base.nodes[s.b].layer);
            (a == b).then_some(a)
        })
        .expect("synth grid has straps");

    // Duplicate strap ids: two edits of the same layer compose.
    let doubled = pipeline
        .session(Arc::clone(&base))
        .with_topology_deltas(&[
            TopologyDelta::Strap {
                layer: strap_layer,
                scale: 0.5,
            },
            TopologyDelta::Strap {
                layer: strap_layer,
                scale: 0.5,
            },
        ])
        .expect("duplicate strap edits compose");
    let quartered = pipeline
        .session(Arc::clone(&base))
        .with_topology_deltas(&[TopologyDelta::Strap {
            layer: strap_layer,
            scale: 0.25,
        }])
        .expect("valid");
    assert_eq!(doubled.fingerprint(), quartered.fingerprint());

    // Zero and negative widths are invalid values.
    for bad in [0.0, -0.5] {
        let err = pipeline
            .session(Arc::clone(&base))
            .with_topology_deltas(&[TopologyDelta::Strap {
                layer: strap_layer,
                scale: bad,
            }])
            .expect_err("non-positive scale must be rejected");
        assert!(matches!(err, EditError::InvalidValue { what: "scale", .. }));
    }

    // A via to a nonexistent layer matches nothing.
    let absent = base.nodes.iter().map(|n| n.layer).max().unwrap_or(0) + 7;
    let err = pipeline
        .session(Arc::clone(&base))
        .with_topology_deltas(&[TopologyDelta::Via {
            lower: 1,
            upper: absent,
            scale: 0.5,
        }])
        .expect_err("via to absent layer must be rejected");
    assert_eq!(
        err,
        EditError::NoViaSegments {
            lower: 1,
            upper: absent
        }
    );

    // Rejection is atomic: a bad trailing delta leaves the session
    // grid untouched (the builder consumed on error).
    let err = pipeline
        .session(Arc::clone(&base))
        .with_topology_deltas(&[
            TopologyDelta::Strap {
                layer: strap_layer,
                scale: 0.5,
            },
            TopologyDelta::Segment {
                segment: base.segments.len(),
                ohms: 1.0,
            },
        ])
        .expect_err("out-of-range segment must reject the whole batch");
    assert!(matches!(err, EditError::SegmentOutOfRange { .. }));
}
