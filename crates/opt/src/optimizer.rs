//! The closed optimization loop: beam search over candidate plans,
//! batched through the stage-graph [`AnalysisSession`] machinery.
//!
//! Each iteration expands every beam state with its top generated
//! candidates, evaluates the expansions in one batch (model inference
//! when a predictor is attached, the rough numerical map otherwise),
//! pools old and new states, and keeps the Pareto-best `k` by
//! `(worst drop, metal cost, fingerprint)`. Child analyses re-anchor
//! on their parent's warm artifacts — and, when warm-starting is on,
//! seed the rough solve from the *base* design's [`RoughSolution`] —
//! so each evaluation costs a fraction of a cold analysis. The loop is fully
//! deterministic: candidate order, tie-breaking and stopping depend
//! only on (grid, config, seed state), never on thread count or cache
//! contents.

use crate::candidates::{Candidate, CandidateGenerator};
use crate::cost::CostModel;
use ir_fusion::{
    AnalysisSession, EditError, FeatureError, IrFusionPipeline, PreparedStack, RoughSolution,
    TopologyDelta,
};
use irf_pg::{GridMap, PowerGrid};
use std::sync::Arc;

/// Batch evaluation hook: maps prepared stacks to predicted drop maps
/// (e.g. the serving layer's micro-batched model inference). When
/// absent the optimizer scores states by their rough numerical maps.
pub type BatchPredictor<'a> = &'a dyn Fn(&[Arc<PreparedStack>]) -> Result<Vec<GridMap>, String>;

/// Tuning knobs and budgets for one [`Optimizer::run`].
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// The worst-case IR drop (volts) the loop drives toward.
    pub target_max_drop: f64,
    /// Total metal budget; states whose cumulative cost would exceed
    /// it are never evaluated.
    pub metal_budget: f64,
    /// Beam width `k` — how many states survive each iteration.
    pub beam_width: usize,
    /// Hard cap on loop iterations.
    pub max_iterations: usize,
    /// Hard cap on analysis evaluations (the baseline counts as one).
    pub max_evaluations: usize,
    /// How many top candidates each beam state expands per iteration.
    pub candidates_per_state: usize,
    /// Warm-start each child's rough solve from the base design's
    /// [`RoughSolution`] (see
    /// [`AnalysisSession::with_rough_warm_start`]).
    pub warm_start: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            target_max_drop: 0.0,
            metal_budget: f64::INFINITY,
            beam_width: 2,
            max_iterations: 8,
            max_evaluations: 64,
            candidates_per_state: 6,
            warm_start: true,
        }
    }
}

/// Why the loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// A state met the drop target; the cheapest such state won.
    TargetMet,
    /// Every remaining candidate would exceed the metal budget.
    BudgetExhausted,
    /// An iteration failed to strictly improve the best worst-drop.
    NoImprovement,
    /// The iteration cap was reached.
    IterationLimit,
    /// The evaluation cap was reached.
    EvaluationLimit,
}

impl StopReason {
    /// Stable lowercase label for reports and metrics.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StopReason::TargetMet => "target_met",
            StopReason::BudgetExhausted => "budget_exhausted",
            StopReason::NoImprovement => "no_improvement",
            StopReason::IterationLimit => "iteration_limit",
            StopReason::EvaluationLimit => "evaluation_limit",
        }
    }
}

/// One row of the optimization trajectory: the best state after an
/// iteration's pool-and-prune.
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Candidate evaluations spent in this iteration.
    pub evaluated: usize,
    /// Best worst-case drop in the beam after this iteration.
    pub best_max_drop: f64,
    /// Metal cost of that best state.
    pub best_cost: f64,
    /// Untagged design fingerprint of that best state.
    pub best_fingerprint: u64,
    /// Candidate labels applied along that state's path, in order.
    pub best_labels: Vec<String>,
}

/// The winning plan of a run.
#[derive(Debug, Clone)]
pub struct WinnerPlan {
    /// The optimized grid, ready for registration / follow-up what-ifs.
    pub grid: Arc<PowerGrid>,
    /// Every topology delta applied, in application order.
    pub deltas: Vec<TopologyDelta>,
    /// Candidate labels along the winning path, in order.
    pub labels: Vec<String>,
    /// Worst-case drop of the winner under the run's evaluator.
    pub max_drop: f64,
    /// Cumulative metal cost of the winning plan.
    pub metal_cost: f64,
    /// Untagged design fingerprint of the winning grid.
    pub fingerprint: u64,
}

/// Everything [`Optimizer::run`] produces: the winner, the stop
/// condition, and the full per-iteration trajectory.
#[derive(Debug, Clone)]
pub struct OptimizationReport {
    /// Worst-case drop of the unedited base design.
    pub baseline_max_drop: f64,
    /// The configured drop target.
    pub target_max_drop: f64,
    /// The configured metal budget.
    pub metal_budget: f64,
    /// Why the loop stopped.
    pub stop_reason: StopReason,
    /// Whether the winner meets the drop target.
    pub target_met: bool,
    /// Total analysis evaluations spent (baseline included).
    pub evaluations: usize,
    /// Per-iteration best-state records, in order.
    pub trajectory: Vec<IterationRecord>,
    /// The winning plan.
    pub winner: WinnerPlan,
}

impl OptimizationReport {
    /// Order-sensitive checksum over the whole trajectory and the
    /// winner — byte-identical runs produce equal checksums, so this
    /// is what determinism tests and the bench gate assert on.
    #[must_use]
    pub fn checksum(&self) -> u64 {
        let mut words: Vec<u64> = Vec::new();
        for r in &self.trajectory {
            words.push(r.iteration as u64);
            words.push(r.evaluated as u64);
            words.push(r.best_max_drop.to_bits());
            words.push(r.best_cost.to_bits());
            words.push(r.best_fingerprint);
            for l in &r.best_labels {
                words.push(fnv1a(l.as_bytes()));
            }
        }
        words.push(self.winner.fingerprint);
        words.push(self.winner.max_drop.to_bits());
        words.push(self.winner.metal_cost.to_bits());
        words.push(self.evaluations as u64);
        words.push(fnv1a(self.stop_reason.label().as_bytes()));
        words.iter().fold(0u64, |h, &v| h.rotate_left(7) ^ v)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Why a run aborted (distinct from a normal [`StopReason`] stop).
#[derive(Debug, Clone, PartialEq)]
pub enum OptimizeError {
    /// A generated delta was rejected by edit validation.
    Edit(EditError),
    /// The analysis pipeline rejected the design.
    Feature(FeatureError),
    /// The attached batch predictor failed.
    Predict(String),
}

impl std::fmt::Display for OptimizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizeError::Edit(e) => write!(f, "edit rejected: {e}"),
            OptimizeError::Feature(e) => write!(f, "analysis failed: {e}"),
            OptimizeError::Predict(e) => write!(f, "prediction failed: {e}"),
        }
    }
}

impl std::error::Error for OptimizeError {}

impl From<EditError> for OptimizeError {
    fn from(e: EditError) -> Self {
        OptimizeError::Edit(e)
    }
}

impl From<FeatureError> for OptimizeError {
    fn from(e: FeatureError) -> Self {
        OptimizeError::Feature(e)
    }
}

/// One live state of the beam.
struct BeamState {
    grid: Arc<PowerGrid>,
    deltas: Vec<TopologyDelta>,
    labels: Vec<String>,
    cost: f64,
    max_drop: f64,
    fingerprint: u64,
    rough: Arc<RoughSolution>,
}

/// The closed-loop PDN optimizer.
///
/// ```
/// use ir_fusion::{FusionConfig, IrFusionPipeline, StageStore};
/// use irf_data::{synthesize, SynthSpec};
/// use irf_opt::{Optimizer, OptimizerConfig};
/// use irf_pg::PowerGrid;
/// use std::sync::Arc;
///
/// let grid = Arc::new(PowerGrid::from_netlist(&synthesize(&SynthSpec::default()))?);
/// let pipeline =
///     IrFusionPipeline::new(FusionConfig::tiny()).with_cache(Arc::new(StageStore::new(64)));
/// let base_drop = f64::from(pipeline.session(Arc::clone(&grid)).prepare()?.rough.max());
/// let report = Optimizer::new(
///     &pipeline,
///     OptimizerConfig {
///         target_max_drop: base_drop * 0.9,
///         metal_budget: 1e6,
///         ..OptimizerConfig::default()
///     },
/// )
/// .run(grid)?;
/// assert!(report.winner.max_drop <= report.baseline_max_drop);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Optimizer<'a> {
    pipeline: &'a IrFusionPipeline,
    config: OptimizerConfig,
    generator: CandidateGenerator,
    cost_model: CostModel,
    predictor: Option<BatchPredictor<'a>>,
}

impl<'a> Optimizer<'a> {
    /// An optimizer over `pipeline` with default candidate generation
    /// and cost model.
    #[must_use]
    pub fn new(pipeline: &'a IrFusionPipeline, config: OptimizerConfig) -> Self {
        Optimizer {
            pipeline,
            config,
            generator: CandidateGenerator::default(),
            cost_model: CostModel::default(),
            predictor: None,
        }
    }

    /// Replaces the candidate generator.
    #[must_use]
    pub fn with_generator(mut self, generator: CandidateGenerator) -> Self {
        self.generator = generator;
        self
    }

    /// Replaces the cost model.
    #[must_use]
    pub fn with_cost_model(mut self, model: CostModel) -> Self {
        self.cost_model = model;
        self
    }

    /// Attaches a batch predictor; without one, states are scored by
    /// their rough numerical maps.
    #[must_use]
    pub fn with_predictor(mut self, predictor: BatchPredictor<'a>) -> Self {
        self.predictor = Some(predictor);
        self
    }

    /// The cost model this optimizer prices candidates with.
    #[must_use]
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    fn evaluate(&self, stacks: &[Arc<PreparedStack>]) -> Result<Vec<f64>, OptimizeError> {
        match self.predictor {
            Some(p) => p(stacks)
                .map(|maps| maps.iter().map(|m| f64::from(m.max())).collect())
                .map_err(OptimizeError::Predict),
            None => Ok(stacks.iter().map(|s| f64::from(s.rough.max())).collect()),
        }
    }

    fn child_session(
        &self,
        state: &BeamState,
        candidate: &Candidate,
        base_rough: &Arc<RoughSolution>,
    ) -> Result<AnalysisSession<'a>, OptimizeError> {
        let mut session = self
            .pipeline
            .session(Arc::clone(&state.grid))
            .with_topology_deltas(&candidate.deltas)?;
        if self.config.warm_start {
            // Seed from the *root* rough solution, not the parent's:
            // a warm solve may stop as soon as it reaches its seed's
            // residual, so chaining seeds down a beam path would let
            // each generation coast on the last one's answer and
            // under-report its own edit. Anchoring every child to the
            // base keeps the early exit honest — it only fires when
            // the cumulative edit really is small.
            session = session.with_rough_warm_start(Arc::clone(base_rough));
        }
        Ok(session)
    }

    /// Runs the closed loop from `base`, returning the winner and the
    /// full trajectory. Deterministic: two runs with the same base,
    /// config and pipeline produce byte-identical reports at any
    /// thread count and any cache state.
    ///
    /// # Errors
    ///
    /// Returns [`OptimizeError`] when the base design is unanalyzable,
    /// a generated edit fails validation, or the predictor fails.
    pub fn run(&self, base: Arc<PowerGrid>) -> Result<OptimizationReport, OptimizeError> {
        let _span = irf_trace::span("optimize");
        let cfg = &self.config;
        let base_session = self.pipeline.session(Arc::clone(&base));
        let base_stack = base_session.prepare()?;
        let base_rough = base_session.rough_solution()?;
        let baseline_max_drop = self.evaluate(std::slice::from_ref(&base_stack))?[0];
        let mut evaluations = 1usize;

        let mut beam = vec![BeamState {
            fingerprint: base_session.fingerprint(),
            grid: base,
            deltas: Vec::new(),
            labels: Vec::new(),
            cost: 0.0,
            max_drop: baseline_max_drop,
            rough: Arc::clone(&base_rough),
        }];
        let mut trajectory: Vec<IterationRecord> = Vec::new();
        let mut best_max_drop = baseline_max_drop;
        // All target-meeting states seen so far, for cheapest-winner
        // selection: (cost, fingerprint, beam-state payload).
        let mut met: Vec<BeamState> = Vec::new();
        if baseline_max_drop <= cfg.target_max_drop {
            met.push(clone_state(&beam[0]));
        }

        let mut stop = if met.is_empty() {
            None
        } else {
            Some(StopReason::TargetMet)
        };

        let mut iteration = 0usize;
        while stop.is_none() && iteration < cfg.max_iterations {
            iteration += 1;
            let mut span = irf_trace::span("opt_iteration");
            span.attr("iteration", iteration);

            // Expand every beam state with its affordable top
            // candidates, in deterministic order.
            let mut expansions: Vec<BeamState> = Vec::new();
            let mut stacks: Vec<Arc<PreparedStack>> = Vec::new();
            let mut hit_eval_limit = false;
            let mut over_budget = 0usize;
            'expand: for state in &beam {
                let mut candidates =
                    self.generator
                        .generate(&state.grid, &state.rough.drops, &self.cost_model);
                let before = candidates.len();
                candidates.retain(|c| state.cost + c.cost <= cfg.metal_budget);
                over_budget += before - candidates.len();
                candidates.truncate(cfg.candidates_per_state);
                for candidate in &candidates {
                    if evaluations >= cfg.max_evaluations {
                        hit_eval_limit = true;
                        break 'expand;
                    }
                    let session = self.child_session(state, candidate, &base_rough)?;
                    let stack = session.prepare()?;
                    let rough = session.rough_solution()?;
                    evaluations += 1;
                    let mut deltas = state.deltas.clone();
                    deltas.extend_from_slice(&candidate.deltas);
                    let mut labels = state.labels.clone();
                    labels.push(candidate.label.clone());
                    expansions.push(BeamState {
                        fingerprint: session.fingerprint(),
                        grid: Arc::clone(session.grid()),
                        deltas,
                        labels,
                        cost: state.cost + candidate.cost,
                        max_drop: f64::NAN, // filled from the batch below
                        rough,
                    });
                    stacks.push(stack);
                }
            }

            if expansions.is_empty() {
                stop = Some(if hit_eval_limit {
                    StopReason::EvaluationLimit
                } else if over_budget > 0 {
                    StopReason::BudgetExhausted
                } else {
                    StopReason::NoImprovement
                });
                break;
            }

            // One batched evaluation for the whole iteration.
            let evaluated = stacks.len();
            let drops = self.evaluate(&stacks)?;
            for (state, drop) in expansions.iter_mut().zip(&drops) {
                state.max_drop = *drop;
                if *drop <= cfg.target_max_drop {
                    met.push(clone_state(state));
                }
            }

            // Pool, sort Pareto-first, dedup by design, prune to k.
            let mut pool: Vec<BeamState> = beam.drain(..).chain(expansions).collect();
            pool.sort_by(|a, b| {
                a.max_drop
                    .total_cmp(&b.max_drop)
                    .then(a.cost.total_cmp(&b.cost))
                    .then(a.fingerprint.cmp(&b.fingerprint))
            });
            let mut seen: Vec<u64> = Vec::new();
            pool.retain(|s| {
                if seen.contains(&s.fingerprint) {
                    false
                } else {
                    seen.push(s.fingerprint);
                    true
                }
            });
            pool.truncate(cfg.beam_width.max(1));
            beam = pool;

            let best = &beam[0];
            trajectory.push(IterationRecord {
                iteration,
                evaluated,
                best_max_drop: best.max_drop,
                best_cost: best.cost,
                best_fingerprint: best.fingerprint,
                best_labels: best.labels.clone(),
            });

            if !met.is_empty() {
                stop = Some(StopReason::TargetMet);
            } else if hit_eval_limit {
                stop = Some(StopReason::EvaluationLimit);
            } else if best.max_drop >= best_max_drop {
                stop = Some(StopReason::NoImprovement);
            }
            best_max_drop = best_max_drop.min(best.max_drop);
        }

        let stop_reason = stop.unwrap_or(StopReason::IterationLimit);

        // The winner: cheapest target-meeting state when the loop
        // closed, the Pareto-best beam state otherwise.
        let winner_state = if met.is_empty() {
            clone_state(&beam[0])
        } else {
            met.sort_by(|a, b| {
                a.cost
                    .total_cmp(&b.cost)
                    .then(a.max_drop.total_cmp(&b.max_drop))
                    .then(a.fingerprint.cmp(&b.fingerprint))
            });
            clone_state(&met[0])
        };
        let target_met = winner_state.max_drop <= cfg.target_max_drop;

        Ok(OptimizationReport {
            baseline_max_drop,
            target_max_drop: cfg.target_max_drop,
            metal_budget: cfg.metal_budget,
            stop_reason,
            target_met,
            evaluations,
            trajectory,
            winner: WinnerPlan {
                grid: winner_state.grid,
                deltas: winner_state.deltas,
                labels: winner_state.labels,
                max_drop: winner_state.max_drop,
                metal_cost: winner_state.cost,
                fingerprint: winner_state.fingerprint,
            },
        })
    }
}

fn clone_state(s: &BeamState) -> BeamState {
    BeamState {
        grid: Arc::clone(&s.grid),
        deltas: s.deltas.clone(),
        labels: s.labels.clone(),
        cost: s.cost,
        max_drop: s.max_drop,
        fingerprint: s.fingerprint,
        rough: Arc::clone(&s.rough),
    }
}
