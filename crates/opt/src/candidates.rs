//! Deterministic candidate generation from parsed PDN geometry and a
//! rough drop map.
//!
//! The generator reads per-node voltage drops from the base analysis,
//! derives per-segment recoverable voltage (the drop *across* each
//! resistive segment — exactly the voltage a wider wire would claw
//! back) and per-segment current, and emits typed [`TopologyDelta`]
//! plans: strap widening on congested layers, via ladders at
//! worst-drop layer crossings, and segment upsizing along the
//! highest-current paths. Output order is fully deterministic —
//! sorted by predicted benefit, then cost, then label.

use crate::cost::CostModel;
use ir_fusion::TopologyDelta;
use irf_pg::PowerGrid;

/// One proposed edit plan: the typed deltas plus the
/// `(predicted worst-drop delta, metal cost)` pair the optimizer
/// ranks it by.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Human-readable identity, e.g. `strap:m3@0.5` — stable across
    /// runs and thread counts, used for trajectory reporting.
    pub label: String,
    /// The typed edits this candidate applies.
    pub deltas: Vec<TopologyDelta>,
    /// Metal cost under the optimizer's [`CostModel`], priced against
    /// the grid the candidate was generated from.
    pub cost: f64,
    /// Heuristic predicted reduction of the worst recoverable segment
    /// voltage (volts) — a ranking signal, not a solver result.
    pub predicted_delta: f64,
}

/// Tuning knobs for [`CandidateGenerator`].
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Resistance scales tried for whole-layer strap widening
    /// (each `< 1`; `0.5` doubles strap width).
    pub strap_scales: Vec<f64>,
    /// Resistance scale for via-ladder candidates (`0.5` doubles the
    /// cut count between a layer pair).
    pub via_scale: f64,
    /// Resistance scale for single-segment upsizing.
    pub segment_scale: f64,
    /// How many of the highest-voltage segments get individual
    /// upsizing candidates.
    pub max_segment_candidates: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            strap_scales: vec![0.5, 0.7],
            via_scale: 0.5,
            segment_scale: 0.5,
            max_segment_candidates: 4,
        }
    }
}

/// Deterministic candidate generator over a parsed [`PowerGrid`].
#[derive(Debug, Clone, Default)]
pub struct CandidateGenerator {
    config: GeneratorConfig,
}

impl CandidateGenerator {
    /// A generator with the given tuning knobs.
    #[must_use]
    pub fn new(config: GeneratorConfig) -> Self {
        CandidateGenerator { config }
    }

    /// The generator's configuration.
    #[must_use]
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Emits candidates for `grid` given the base analysis's per-node
    /// voltage drops (full node space, as in
    /// [`ir_fusion::RoughSolution::drops`]), each priced under `cost`.
    /// Output is sorted by `(predicted_delta desc, cost asc, label
    /// asc)` and independent of thread count and cache state.
    ///
    /// # Panics
    ///
    /// Panics if `drops` is shorter than the grid's node list.
    #[must_use]
    pub fn generate(&self, grid: &PowerGrid, drops: &[f64], cost: &CostModel) -> Vec<Candidate> {
        assert!(
            drops.len() >= grid.nodes.len(),
            "drops must cover the node space"
        );
        // Per-segment recoverable voltage: the drop across the segment.
        let volts: Vec<f64> = grid
            .segments
            .iter()
            .map(|s| (drops[s.a] - drops[s.b]).abs())
            .collect();

        let mut out = Vec::new();

        // Strap widening: one candidate per (strap layer, scale),
        // scored by the worst segment voltage on that layer.
        let mut layers: Vec<(u32, f64)> = Vec::new();
        for (i, s) in grid.segments.iter().enumerate() {
            let (la, lb) = (grid.nodes[s.a].layer, grid.nodes[s.b].layer);
            if la == lb {
                match layers.iter_mut().find(|(l, _)| *l == la) {
                    Some(entry) => entry.1 = entry.1.max(volts[i]),
                    None => layers.push((la, volts[i])),
                }
            }
        }
        layers.sort_unstable_by_key(|(l, _)| *l);
        for &(layer, worst) in &layers {
            for &scale in &self.config.strap_scales {
                let delta = TopologyDelta::Strap { layer, scale };
                out.push(Candidate {
                    label: format!("strap:m{layer}@{scale}"),
                    cost: cost.delta_cost(grid, &delta),
                    deltas: vec![delta],
                    predicted_delta: (1.0 - scale) * worst,
                });
            }
        }

        // Via ladders: one candidate per layer pair, scored by the
        // worst via-segment voltage (the drop-map hotspot a denser
        // ladder would relieve).
        let mut pairs: Vec<(u32, u32, f64)> = Vec::new();
        for (i, s) in grid.segments.iter().enumerate() {
            let (la, lb) = (grid.nodes[s.a].layer, grid.nodes[s.b].layer);
            if la != lb {
                let (lo, hi) = (la.min(lb), la.max(lb));
                match pairs.iter_mut().find(|(a, b, _)| (*a, *b) == (lo, hi)) {
                    Some(entry) => entry.2 = entry.2.max(volts[i]),
                    None => pairs.push((lo, hi, volts[i])),
                }
            }
        }
        pairs.sort_unstable_by_key(|&(a, b, _)| (a, b));
        let via_scale = self.config.via_scale;
        for &(lower, upper, worst) in &pairs {
            let delta = TopologyDelta::Via {
                lower,
                upper,
                scale: via_scale,
            };
            out.push(Candidate {
                label: format!("via:m{lower}-m{upper}@{via_scale}"),
                cost: cost.delta_cost(grid, &delta),
                deltas: vec![delta],
                predicted_delta: (1.0 - via_scale) * worst,
            });
        }

        // Segment upsizing along the highest-current paths: the top-N
        // segments by recoverable voltage (ties break on lower index).
        let mut ranked: Vec<usize> = (0..grid.segments.len()).collect();
        ranked.sort_by(|&a, &b| volts[b].total_cmp(&volts[a]).then(a.cmp(&b)));
        let seg_scale = self.config.segment_scale;
        for &i in ranked.iter().take(self.config.max_segment_candidates) {
            if volts[i] <= 0.0 {
                break;
            }
            let ohms = grid.segments[i].ohms * seg_scale;
            let delta = TopologyDelta::Segment { segment: i, ohms };
            out.push(Candidate {
                label: format!("seg:{i}@{seg_scale}"),
                cost: cost.delta_cost(grid, &delta),
                deltas: vec![delta],
                predicted_delta: (1.0 - seg_scale) * volts[i],
            });
        }

        out.sort_by(|a, b| {
            b.predicted_delta
                .total_cmp(&a.predicted_delta)
                .then(a.cost.total_cmp(&b.cost))
                .then(a.label.cmp(&b.label))
        });
        out
    }
}
