//! `irf-opt`: the closed-loop PDN optimizer for IR-Fusion.
//!
//! Given a parsed power grid and an analysis pipeline, this crate
//! proposes typed topology edits ([`CandidateGenerator`]), prices them
//! under a configurable metal budget ([`CostModel`]), and drives a
//! deterministic beam-search loop ([`Optimizer`]) through the
//! stage-graph what-if machinery until the worst-case IR drop meets a
//! target, the budget runs out, or improvement stalls. Every run is a
//! pure function of (grid, config, pipeline configuration) —
//! trajectories are byte-identical at any thread count and any cache
//! state, which the serving layer and bench gate rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod candidates;
mod cost;
mod optimizer;

pub use candidates::{Candidate, CandidateGenerator, GeneratorConfig};
pub use cost::CostModel;
pub use optimizer::{
    BatchPredictor, IterationRecord, OptimizationReport, OptimizeError, Optimizer, OptimizerConfig,
    StopReason, WinnerPlan,
};
