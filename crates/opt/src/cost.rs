//! Metal-area cost model for topology edits.
//!
//! Every candidate the optimizer considers carries a scalar *metal
//! cost*: an estimate of the extra routing resource (track area, via
//! cuts) the edit spends. Costs are what keep the closed loop honest —
//! without them "widen everything" always wins.

use ir_fusion::TopologyDelta;
use irf_pg::PowerGrid;

/// Configurable per-layer metal cost model.
///
/// The model prices a [`TopologyDelta`] by the extra conductance it
/// buys: scaling a segment's resistance by `s < 1` means widening the
/// wire (or adding parallel via cuts) by a factor `1/s`, i.e. spending
/// `1/s - 1` extra units of metal per unit of wire already there.
/// Strap and segment edits are weighted by Manhattan wire length and a
/// per-layer weight (upper layers are usually scarcer); via edits by a
/// flat per-cut weight. Narrowing (`s >= 1`) is free — the model
/// prices resource *spent*, not saved.
#[derive(Debug, Clone)]
pub struct CostModel {
    layer_weights: Vec<(u32, f64)>,
    default_weight: f64,
    via_weight: f64,
    length_scale: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            layer_weights: Vec::new(),
            default_weight: 1.0,
            via_weight: 1.0,
            length_scale: 1e-3,
        }
    }
}

impl CostModel {
    /// Overrides the cost weight of one metal layer (higher = scarcer).
    #[must_use]
    pub fn with_layer_weight(mut self, layer: u32, weight: f64) -> Self {
        match self.layer_weights.iter_mut().find(|(l, _)| *l == layer) {
            Some(entry) => entry.1 = weight,
            None => self.layer_weights.push((layer, weight)),
        }
        self
    }

    /// Sets the weight used for layers without an explicit override.
    #[must_use]
    pub fn with_default_weight(mut self, weight: f64) -> Self {
        self.default_weight = weight;
        self
    }

    /// Sets the flat per-via-cut weight.
    #[must_use]
    pub fn with_via_weight(mut self, weight: f64) -> Self {
        self.via_weight = weight;
        self
    }

    /// Sets the database-unit-to-cost length scale for wire edits.
    #[must_use]
    pub fn with_length_scale(mut self, scale: f64) -> Self {
        self.length_scale = scale;
        self
    }

    /// The effective weight of `layer`.
    #[must_use]
    pub fn layer_weight(&self, layer: u32) -> f64 {
        self.layer_weights
            .iter()
            .find(|(l, _)| *l == layer)
            .map_or(self.default_weight, |(_, w)| *w)
    }

    /// Manhattan length of segment `i` in cost units.
    fn segment_length(&self, grid: &PowerGrid, i: usize) -> f64 {
        let s = &grid.segments[i];
        let (a, b) = (&grid.nodes[s.a], &grid.nodes[s.b]);
        let len = (a.x - b.x).abs() + (a.y - b.y).abs();
        #[allow(clippy::cast_precision_loss)]
        let len = len as f64;
        len * self.length_scale
    }

    /// Metal cost of applying one delta to `grid` (its current state —
    /// chained edits should be priced against the progressively edited
    /// grid). Deltas that match nothing cost zero.
    #[must_use]
    pub fn delta_cost(&self, grid: &PowerGrid, delta: &TopologyDelta) -> f64 {
        match *delta {
            TopologyDelta::Strap { layer, scale } => {
                let extra = (1.0 / scale - 1.0).max(0.0);
                let weight = self.layer_weight(layer);
                (0..grid.segments.len())
                    .filter(|&i| {
                        let s = &grid.segments[i];
                        grid.nodes[s.a].layer == layer && grid.nodes[s.b].layer == layer
                    })
                    .map(|i| weight * self.segment_length(grid, i) * extra)
                    .sum()
            }
            TopologyDelta::Via {
                lower,
                upper,
                scale,
            } => {
                let extra = (1.0 / scale - 1.0).max(0.0);
                let matched = grid
                    .segments
                    .iter()
                    .filter(|s| {
                        let (la, lb) = (grid.nodes[s.a].layer, grid.nodes[s.b].layer);
                        (la, lb) == (lower, upper) || (la, lb) == (upper, lower)
                    })
                    .count();
                #[allow(clippy::cast_precision_loss)]
                let matched = matched as f64;
                matched * self.via_weight * extra
            }
            TopologyDelta::Segment { segment, ohms } => {
                if segment >= grid.segments.len() || ohms <= 0.0 {
                    return 0.0;
                }
                let s = &grid.segments[segment];
                let old = s.ohms;
                let extra = (old / ohms - 1.0).max(0.0);
                let (la, lb) = (grid.nodes[s.a].layer, grid.nodes[s.b].layer);
                if la == lb {
                    // A wire: extra width over the segment's length,
                    // never cheaper than one length unit so zero-length
                    // stubs still carry a price.
                    let len = self.segment_length(grid, segment).max(self.length_scale);
                    self.layer_weight(la) * len * extra
                } else {
                    // A via: upsizing means extra parallel cuts.
                    self.via_weight * extra
                }
            }
        }
    }

    /// Total metal cost of a delta plan, priced progressively: each
    /// delta is costed against the grid with all previous deltas
    /// applied, matching how the optimizer accumulates cost along a
    /// beam path. Deltas that fail to apply are priced against the
    /// grid as-is and skipped.
    #[must_use]
    pub fn plan_cost(&self, grid: &PowerGrid, deltas: &[TopologyDelta]) -> f64 {
        let mut work = grid.clone();
        let mut total = 0.0;
        for d in deltas {
            total += self.delta_cost(&work, d);
            let _ = ir_fusion::apply_topology_deltas(&mut work, std::slice::from_ref(d));
        }
        total
    }
}
