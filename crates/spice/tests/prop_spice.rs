//! Property-based tests for the SPICE front end.

use irf_spice::{parse, write, Netlist};
use proptest::prelude::*;

/// Strategy: a syntactically valid node name.
fn node_name() -> impl Strategy<Value = String> {
    prop_oneof![
        // ICCAD-style coordinates.
        (1u32..=9, 0i64..100_000, 0i64..100_000)
            .prop_map(|(m, x, y)| format!("n1_m{m}_{x}_{y}")),
        // Free-form identifiers.
        "[a-z][a-z0-9]{0,8}".prop_map(|s| s),
    ]
}

/// Strategy: a whole netlist as element tuples.
#[allow(clippy::type_complexity)]
fn elements() -> impl Strategy<Value = Vec<(u8, String, String, f64)>> {
    proptest::collection::vec(
        (
            0u8..3,
            node_name(),
            node_name(),
            prop_oneof![1e-6f64..1e6, Just(1.0)],
        ),
        1..40,
    )
}

fn build_source(elems: &[(u8, String, String, f64)]) -> String {
    let mut src = String::from("* generated\n");
    for (i, (kind, a, b, v)) in elems.iter().enumerate() {
        let prefix = match kind {
            0 => 'R',
            1 => 'I',
            _ => 'V',
        };
        src.push_str(&format!("{prefix}{i} {a} {b} {v:e}\n"));
    }
    src.push_str(".end\n");
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parse_never_panics_on_arbitrary_text(s in "\\PC{0,200}") {
        let _ = parse(&s);
    }

    #[test]
    fn generated_netlists_parse(elems in elements()) {
        let src = build_source(&elems);
        let n = parse(&src).expect("generated netlists are valid");
        let total = n.resistors().len() + n.current_sources().len() + n.voltage_sources().len();
        prop_assert_eq!(total, elems.len());
    }

    #[test]
    fn write_parse_roundtrip(elems in elements()) {
        let src = build_source(&elems);
        let a: Netlist = parse(&src).expect("valid");
        let b = parse(&write(&a)).expect("round-trips");
        prop_assert_eq!(a.resistors().len(), b.resistors().len());
        // Values survive exactly (the writer prints full precision).
        for (ra, rb) in a.resistors().iter().zip(b.resistors()) {
            prop_assert_eq!(ra.ohms, rb.ohms);
        }
        for (ia, ib) in a.current_sources().iter().zip(b.current_sources()) {
            prop_assert_eq!(ia.amps, ib.amps);
        }
    }

    #[test]
    fn interning_is_stable_across_duplicates(name in node_name()) {
        let src = format!("R1 {name} other 1.0\nR2 {name} other2 2.0\n");
        let n = parse(&src).expect("valid");
        prop_assert_eq!(n.resistors()[0].a, n.resistors()[1].a);
    }

    #[test]
    fn spice_numbers_roundtrip(v in -1e9f64..1e9) {
        let s = irf_spice::value::format_spice_number(v);
        let back = irf_spice::value::parse_spice_number(&s).expect("formatted parses");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn si_suffix_scaling_is_multiplicative(base in 0.001f64..999.0) {
        let k = irf_spice::value::parse_spice_number(&format!("{base}k")).unwrap();
        let m = irf_spice::value::parse_spice_number(&format!("{base}m")).unwrap();
        prop_assert!((k / (base * 1e3) - 1.0).abs() < 1e-12);
        prop_assert!((m / (base * 1e-3) - 1.0).abs() < 1e-12);
    }
}
