//! Randomized-but-deterministic property tests for the SPICE front
//! end (fixed seeds, exact reproduction on failure).

use irf_runtime::Xoshiro256pp;
use irf_spice::{parse, write, Netlist};

const CASES: u64 = 64;

/// A syntactically valid node name: ICCAD-style coordinates or a
/// free-form lowercase identifier.
fn node_name(rng: &mut Xoshiro256pp) -> String {
    if rng.random::<bool>() {
        let m = rng.random_range(1u32..=9);
        let x = rng.random_range(0i64..100_000);
        let y = rng.random_range(0i64..100_000);
        format!("n1_m{m}_{x}_{y}")
    } else {
        let len = rng.random_range(1usize..=9);
        (0..len)
            .map(|i| {
                let alphabet: &[u8] = if i == 0 {
                    b"abcdefghijklmnopqrstuvwxyz"
                } else {
                    b"abcdefghijklmnopqrstuvwxyz0123456789"
                };
                alphabet[rng.random_range(0usize..alphabet.len())] as char
            })
            .collect()
    }
}

/// A whole netlist as element tuples `(kind, node_a, node_b, value)`.
fn elements(rng: &mut Xoshiro256pp) -> Vec<(u8, String, String, f64)> {
    let len = rng.random_range(1usize..40);
    (0..len)
        .map(|_| {
            let kind = rng.random_range(0u32..3) as u8;
            let a = node_name(rng);
            let b = node_name(rng);
            let v = if rng.random::<bool>() {
                rng.random_range(1e-6f64..1e6)
            } else {
                1.0
            };
            (kind, a, b, v)
        })
        .collect()
}

fn build_source(elems: &[(u8, String, String, f64)]) -> String {
    let mut src = String::from("* generated\n");
    for (i, (kind, a, b, v)) in elems.iter().enumerate() {
        let prefix = match kind {
            0 => 'R',
            1 => 'I',
            _ => 'V',
        };
        src.push_str(&format!("{prefix}{i} {a} {b} {v:e}\n"));
    }
    src.push_str(".end\n");
    src
}

#[test]
fn parse_never_panics_on_arbitrary_text() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5C_01);
    for _ in 0..CASES {
        // Printable-ish soup: ASCII printables, newlines, and the
        // occasional multi-byte character.
        let len = rng.random_range(0usize..200);
        let s: String = (0..len)
            .map(|_| match rng.random_range(0u32..20) {
                0 => '\n',
                1 => '\t',
                2 => 'é',
                3 => '→',
                _ => (rng.random_range(0x20u32..0x7F) as u8) as char,
            })
            .collect();
        let _ = parse(&s);
    }
}

#[test]
fn generated_netlists_parse() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5C_02);
    for _ in 0..CASES {
        let elems = elements(&mut rng);
        let src = build_source(&elems);
        let n = parse(&src).expect("generated netlists are valid");
        let total = n.resistors().len() + n.current_sources().len() + n.voltage_sources().len();
        assert_eq!(total, elems.len());
    }
}

#[test]
fn write_parse_roundtrip() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5C_03);
    for _ in 0..CASES {
        let elems = elements(&mut rng);
        let src = build_source(&elems);
        let a: Netlist = parse(&src).expect("valid");
        let b = parse(&write(&a)).expect("round-trips");
        assert_eq!(a.resistors().len(), b.resistors().len());
        // Values survive exactly (the writer prints full precision).
        for (ra, rb) in a.resistors().iter().zip(b.resistors()) {
            assert_eq!(ra.ohms, rb.ohms);
        }
        for (ia, ib) in a.current_sources().iter().zip(b.current_sources()) {
            assert_eq!(ia.amps, ib.amps);
        }
    }
}

#[test]
fn interning_is_stable_across_duplicates() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5C_04);
    for _ in 0..CASES {
        let name = node_name(&mut rng);
        let src = format!("R1 {name} other 1.0\nR2 {name} other2 2.0\n");
        let n = parse(&src).expect("valid");
        assert_eq!(n.resistors()[0].a, n.resistors()[1].a);
    }
}

#[test]
fn spice_numbers_roundtrip() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5C_05);
    for _ in 0..CASES {
        let v = rng.random_range(-1e9f64..1e9);
        let s = irf_spice::value::format_spice_number(v);
        let back = irf_spice::value::parse_spice_number(&s).expect("formatted parses");
        assert_eq!(back, v);
    }
}

#[test]
fn si_suffix_scaling_is_multiplicative() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5C_06);
    for _ in 0..CASES {
        let base = rng.random_range(0.001f64..999.0);
        let k = irf_spice::value::parse_spice_number(&format!("{base}k")).unwrap();
        let m = irf_spice::value::parse_spice_number(&format!("{base}m")).unwrap();
        assert!((k / (base * 1e3) - 1.0).abs() < 1e-12);
        assert!((m / (base * 1e-3) - 1.0).abs() < 1e-12);
    }
}
