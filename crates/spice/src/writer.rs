//! Netlist serialization back to SPICE text.

use crate::netlist::Netlist;
use crate::value::format_spice_number;
use std::fmt::Write as _;

/// Serializes a netlist to SPICE source.
///
/// The output parses back to an equivalent netlist via
/// [`crate::parse`] (same elements, values, and node names), which is
/// how the synthetic dataset generator feeds designs through the same
/// front door as real designs.
///
/// # Example
///
/// ```
/// let n = irf_spice::parse("R1 a b 2.0\n.end\n")?;
/// let text = irf_spice::write(&n);
/// let again = irf_spice::parse(&text)?;
/// assert_eq!(n.resistors(), again.resistors());
/// # Ok::<(), irf_spice::ParseError>(())
/// ```
#[must_use]
pub fn write(netlist: &Netlist) -> String {
    let mut out = String::new();
    out.push_str("* power-grid netlist written by irf-spice\n");
    for r in netlist.resistors() {
        let _ = writeln!(
            out,
            "{} {} {} {}",
            r.name,
            netlist.node(r.a).name,
            netlist.node(r.b).name,
            format_spice_number(r.ohms)
        );
    }
    for i in netlist.current_sources() {
        let _ = writeln!(
            out,
            "{} {} {} {}",
            i.name,
            netlist.node(i.from).name,
            netlist.node(i.to).name,
            format_spice_number(i.amps)
        );
    }
    for v in netlist.voltage_sources() {
        let _ = writeln!(
            out,
            "{} {} {} {}",
            v.name,
            netlist.node(v.plus).name,
            netlist.node(v.minus).name,
            format_spice_number(v.volts)
        );
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = "\
R1 n1_m1_0_0 n1_m1_1000_0 0.5
R2 n1_m4_0_0 n1_m1_0_0 0.1
Rvia n1_m4_500_0 n1_m1_1000_0 0.05
I1 n1_m1_1000_0 0 1m
V1 n1_m4_0_0 0 1.1
.end
";

    #[test]
    fn roundtrip_preserves_elements() {
        let a = parse(SRC).expect("parses");
        let text = write(&a);
        let b = parse(&text).expect("reparses");
        assert_eq!(a.resistors(), b.resistors());
        assert_eq!(a.current_sources(), b.current_sources());
        assert_eq!(a.voltage_sources(), b.voltage_sources());
    }

    #[test]
    fn output_ends_with_end_card() {
        let n = parse("R1 a b 1\n").expect("parses");
        assert!(write(&n).ends_with(".end\n"));
    }

    #[test]
    fn empty_netlist_writes_header_only() {
        let n = Netlist::new();
        let text = write(&n);
        assert!(text.starts_with('*'));
        assert!(text.contains(".end"));
    }
}
