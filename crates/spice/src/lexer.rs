//! Logical-line lexer: comments, blank lines and `+` continuations.
//!
//! Two layers:
//!
//! - [`chunk_source`] splits raw source into [`SourceChunk`]s whose
//!   boundaries fall only on *card-start* lines (never inside a `+`
//!   continuation run), so chunks can be lexed independently and in
//!   parallel;
//! - [`logical_line_refs`] lexes one chunk into zero-copy
//!   [`LineRef`]s whose fields borrow the source text.
//!
//! The owned [`logical_lines`] view is kept for callers that want a
//! self-contained result.

/// A logical netlist line after continuation merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalLine {
    /// 1-based number of the first physical line.
    pub line: usize,
    /// Whitespace-separated fields of the merged card.
    pub fields: Vec<String>,
}

/// A logical netlist line whose fields borrow the source text
/// (zero-copy variant of [`LogicalLine`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineRef<'a> {
    /// 1-based number of the first physical line.
    pub line: usize,
    /// Whitespace-separated fields of the merged card.
    pub fields: Vec<&'a str>,
}

/// A slice of the source that starts at a card boundary: safe to lex
/// in isolation because no `+` continuation ever crosses into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceChunk<'a> {
    /// The chunk's text (one or more whole physical lines).
    pub text: &'a str,
    /// 1-based number of the chunk's first physical line in the full
    /// source — added to in-chunk offsets so error line numbers
    /// survive chunked parsing.
    pub first_line: usize,
}

/// `true` when a raw physical line *starts* a card: non-empty after
/// comment stripping, not a `*` comment, and not a `+` continuation.
/// Shared with the streaming chunker in [`crate::stream`], which must
/// cut chunks at exactly the same boundaries as [`chunk_source`].
pub(crate) fn is_card_start(raw: &str) -> bool {
    let body = raw.split(['$', ';']).next().unwrap_or("").trim();
    !body.is_empty() && !body.starts_with('*') && !body.starts_with('+')
}

/// Splits the source into chunks of roughly `cards_per_chunk` cards,
/// cutting only at card-start boundaries so comment and continuation
/// lines always travel with the card they belong to. Lexing each
/// chunk with [`logical_line_refs`] (passing its
/// [`SourceChunk::first_line`]) yields exactly the same logical lines
/// as lexing the whole source at once.
///
/// The chunk boundaries depend only on the source text and
/// `cards_per_chunk` — never on the thread count — which is what
/// keeps the parallel parse bitwise deterministic.
#[must_use]
pub fn chunk_source(src: &str, cards_per_chunk: usize) -> Vec<SourceChunk<'_>> {
    let cards_per_chunk = cards_per_chunk.max(1);
    let mut chunks = Vec::new();
    let mut chunk_start_byte = 0usize;
    let mut chunk_start_line = 1usize;
    let mut cards_in_chunk = 0usize;
    let mut offset = 0usize;
    let mut line_no = 0usize;
    for raw in src.split_inclusive('\n') {
        line_no += 1;
        if is_card_start(raw) {
            if cards_in_chunk >= cards_per_chunk {
                chunks.push(SourceChunk {
                    text: &src[chunk_start_byte..offset],
                    first_line: chunk_start_line,
                });
                chunk_start_byte = offset;
                chunk_start_line = line_no;
                cards_in_chunk = 0;
            }
            cards_in_chunk += 1;
        }
        offset += raw.len();
    }
    if chunk_start_byte < src.len() {
        chunks.push(SourceChunk {
            text: &src[chunk_start_byte..],
            first_line: chunk_start_line,
        });
    }
    chunks
}

/// Lexes SPICE source into zero-copy logical lines; physical line
/// numbers are offset by `first_line` (pass `1` for whole-source
/// lexing, or a [`SourceChunk::first_line`] for a chunk).
///
/// - `*`-prefixed lines and inline `$`/`;` comments are dropped;
/// - blank lines are skipped;
/// - a line starting with `+` continues the previous card.
///
/// A leading `+` with no previous card is reported by the caller
/// ([`crate::parser::parse`]) as
/// [`DanglingContinuation`](crate::error::ParseErrorKind::DanglingContinuation);
/// here it surfaces as a line whose first field is `"+"`.
#[must_use]
pub fn logical_line_refs(src: &str, first_line: usize) -> Vec<LineRef<'_>> {
    let mut out: Vec<LineRef<'_>> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = first_line + idx;
        // Strip inline comments.
        let body = raw.split(['$', ';']).next().unwrap_or("").trim();
        if body.is_empty() || body.starts_with('*') {
            continue;
        }
        if let Some(rest) = body.strip_prefix('+') {
            match out.last_mut() {
                Some(prev) => {
                    prev.fields.extend(rest.split_whitespace());
                    continue;
                }
                None => {
                    // Surface the dangling continuation to the parser.
                    out.push(LineRef {
                        line: line_no,
                        fields: vec!["+"],
                    });
                    continue;
                }
            }
        }
        out.push(LineRef {
            line: line_no,
            fields: body.split_whitespace().collect(),
        });
    }
    out
}

/// Splits SPICE source into owned logical lines (see
/// [`logical_line_refs`] for the zero-copy variant the parallel
/// parser uses).
#[must_use]
pub fn logical_lines(src: &str) -> Vec<LogicalLine> {
    logical_line_refs(src, 1)
        .into_iter()
        .map(|l| LogicalLine {
            line: l.line,
            fields: l.fields.into_iter().map(String::from).collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_blanks_are_skipped() {
        let lines = logical_lines("* header\n\nR1 a b 1.0\n");
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].fields, vec!["R1", "a", "b", "1.0"]);
        assert_eq!(lines[0].line, 3);
    }

    #[test]
    fn continuations_merge() {
        let lines = logical_lines("R1 a\n+ b\n+ 1.0\n");
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].fields, vec!["R1", "a", "b", "1.0"]);
    }

    #[test]
    fn inline_comments_are_stripped() {
        let lines = logical_lines("R1 a b 1.0 $ segment 3\nI1 a 0 1m ; load\n");
        assert_eq!(lines[0].fields.len(), 4);
        assert_eq!(lines[1].fields.len(), 4);
    }

    #[test]
    fn dangling_continuation_is_flagged() {
        let lines = logical_lines("+ oops\n");
        assert_eq!(lines[0].fields[0], "+");
    }

    #[test]
    fn chunks_cut_only_at_card_starts() {
        // The continuation and trailing comment must travel with R2.
        let src = "* hdr\nR1 a b 1\nR2 c\n+ d 2\n* tail\nR3 e f 3\n";
        let chunks = chunk_source(src, 1);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].text, "* hdr\nR1 a b 1\n");
        assert_eq!(chunks[0].first_line, 1);
        assert_eq!(chunks[1].text, "R2 c\n+ d 2\n* tail\n");
        assert_eq!(chunks[1].first_line, 3);
        assert_eq!(chunks[2].text, "R3 e f 3\n");
        assert_eq!(chunks[2].first_line, 6);
    }

    #[test]
    fn chunked_lexing_equals_whole_source_lexing() {
        let src = "* hdr\nR1 a b 1\n\nR2 c\n+ d 2 $ x\nI1 c 0 1m\n.end\n";
        let whole = logical_lines(src);
        for cards in 1..=4 {
            let chunked: Vec<LogicalLine> = chunk_source(src, cards)
                .iter()
                .flat_map(|c| {
                    logical_line_refs(c.text, c.first_line)
                        .into_iter()
                        .map(|l| LogicalLine {
                            line: l.line,
                            fields: l.fields.into_iter().map(String::from).collect(),
                        })
                })
                .collect();
            assert_eq!(whole, chunked, "cards_per_chunk={cards}");
        }
    }

    #[test]
    fn chunking_handles_missing_trailing_newline() {
        let chunks = chunk_source("R1 a b 1\nR2 c d 2", 1);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1].text, "R2 c d 2");
        assert_eq!(chunks[1].first_line, 2);
    }

    #[test]
    fn empty_source_has_no_chunks() {
        assert!(chunk_source("", 8).is_empty());
    }
}
