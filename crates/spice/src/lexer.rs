//! Logical-line lexer: comments, blank lines and `+` continuations.

/// A logical netlist line after continuation merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalLine {
    /// 1-based number of the first physical line.
    pub line: usize,
    /// Whitespace-separated fields of the merged card.
    pub fields: Vec<String>,
}

/// Splits SPICE source into logical lines.
///
/// - `*`-prefixed lines and inline `$`/`;` comments are dropped;
/// - blank lines are skipped;
/// - a line starting with `+` continues the previous card.
///
/// A leading `+` with no previous card is reported by the caller
/// ([`crate::parser::parse`]) as
/// [`DanglingContinuation`](crate::error::ParseErrorKind::DanglingContinuation);
/// here it surfaces as a line whose first field is `"+"`.
#[must_use]
pub fn logical_lines(src: &str) -> Vec<LogicalLine> {
    let mut out: Vec<LogicalLine> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        // Strip inline comments.
        let body = raw.split(['$', ';']).next().unwrap_or("").trim();
        if body.is_empty() || body.starts_with('*') {
            continue;
        }
        if let Some(rest) = body.strip_prefix('+') {
            match out.last_mut() {
                Some(prev) => {
                    prev.fields
                        .extend(rest.split_whitespace().map(String::from));
                    continue;
                }
                None => {
                    // Surface the dangling continuation to the parser.
                    out.push(LogicalLine {
                        line: line_no,
                        fields: vec!["+".to_string()],
                    });
                    continue;
                }
            }
        }
        out.push(LogicalLine {
            line: line_no,
            fields: body.split_whitespace().map(String::from).collect(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_blanks_are_skipped() {
        let lines = logical_lines("* header\n\nR1 a b 1.0\n");
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].fields, vec!["R1", "a", "b", "1.0"]);
        assert_eq!(lines[0].line, 3);
    }

    #[test]
    fn continuations_merge() {
        let lines = logical_lines("R1 a\n+ b\n+ 1.0\n");
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].fields, vec!["R1", "a", "b", "1.0"]);
    }

    #[test]
    fn inline_comments_are_stripped() {
        let lines = logical_lines("R1 a b 1.0 $ segment 3\nI1 a 0 1m ; load\n");
        assert_eq!(lines[0].fields.len(), 4);
        assert_eq!(lines[1].fields.len(), 4);
    }

    #[test]
    fn dangling_continuation_is_flagged() {
        let lines = logical_lines("+ oops\n");
        assert_eq!(lines[0].fields[0], "+");
    }
}
