//! Streaming SPICE ingest: parse from any [`BufRead`] source without
//! materializing the file.
//!
//! The batch parser ([`crate::parse`]) holds the whole source text in
//! memory, chunks it at card boundaries, parses chunks in parallel
//! and merges serially. At million-node scale the source alone is
//! hundreds of megabytes, and callers that `read_to_string` before
//! parsing pay that plus the netlist. This module feeds the **same**
//! chunked machinery from a reader instead:
//!
//! 1. [`ChunkReader`] re-implements the card-boundary chunking rule of
//!    [`crate::lexer::chunk_source`] incrementally over
//!    [`BufRead::read_line`] — identical boundaries, identical
//!    `first_line` numbering, but each chunk is an owned `String`
//!    that lives only until it is parsed.
//! 2. [`parse_reader`] pulls batches of a few dozen chunks, parses
//!    each batch in parallel with the exact per-chunk parser the batch
//!    path uses, folds the results into the same serial merger, and
//!    drops the batch. Peak memory is one batch of source text plus
//!    the growing [`Netlist`] — never the whole file.
//! 3. [`visit_cards`] is the card-visitor mode: instead of building a
//!    [`Netlist`], each parsed card is handed to a callback as it
//!    arrives, so `irf-pg` can stamp MNA entries directly and skip
//!    the netlist entirely.
//!
//! # Determinism
//!
//! Chunk boundaries depend only on the bytes and the chunk size —
//! never on the thread count or the reader's buffer size — and the
//! merge is serial in source order. [`parse_reader`] therefore
//! produces a [`Netlist`] **bitwise identical** (node-id assignment,
//! [`Netlist::content_hash`] and all) to [`crate::parse`] on the same
//! bytes, and reports the same first error with the same line number.
//! Tests assert this parity.

use crate::error::ParseError;
use crate::lexer::{is_card_start, SourceChunk};
use crate::netlist::Netlist;
use crate::parser::{parse_chunk, CardKind, ChunkParse, Merger, CARDS_PER_CHUNK};
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

/// How many chunks a streaming batch holds before it is parsed and
/// dropped. Bounds resident source text to roughly
/// `CHUNKS_PER_BATCH * cards_per_chunk` cards (~1–2 MB at default
/// sizes) while still giving the parallel phase enough independent
/// chunks to spread across workers.
const CHUNKS_PER_BATCH: usize = 32;

/// Read-buffer capacity for [`parse_path`] / [`grid-from-path`]-style
/// callers: large enough that syscall overhead vanishes on
/// multi-hundred-MB netlists.
const FILE_BUF_BYTES: usize = 1 << 20;

/// Error from a streaming parse: either the underlying reader failed
/// or the SPICE text was malformed.
#[derive(Debug)]
pub enum StreamError {
    /// The reader returned an I/O error.
    Io(io::Error),
    /// The SPICE text failed to parse (same errors, same line
    /// numbers, as the batch parser).
    Parse(ParseError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "i/o error while reading netlist: {e}"),
            StreamError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Io(e) => Some(e),
            StreamError::Parse(e) => Some(e),
        }
    }
}

impl From<io::Error> for StreamError {
    fn from(e: io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<ParseError> for StreamError {
    fn from(e: ParseError) -> Self {
        StreamError::Parse(e)
    }
}

/// Incremental card-boundary chunker over a [`BufRead`] source.
///
/// Yields owned `(text, first_line)` chunks with exactly the
/// boundaries [`crate::lexer::chunk_source`] would produce on the
/// concatenated bytes: cuts only at card-start lines, comments and
/// `+` continuations travel with their card, the trailing chunk is
/// emitted even when it holds no card, and an empty source yields no
/// chunks.
#[derive(Debug)]
pub struct ChunkReader<R> {
    reader: R,
    cards_per_chunk: usize,
    /// Text of the chunk currently accumulating.
    chunk: String,
    /// 1-based first physical line of the accumulating chunk.
    chunk_first_line: usize,
    cards_in_chunk: usize,
    /// Physical lines read so far.
    line_no: usize,
    /// Scratch for `read_line`.
    line: String,
    done: bool,
}

impl<R: BufRead> ChunkReader<R> {
    /// Wraps `reader` with the default chunk size the batch parser
    /// uses.
    pub fn new(reader: R) -> Self {
        Self::with_chunk_size(reader, CARDS_PER_CHUNK)
    }

    /// Wraps `reader` cutting chunks of roughly `cards_per_chunk`
    /// cards (minimum 1).
    pub fn with_chunk_size(reader: R, cards_per_chunk: usize) -> Self {
        ChunkReader {
            reader,
            cards_per_chunk: cards_per_chunk.max(1),
            chunk: String::new(),
            chunk_first_line: 1,
            cards_in_chunk: 0,
            line_no: 0,
            line: String::new(),
            done: false,
        }
    }

    /// Pulls the next chunk, or `Ok(None)` at end of input.
    ///
    /// # Errors
    ///
    /// Propagates reader errors. Note `read_line` also rejects
    /// non-UTF-8 input with an `InvalidData` error, matching the
    /// `&str` requirement of the batch path.
    pub fn next_chunk(&mut self) -> io::Result<Option<(String, usize)>> {
        if self.done {
            return Ok(None);
        }
        loop {
            self.line.clear();
            let n = self.reader.read_line(&mut self.line)?;
            if n == 0 {
                self.done = true;
                if self.chunk.is_empty() {
                    return Ok(None);
                }
                return Ok(Some((
                    std::mem::take(&mut self.chunk),
                    self.chunk_first_line,
                )));
            }
            self.line_no += 1;
            if is_card_start(&self.line) {
                if self.cards_in_chunk >= self.cards_per_chunk {
                    let out = (std::mem::take(&mut self.chunk), self.chunk_first_line);
                    self.chunk_first_line = self.line_no;
                    self.cards_in_chunk = 1;
                    self.chunk.push_str(&self.line);
                    return Ok(Some(out));
                }
                self.cards_in_chunk += 1;
            }
            self.chunk.push_str(&self.line);
        }
    }
}

/// Drives the streaming pipeline: batches of owned chunks are parsed
/// in parallel with the batch path's per-chunk parser, then handed to
/// `sink` serially in source order. Returns the chunk count.
fn drive<R: BufRead>(
    reader: R,
    cards_per_chunk: usize,
    chunks_per_batch: usize,
    mut sink: impl FnMut(ChunkParse<'_>) -> Result<(), ParseError>,
) -> Result<usize, StreamError> {
    let chunks_per_batch = chunks_per_batch.max(1);
    let mut chunker = ChunkReader::with_chunk_size(reader, cards_per_chunk);
    let mut total_chunks = 0usize;
    loop {
        let mut batch: Vec<(String, usize)> = Vec::with_capacity(chunks_per_batch);
        while batch.len() < chunks_per_batch {
            match chunker.next_chunk()? {
                Some(c) => batch.push(c),
                None => break,
            }
        }
        if batch.is_empty() {
            return Ok(total_chunks);
        }
        total_chunks += batch.len();
        let views: Vec<SourceChunk<'_>> = batch
            .iter()
            .map(|(text, first_line)| SourceChunk {
                text,
                first_line: *first_line,
            })
            .collect();
        let tasks: Vec<_> = views.iter().map(|c| move || parse_chunk(c)).collect();
        for parsed in irf_runtime::par_map(tasks) {
            sink(parsed)?;
        }
        // `batch` (the only copy of this slice of source text) drops
        // here — resident source stays bounded by one batch.
    }
}

/// Streaming equivalent of [`crate::parse`]: reads SPICE text from
/// `reader` and builds a [`Netlist`] without ever holding the whole
/// source in memory.
///
/// The result — node-id assignment, element order,
/// [`Netlist::content_hash`] — is bitwise identical to
/// `crate::parse(&text)` on the same bytes, and the first error (line
/// number included) matches too.
///
/// # Errors
///
/// [`StreamError::Io`] when the reader fails (including non-UTF-8
/// input), [`StreamError::Parse`] for malformed SPICE.
pub fn parse_reader<R: BufRead>(reader: R) -> Result<Netlist, StreamError> {
    parse_reader_chunked(reader, CARDS_PER_CHUNK, CHUNKS_PER_BATCH)
}

/// [`parse_reader`] with explicit chunk and batch sizes — exposed so
/// tests can force many small chunks and batches; results are
/// identical for every `cards_per_chunk >= 1` and
/// `chunks_per_batch >= 1`.
///
/// # Errors
///
/// See [`parse_reader`].
pub fn parse_reader_chunked<R: BufRead>(
    reader: R,
    cards_per_chunk: usize,
    chunks_per_batch: usize,
) -> Result<Netlist, StreamError> {
    let mut span = irf_trace::span("spice_parse_stream");
    let mut merger = Merger::new();
    let n_chunks = drive(reader, cards_per_chunk, chunks_per_batch, |chunk| {
        merger.absorb(chunk)
    })?;
    let netlist = merger.finish();
    irf_trace::registry().counter_add("irf_spice_chunks_total", &[], n_chunks as f64);
    if span.is_recording() {
        span.attr("chunks", n_chunks);
        span.attr("resistors", netlist.resistors().len());
        span.attr("current_sources", netlist.current_sources().len());
        span.attr("voltage_sources", netlist.voltage_sources().len());
    }
    Ok(netlist)
}

/// Opens `path` and streams it through [`parse_reader`] behind a
/// large file buffer. This is the front door for
/// bigger-than-comfortable netlists on disk.
///
/// # Errors
///
/// See [`parse_reader`]; opening the file can also fail with
/// [`StreamError::Io`].
pub fn parse_path(path: impl AsRef<Path>) -> Result<Netlist, StreamError> {
    let file = File::open(path)?;
    parse_reader(BufReader::with_capacity(FILE_BUF_BYTES, file))
}

/// The element class of a [`StreamedCard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamedCardKind {
    /// An `R` card.
    Resistor,
    /// An `I` card (DC current source).
    CurrentSource,
    /// A `V` card (DC voltage source).
    VoltageSource,
}

/// One validated card handed to a [`visit_cards`] callback, fields
/// borrowing the transient chunk text.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamedCard<'a> {
    /// Which element class the card declares.
    pub kind: StreamedCardKind,
    /// The element name (e.g. `R17`), original case.
    pub name: &'a str,
    /// First node name (`plus` / `from` for sources).
    pub a: &'a str,
    /// Second node name (`minus` / `to` for sources).
    pub b: &'a str,
    /// The parsed numeric value (ohms / amps / volts).
    pub value: f64,
    /// 1-based source line the card starts on.
    pub line: usize,
}

/// Card-visitor mode: streams `reader`, validating and parsing every
/// card exactly like [`parse_reader`], but hands each card to `visit`
/// in source order instead of building a [`Netlist`]. This lets
/// `irf-pg` stamp MNA entries as cards arrive with no netlist in
/// memory at all.
///
/// Lexing/parsing still runs chunk-parallel; only the visitor walk is
/// serial, so card order is exactly source order.
///
/// Malformed cards (bad prefixes, missing fields, bad values,
/// dangling continuations) error with the same line numbers as the
/// batch parser. **Not** checked on this path: duplicate element
/// names, which require whole-file state — use [`parse_reader`] when
/// that validation matters, or track names in the visitor.
///
/// # Errors
///
/// [`StreamError::Io`] / [`StreamError::Parse`] as in
/// [`parse_reader`]; a `ParseError` returned by `visit` aborts the
/// stream and is surfaced as [`StreamError::Parse`].
pub fn visit_cards<R, F>(reader: R, mut visit: F) -> Result<(), StreamError>
where
    R: BufRead,
    F: FnMut(&StreamedCard<'_>) -> Result<(), ParseError>,
{
    let mut span = irf_trace::span("spice_visit_stream");
    let mut n_cards = 0usize;
    let n_chunks = drive(reader, CARDS_PER_CHUNK, CHUNKS_PER_BATCH, |chunk| {
        for card in &chunk.cards {
            let Some(value) = card.value else {
                return Err(ParseError {
                    line: card.line,
                    kind: crate::error::ParseErrorKind::InvalidValue(card.value_text.to_string()),
                });
            };
            let kind = match card.kind {
                CardKind::Resistor => StreamedCardKind::Resistor,
                CardKind::Current => StreamedCardKind::CurrentSource,
                CardKind::Voltage => StreamedCardKind::VoltageSource,
            };
            n_cards += 1;
            visit(&StreamedCard {
                kind,
                name: card.name,
                a: card.a,
                b: card.b,
                value,
                line: card.line,
            })?;
        }
        if let Some(error) = chunk.error {
            return Err(error);
        }
        Ok(())
    })?;
    irf_trace::registry().counter_add("irf_spice_chunks_total", &[], n_chunks as f64);
    if span.is_recording() {
        span.attr("chunks", n_chunks);
        span.attr("cards", n_cards);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ParseErrorKind;
    use crate::lexer::chunk_source;
    use crate::parse;
    use std::io::Cursor;

    const TRICKY: &str = "\
* header comment
R1 n1_m1_0_0 n1_m1_1000_0 0.5
R2 n1_m4_0_0 n1_m1_0_0 0.1 $ inline comment

I1 n1_m1_1000_0 0 1m ; other comment
V1 n1_m4_0_0 0 1.1
R3 a
+ b 2.5
.end
";

    fn chunker_matches_chunk_source(src: &str, cards: usize) {
        let want: Vec<(String, usize)> = chunk_source(src, cards)
            .iter()
            .map(|c| (c.text.to_string(), c.first_line))
            .collect();
        let mut got = Vec::new();
        let mut r = ChunkReader::with_chunk_size(Cursor::new(src), cards);
        while let Some(c) = r.next_chunk().expect("no io errors") {
            got.push(c);
        }
        assert_eq!(want, got, "src={src:?} cards={cards}");
    }

    #[test]
    fn chunk_reader_matches_batch_chunker() {
        for cards in [1, 2, 3, 100] {
            chunker_matches_chunk_source(TRICKY, cards);
            chunker_matches_chunk_source("", cards);
            chunker_matches_chunk_source("* only comments\n* here\n", cards);
            chunker_matches_chunk_source("R1 a b 1\nR2 c d 2", cards); // no trailing newline
            chunker_matches_chunk_source("+ dangling\n", cards);
        }
    }

    #[test]
    fn streamed_netlist_is_bitwise_identical_to_batch() {
        let batch = parse(TRICKY).expect("parses");
        for (cards, per_batch) in [(1, 1), (2, 3), (1024, 32)] {
            let streamed =
                parse_reader_chunked(Cursor::new(TRICKY), cards, per_batch).expect("streams");
            assert_eq!(batch, streamed);
            assert_eq!(batch.content_hash(), streamed.content_hash());
        }
    }

    #[test]
    fn streamed_errors_match_batch_line_numbers() {
        let cases = [
            "R1 a b 1\nR1 c d 2\n",        // duplicate
            "R1 a b zz\n",                 // bad value
            "C1 a b 1p\n",                 // unsupported
            "R1 a b 1\nR2 c\n",            // missing fields
            "+ oops\n",                    // dangling continuation
            "R1 a b 1\nR2 c\nR3 d e zz\n", // earliest error wins
        ];
        for src in cases {
            let want = parse(src).unwrap_err();
            let got = match parse_reader_chunked(Cursor::new(src), 1, 2) {
                Err(StreamError::Parse(e)) => e,
                other => panic!("expected parse error for {src:?}, got {other:?}"),
            };
            assert_eq!(want, got, "src={src:?}");
        }
    }

    #[test]
    fn parse_path_roundtrips_a_file() {
        let dir = std::env::temp_dir();
        let path = dir.join("irf_spice_stream_test.sp");
        std::fs::write(&path, TRICKY).expect("writes");
        let streamed = parse_path(&path).expect("parses");
        std::fs::remove_file(&path).ok();
        assert_eq!(streamed, parse(TRICKY).expect("parses"));
    }

    #[test]
    fn visitor_sees_cards_in_source_order_with_values() {
        let mut seen = Vec::new();
        visit_cards(Cursor::new(TRICKY), |card| {
            seen.push((card.kind, card.name.to_string(), card.value, card.line));
            Ok(())
        })
        .expect("streams");
        assert_eq!(seen.len(), 5);
        assert_eq!(
            seen[0],
            (StreamedCardKind::Resistor, "R1".to_string(), 0.5, 2)
        );
        assert_eq!(seen[2].0, StreamedCardKind::CurrentSource);
        assert_eq!(seen[2].2, 1e-3);
        assert_eq!(seen[3].0, StreamedCardKind::VoltageSource);
        assert_eq!(
            seen[4],
            (StreamedCardKind::Resistor, "R3".to_string(), 2.5, 7)
        );
    }

    #[test]
    fn visitor_surfaces_errors_and_stops() {
        let mut count = 0usize;
        let err = visit_cards(Cursor::new("R1 a b 1\nR2 c d zz\nR3 e f 2\n"), |_| {
            count += 1;
            Ok(())
        })
        .unwrap_err();
        match err {
            StreamError::Parse(e) => {
                assert_eq!(e.line, 2);
                assert!(matches!(e.kind, ParseErrorKind::InvalidValue(_)));
            }
            StreamError::Io(e) => panic!("unexpected io error: {e}"),
        }
        assert_eq!(count, 1, "visitor must stop at the first error");
    }

    #[test]
    fn visitor_can_abort_with_its_own_error() {
        let err = visit_cards(Cursor::new("R1 a b 1\nR2 c d 2\n"), |card| {
            if card.name == "R2" {
                Err(ParseError {
                    line: card.line,
                    kind: ParseErrorKind::InvalidValue("visitor says no".into()),
                })
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        match err {
            StreamError::Parse(e) => assert_eq!(e.line, 2),
            StreamError::Io(e) => panic!("unexpected io error: {e}"),
        }
    }

    #[test]
    fn big_source_streams_identically_across_batch_sizes() {
        let mut src = String::from("* generated\nV1 n0 0 1.0\n");
        for i in 0..500 {
            src.push_str(&format!("R{i} n{i} n{} 0.5\n", i + 1));
            if i % 7 == 0 {
                src.push_str("* interleaved comment\n");
            }
        }
        src.push_str("I1 n250 0 2m\n.end\n");
        let batch = parse(&src).expect("parses");
        for (cards, per_batch) in [(3, 1), (16, 4), (1024, 32)] {
            let streamed =
                parse_reader_chunked(Cursor::new(&src), cards, per_batch).expect("streams");
            assert_eq!(batch, streamed, "cards={cards} per_batch={per_batch}");
            assert_eq!(batch.content_hash(), streamed.content_hash());
        }
    }
}
