//! The parsed power-grid netlist.

use std::collections::HashMap;
use std::fmt;

/// Index of an interned circuit node.
///
/// `NodeId::GROUND` is the reference node `0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The SPICE ground / reference node (`0`).
    pub const GROUND: NodeId = NodeId(0);

    /// `true` for the ground node.
    #[must_use]
    pub fn is_ground(self) -> bool {
        self == NodeId::GROUND
    }

    /// Index into [`Netlist::nodes`].
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// Structured information about one interned node.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeInfo {
    /// Original name from the netlist.
    pub name: String,
    /// Metal layer parsed from the `_m<layer>_` convention, if present.
    pub layer: Option<u32>,
    /// X coordinate in database units, if encoded in the name.
    pub x: Option<i64>,
    /// Y coordinate in database units, if encoded in the name.
    pub y: Option<i64>,
}

impl NodeInfo {
    /// Parses the ICCAD-2023 naming convention `n<net>_m<layer>_<x>_<y>`.
    /// Unrecognized names produce a `NodeInfo` with no coordinates.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut info = NodeInfo {
            name: name.to_string(),
            layer: None,
            x: None,
            y: None,
        };
        // Expect: n<net> _ m<layer> _ <x> _ <y>
        let parts: Vec<&str> = name.split('_').collect();
        if parts.len() == 4 {
            let layer = parts[1]
                .strip_prefix('m')
                .or_else(|| parts[1].strip_prefix('M'))
                .and_then(|s| s.parse::<u32>().ok());
            let x = parts[2].parse::<i64>().ok();
            let y = parts[3].parse::<i64>().ok();
            if let (Some(layer), Some(x), Some(y)) = (layer, x, y) {
                info.layer = Some(layer);
                info.x = Some(x);
                info.y = Some(y);
            }
        }
        info
    }
}

/// A resistor element (metal segment or via).
#[derive(Debug, Clone, PartialEq)]
pub struct Resistor {
    /// Element name (e.g. `R12`).
    pub name: String,
    /// First terminal.
    pub a: NodeId,
    /// Second terminal.
    pub b: NodeId,
    /// Resistance in ohms.
    pub ohms: f64,
}

/// A DC current source (cell load). Current flows from `from` to `to`
/// through the source, i.e. a load drawing current out of the grid has
/// `from` on the grid and `to` on ground.
#[derive(Debug, Clone, PartialEq)]
pub struct CurrentSource {
    /// Element name (e.g. `I3`).
    pub name: String,
    /// Source terminal on the grid.
    pub from: NodeId,
    /// Sink terminal (usually ground).
    pub to: NodeId,
    /// Current in amperes.
    pub amps: f64,
}

/// A DC voltage source (power pad).
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageSource {
    /// Element name (e.g. `V1`).
    pub name: String,
    /// Positive terminal (the pad node).
    pub plus: NodeId,
    /// Negative terminal (usually ground).
    pub minus: NodeId,
    /// Voltage in volts.
    pub volts: f64,
}

/// A parsed power-grid netlist.
///
/// Node names are interned; `NodeId(0)` is always ground.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Netlist {
    nodes: Vec<NodeInfo>,
    by_name: HashMap<String, NodeId>,
    resistors: Vec<Resistor>,
    current_sources: Vec<CurrentSource>,
    voltage_sources: Vec<VoltageSource>,
}

impl Netlist {
    /// Creates an empty netlist containing only the ground node.
    #[must_use]
    pub fn new() -> Self {
        let mut n = Netlist {
            nodes: Vec::new(),
            by_name: HashMap::new(),
            resistors: Vec::new(),
            current_sources: Vec::new(),
            voltage_sources: Vec::new(),
        };
        let gid = n.intern("0");
        debug_assert_eq!(gid, NodeId::GROUND);
        n
    }

    /// Interns a node name, returning its id (creating it on first use).
    pub fn intern(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("node count fits u32"));
        self.nodes.push(NodeInfo::from_name(name));
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing node by name.
    #[must_use]
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Information for a node id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this netlist.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &NodeInfo {
        &self.nodes[id.index()]
    }

    /// All nodes, indexable by [`NodeId::index`]. Index 0 is ground.
    #[must_use]
    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// Number of nodes including ground.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Resistor elements.
    #[must_use]
    pub fn resistors(&self) -> &[Resistor] {
        &self.resistors
    }

    /// Current-source elements.
    #[must_use]
    pub fn current_sources(&self) -> &[CurrentSource] {
        &self.current_sources
    }

    /// Voltage-source elements.
    #[must_use]
    pub fn voltage_sources(&self) -> &[VoltageSource] {
        &self.voltage_sources
    }

    /// Adds a resistor.
    pub fn add_resistor(&mut self, r: Resistor) {
        self.resistors.push(r);
    }

    /// Adds a current source.
    pub fn add_current_source(&mut self, i: CurrentSource) {
        self.current_sources.push(i);
    }

    /// Adds a voltage source.
    pub fn add_voltage_source(&mut self, v: VoltageSource) {
        self.voltage_sources.push(v);
    }

    /// The set of metal layers present, ascending.
    #[must_use]
    pub fn layers(&self) -> Vec<u32> {
        let mut layers: Vec<u32> = self.nodes.iter().filter_map(|n| n.layer).collect();
        layers.sort_unstable();
        layers.dedup();
        layers
    }

    /// Bounding box `(x_min, y_min, x_max, y_max)` over nodes with
    /// coordinates; `None` when no node has coordinates.
    #[must_use]
    pub fn bounding_box(&self) -> Option<(i64, i64, i64, i64)> {
        let mut bb: Option<(i64, i64, i64, i64)> = None;
        for n in &self.nodes {
            if let (Some(x), Some(y)) = (n.x, n.y) {
                bb = Some(match bb {
                    None => (x, y, x, y),
                    Some((x0, y0, x1, y1)) => (x0.min(x), y0.min(y), x1.max(x), y1.max(y)),
                });
            }
        }
        bb
    }

    /// Total load current drawn by all current sources (amperes).
    #[must_use]
    pub fn total_load_current(&self) -> f64 {
        self.current_sources.iter().map(|i| i.amps).sum()
    }

    /// Stable content fingerprint of the whole design (FNV-1a 64).
    ///
    /// Hashes every node (name and interned order) and every element
    /// with its exact parameter bits, so any electrical or naming
    /// change yields a different value, while re-parsing the same
    /// source — in this or any other process — always reproduces it.
    /// This is the root fingerprint the stage-graph pipeline derives
    /// its per-stage cache keys from.
    #[must_use]
    pub fn content_hash(&self) -> u64 {
        let mut h = crate::hash::Fnv1a::new();
        h.write_u64(self.nodes.len() as u64);
        for n in &self.nodes {
            h.write(n.name.as_bytes());
            h.write(&[0]);
        }
        h.write_u64(self.resistors.len() as u64);
        for r in &self.resistors {
            h.write(r.name.as_bytes());
            h.write(&[0]);
            h.write_u64(u64::from(r.a.0));
            h.write_u64(u64::from(r.b.0));
            h.write_f64(r.ohms);
        }
        h.write_u64(self.current_sources.len() as u64);
        for i in &self.current_sources {
            h.write(i.name.as_bytes());
            h.write(&[0]);
            h.write_u64(u64::from(i.from.0));
            h.write_u64(u64::from(i.to.0));
            h.write_f64(i.amps);
        }
        h.write_u64(self.voltage_sources.len() as u64);
        for v in &self.voltage_sources {
            h.write(v.name.as_bytes());
            h.write(&[0]);
            h.write_u64(u64::from(v.plus.0));
            h.write_u64(u64::from(v.minus.0));
            h.write_f64(v.volts);
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_tracks_electrical_edits() {
        let src = "V1 p 0 1.0\nR1 p a 1.0\nI1 a 0 1m\n";
        let base = crate::parse(src).unwrap().content_hash();
        // Re-parsing the same source reproduces the hash exactly.
        assert_eq!(base, crate::parse(src).unwrap().content_hash());
        // A current-only edit changes it...
        let edited = crate::parse("V1 p 0 1.0\nR1 p a 1.0\nI1 a 0 2m\n")
            .unwrap()
            .content_hash();
        assert_ne!(base, edited);
        // ...and so does a topology edit.
        let rewired = crate::parse("V1 p 0 1.0\nR1 p a 0.5\nI1 a 0 1m\n")
            .unwrap()
            .content_hash();
        assert_ne!(base, rewired);
    }

    #[test]
    fn ground_is_node_zero() {
        let n = Netlist::new();
        assert_eq!(n.node_id("0"), Some(NodeId::GROUND));
        assert!(NodeId::GROUND.is_ground());
    }

    #[test]
    fn interning_is_idempotent() {
        let mut n = Netlist::new();
        let a = n.intern("n1_m1_100_200");
        let b = n.intern("n1_m1_100_200");
        assert_eq!(a, b);
        assert_eq!(n.node_count(), 2);
    }

    #[test]
    fn iccad_names_decode_coordinates() {
        let info = NodeInfo::from_name("n1_m4_17500_208600");
        assert_eq!(info.layer, Some(4));
        assert_eq!(info.x, Some(17_500));
        assert_eq!(info.y, Some(208_600));
    }

    #[test]
    fn foreign_names_have_no_coordinates() {
        let info = NodeInfo::from_name("vdd_net");
        assert_eq!(info.layer, None);
        assert_eq!(info.x, None);
    }

    #[test]
    fn layers_and_bbox() {
        let mut n = Netlist::new();
        n.intern("n1_m1_0_0");
        n.intern("n1_m4_1000_2000");
        assert_eq!(n.layers(), vec![1, 4]);
        assert_eq!(n.bounding_box(), Some((0, 0, 1000, 2000)));
    }

    #[test]
    fn total_load_sums_currents() {
        let mut n = Netlist::new();
        let a = n.intern("n1_m1_0_0");
        n.add_current_source(CurrentSource {
            name: "I1".into(),
            from: a,
            to: NodeId::GROUND,
            amps: 0.5,
        });
        n.add_current_source(CurrentSource {
            name: "I2".into(),
            from: a,
            to: NodeId::GROUND,
            amps: 0.25,
        });
        assert_eq!(n.total_load_current(), 0.75);
    }
}
