//! SPICE netlist parsing for power-grid (PG) designs.
//!
//! The IR-Fusion flow starts from a SPICE description of the power
//! grid — resistors for metal segments and vias, current sources for
//! cell load, and voltage sources for the power pads. This crate
//! provides:
//!
//! - [`parser::parse`]: a line-oriented SPICE parser covering the
//!   subset used by PG analysis (`R`, `I`, `V` elements, `*` comments,
//!   `+` continuations, SI value suffixes, `.end`).
//! - [`netlist::Netlist`]: the parsed design with hash-interned node
//!   names and structured node coordinates following the ICCAD-2023
//!   contest convention `n<net>_m<layer>_<x>_<y>`.
//! - [`writer::write`]: serialization back to SPICE, so synthetic
//!   designs round-trip through the same front door real designs use.
//!
//! # Example
//!
//! ```
//! let src = "\
//! * tiny grid
//! R1 n1_m1_0_0 n1_m1_1000_0 0.5
//! I1 n1_m1_1000_0 0 1m
//! V1 n1_m4_0_0 0 1.1
//! R2 n1_m4_0_0 n1_m1_0_0 0.1
//! .end
//! ";
//! let netlist = irf_spice::parse(src)?;
//! assert_eq!(netlist.resistors().len(), 2);
//! assert_eq!(netlist.current_sources().len(), 1);
//! assert_eq!(netlist.voltage_sources().len(), 1);
//! # Ok::<(), irf_spice::ParseError>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod hash;
pub mod lexer;
pub mod netlist;
pub mod parser;
pub mod stream;
pub mod value;
pub mod writer;

pub use error::ParseError;
pub use hash::{source_hash, Fnv1a};
pub use netlist::{CurrentSource, Netlist, NodeId, NodeInfo, Resistor, VoltageSource};
pub use parser::{parse, parse_chunked};
pub use stream::{
    parse_path, parse_reader, parse_reader_chunked, visit_cards, ChunkReader, StreamError,
    StreamedCard, StreamedCardKind,
};
pub use writer::write;
