//! Stable, dependency-free design hashing.
//!
//! FNV-1a (64-bit): deterministic across processes and platforms —
//! unlike `std::collections::hash_map::DefaultHasher`, which is
//! randomly seeded per process. The stage-graph pipeline uses these
//! hashes as content-addressed cache keys, so stability is the whole
//! point: the same design must fingerprint identically in a server
//! that has been restarted.

/// An incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    const SEED: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a fresh hash at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv1a(Self::SEED)
    }

    /// Folds raw bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds an `i64` (little-endian bytes).
    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds an `f64` via its exact bit pattern, so the fingerprint
    /// distinguishes every representable value (including `-0.0` from
    /// `0.0`).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprints raw netlist source text. Used to memoize parses: two
/// byte-identical sources always collide (that is the feature), while
/// any edit — whitespace included — yields a fresh key.
#[must_use]
pub fn source_hash(src: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.write(src.as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c.
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn empty_is_offset_basis() {
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn f64_sign_matters() {
        let mut a = Fnv1a::new();
        a.write_f64(0.0);
        let mut b = Fnv1a::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn source_hash_is_stable_and_edit_sensitive() {
        let s = "R1 a b 1.0\n";
        assert_eq!(source_hash(s), source_hash(s));
        assert_ne!(source_hash(s), source_hash("R1 a b 1.1\n"));
    }
}
