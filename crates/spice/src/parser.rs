//! The SPICE card parser for the PG subset (`R`, `I`, `V`).
//!
//! Parsing is streaming and parallel: [`chunk_source`] splits the
//! source at card boundaries, each chunk is lexed + parsed on the
//! deterministic pool into raw cards with zero-copy `&str` fields,
//! and a serial merge pass interns node names in source order and
//! checks duplicate element names. Because the chunk boundaries
//! depend only on the text (never on the thread count) and the merge
//! walks chunks in order, the resulting [`Netlist`] — node-id
//! assignment included — is identical to a fully serial parse, and
//! error line numbers are preserved.

use crate::error::{ParseError, ParseErrorKind};
use crate::lexer::{chunk_source, logical_line_refs, SourceChunk};
use crate::netlist::{CurrentSource, Netlist, Resistor, VoltageSource};
use crate::value::parse_spice_number;
use std::collections::HashSet;

/// Cards per parallel parse chunk. Large enough that chunk overhead
/// is negligible, small enough that contest-scale netlists (millions
/// of cards) spread across every worker.
pub(crate) const CARDS_PER_CHUNK: usize = 1024;

/// What a raw card will become once merged.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum CardKind {
    Resistor,
    Current,
    Voltage,
}

/// One parsed card with fields still borrowing the source text. The
/// value is pre-parsed in the parallel phase; `None` marks a bad
/// number, surfaced from the merge pass so a duplicate-name error on
/// the same line wins, exactly as in a serial parse.
pub(crate) struct RawCard<'a> {
    pub(crate) kind: CardKind,
    pub(crate) name: &'a str,
    pub(crate) a: &'a str,
    pub(crate) b: &'a str,
    pub(crate) value: Option<f64>,
    pub(crate) value_text: &'a str,
    pub(crate) line: usize,
}

/// Everything one chunk contributes: the cards parsed before the
/// first chunk-local error (if any). Merge consumes the cards first,
/// then the error, so an earlier-line error from a previous chunk
/// still wins overall.
pub(crate) struct ChunkParse<'a> {
    pub(crate) cards: Vec<RawCard<'a>>,
    pub(crate) error: Option<ParseError>,
}

pub(crate) fn parse_chunk<'a>(chunk: &SourceChunk<'a>) -> ChunkParse<'a> {
    let mut cards = Vec::new();
    for line in logical_line_refs(chunk.text, chunk.first_line) {
        let fields = &line.fields;
        let head = fields[0];
        if head == "+" {
            return ChunkParse {
                cards,
                error: Some(ParseError {
                    line: line.line,
                    kind: ParseErrorKind::DanglingContinuation,
                }),
            };
        }
        if head.starts_with('.') {
            continue; // control cards (.end, .op, ...) are ignored
        }
        let prefix = head
            .chars()
            .next()
            .expect("logical lines have non-empty fields")
            .to_ascii_uppercase();
        let kind = match prefix {
            'R' => CardKind::Resistor,
            'I' => CardKind::Current,
            'V' => CardKind::Voltage,
            other => {
                return ChunkParse {
                    cards,
                    error: Some(ParseError {
                        line: line.line,
                        kind: ParseErrorKind::UnsupportedElement(other),
                    }),
                }
            }
        };
        if fields.len() < 4 {
            return ChunkParse {
                cards,
                error: Some(ParseError {
                    line: line.line,
                    kind: ParseErrorKind::MissingFields {
                        element: prefix,
                        found: fields.len(),
                    },
                }),
            };
        }
        cards.push(RawCard {
            kind,
            name: head,
            a: fields[1],
            b: fields[2],
            value: parse_spice_number(fields[3]),
            value_text: fields[3],
            line: line.line,
        });
    }
    ChunkParse { cards, error: None }
}

/// Incremental serial merge state: absorbs chunk parses in source
/// order, interning node names (identical id assignment to a serial
/// parse) and enforcing unique element names across chunk boundaries.
///
/// The batch [`parse`] path folds every chunk through one `Merger`;
/// the streaming reader in [`crate::stream`] does exactly the same
/// over chunks it only holds transiently, which is why both produce
/// bitwise-identical netlists from the same bytes.
pub(crate) struct Merger {
    netlist: Netlist,
    seen_names: HashSet<String>,
}

impl Merger {
    pub(crate) fn new() -> Self {
        Merger {
            netlist: Netlist::new(),
            seen_names: HashSet::new(),
        }
    }

    /// Folds one chunk's parse into the netlist. Cards are consumed
    /// before the chunk's own error, so an earlier-line error from a
    /// previous chunk still wins overall — the same priority a serial
    /// scan has.
    pub(crate) fn absorb(&mut self, chunk: ChunkParse<'_>) -> Result<(), ParseError> {
        for card in chunk.cards {
            let name = card.name.to_string();
            if !self.seen_names.insert(name.to_ascii_uppercase()) {
                return Err(ParseError {
                    line: card.line,
                    kind: ParseErrorKind::DuplicateElement(name),
                });
            }
            let Some(value) = card.value else {
                return Err(ParseError {
                    line: card.line,
                    kind: ParseErrorKind::InvalidValue(card.value_text.to_string()),
                });
            };
            let a = self.netlist.intern(card.a);
            let b = self.netlist.intern(card.b);
            match card.kind {
                CardKind::Resistor => self.netlist.add_resistor(Resistor {
                    name,
                    a,
                    b,
                    ohms: value,
                }),
                CardKind::Current => self.netlist.add_current_source(CurrentSource {
                    name,
                    from: a,
                    to: b,
                    amps: value,
                }),
                CardKind::Voltage => self.netlist.add_voltage_source(VoltageSource {
                    name,
                    plus: a,
                    minus: b,
                    volts: value,
                }),
            }
        }
        if let Some(error) = chunk.error {
            return Err(error);
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Netlist {
        self.netlist
    }
}

/// Serial merge of a fully materialized chunk list; see [`Merger`].
fn merge(chunks: Vec<ChunkParse<'_>>) -> Result<Netlist, ParseError> {
    let mut merger = Merger::new();
    for chunk in chunks {
        merger.absorb(chunk)?;
    }
    Ok(merger.finish())
}

/// Parses SPICE source into a [`Netlist`].
///
/// Supported cards:
///
/// - `R<name> <node> <node> <value>` — resistor;
/// - `I<name> <node> <node> <value>` — DC current source;
/// - `V<name> <node> <node> <value>` — DC voltage source;
/// - `.end` / `.op` and other dot-cards are accepted and ignored;
/// - `*` comments, `$`/`;` inline comments, and `+` continuations.
///
/// Large sources are parsed in parallel (see the module docs); the
/// result and any error — line number included — are identical to a
/// serial parse at any thread count.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line number for
/// malformed cards, unknown element prefixes, bad numeric values,
/// duplicate element names, or dangling continuations.
///
/// # Example
///
/// ```
/// let n = irf_spice::parse("R1 a b 2.0\nV1 p 0 1.05\n.end\n")?;
/// assert_eq!(n.resistors()[0].ohms, 2.0);
/// assert_eq!(n.voltage_sources()[0].volts, 1.05);
/// # Ok::<(), irf_spice::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Netlist, ParseError> {
    parse_chunked(src, CARDS_PER_CHUNK)
}

/// [`parse`] with an explicit chunk size — exposed so tests can force
/// multi-chunk parses on small sources; results are identical for
/// every `cards_per_chunk >= 1`.
///
/// # Errors
///
/// See [`parse`].
pub fn parse_chunked(src: &str, cards_per_chunk: usize) -> Result<Netlist, ParseError> {
    let mut span = irf_trace::span("spice_parse");
    let chunks = chunk_source(src, cards_per_chunk);
    let n_chunks = chunks.len();
    let tasks: Vec<_> = chunks.iter().map(|c| move || parse_chunk(c)).collect();
    let parsed = irf_runtime::par_map(tasks);
    let netlist = merge(parsed)?;
    irf_trace::registry().counter_add("irf_spice_chunks_total", &[], n_chunks as f64);
    if span.is_recording() {
        span.attr("chunks", n_chunks);
        span.attr("resistors", netlist.resistors().len());
        span.attr("current_sources", netlist.current_sources().len());
        span.attr("voltage_sources", netlist.voltage_sources().len());
    }
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NodeId;

    const TINY: &str = "\
* tiny PG
R1 n1_m1_0_0 n1_m1_1000_0 0.5
R2 n1_m4_0_0 n1_m1_0_0 0.1
I1 n1_m1_1000_0 0 1m
V1 n1_m4_0_0 0 1.1
.end
";

    #[test]
    fn parses_all_element_kinds() {
        let n = parse(TINY).expect("parses");
        assert_eq!(n.resistors().len(), 2);
        assert_eq!(n.current_sources().len(), 1);
        assert_eq!(n.voltage_sources().len(), 1);
        assert_eq!(n.current_sources()[0].amps, 1e-3);
        assert_eq!(n.current_sources()[0].to, NodeId::GROUND);
    }

    #[test]
    fn lowercase_prefixes_are_accepted() {
        let n = parse("r1 a b 1.0\ni1 a 0 1m\nv1 a 0 1.0\n").expect("parses");
        assert_eq!(n.resistors().len(), 1);
    }

    #[test]
    fn missing_fields_error_carries_line() {
        let err = parse("R1 a b\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(matches!(
            err.kind,
            ParseErrorKind::MissingFields {
                element: 'R',
                found: 3
            }
        ));
    }

    #[test]
    fn bad_value_is_reported() {
        let err = parse("R1 a b zz\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::InvalidValue(_)));
    }

    #[test]
    fn unsupported_element_is_reported() {
        let err = parse("C1 a b 1p\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnsupportedElement('C')));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let err = parse("R1 a b 1\nR1 c d 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ParseErrorKind::DuplicateElement(_)));
    }

    #[test]
    fn duplicate_beats_bad_value_on_the_same_line() {
        // Serial parsing checked names before values; the parallel
        // parse must keep that priority even though values are parsed
        // eagerly in the chunk phase.
        let err = parse("R1 a b 1\nR1 c d zz\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ParseErrorKind::DuplicateElement(_)));
    }

    #[test]
    fn continuations_apply_to_cards() {
        let n = parse("R1 a\n+ b 1.5\n").expect("parses");
        assert_eq!(n.resistors()[0].ohms, 1.5);
    }

    #[test]
    fn dangling_continuation_is_an_error() {
        let err = parse("+ b 1.5\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DanglingContinuation));
    }

    #[test]
    fn dot_cards_are_ignored() {
        let n = parse(".op\n.end\n").expect("parses");
        assert_eq!(n.node_count(), 1); // only ground
    }

    /// Synthesizes a many-card source with a known structure.
    fn big_source(cards: usize) -> String {
        let mut src = String::from("* generated\nV1 n0 0 1.0\n");
        for i in 0..cards {
            src.push_str(&format!("R{i} n{i} n{} 0.5\n", i + 1));
        }
        src.push_str(".end\n");
        src
    }

    #[test]
    fn chunked_parse_matches_single_chunk_parse() {
        let src = big_source(100);
        let whole = parse_chunked(&src, usize::MAX).expect("parses");
        for cards in [1, 7, 32] {
            let chunked = parse_chunked(&src, cards).expect("parses");
            assert_eq!(whole, chunked, "cards_per_chunk={cards}");
        }
    }

    #[test]
    fn error_line_numbers_survive_chunking() {
        // Error deep in a later chunk: the reported line must be the
        // absolute source line, not a chunk-relative one.
        let mut src = big_source(100);
        src.push_str("R_bad x y zz\n");
        let expected_line = src.lines().count(); // the bad card is the last line
        for cards in [3, 16, usize::MAX] {
            let err = parse_chunked(&src, cards).unwrap_err();
            assert_eq!(err.line, expected_line, "cards_per_chunk={cards}");
            assert!(matches!(err.kind, ParseErrorKind::InvalidValue(_)));
        }
    }

    #[test]
    fn duplicates_across_chunks_are_detected() {
        let mut src = big_source(50);
        src.push_str("R7 dup dup2 1.0\n"); // duplicates a card from an earlier chunk
        let expected_line = src.lines().count();
        for cards in [4, 16] {
            let err = parse_chunked(&src, cards).unwrap_err();
            assert_eq!(err.line, expected_line, "cards_per_chunk={cards}");
            assert!(matches!(err.kind, ParseErrorKind::DuplicateElement(_)));
        }
    }

    #[test]
    fn earliest_error_wins_across_chunks() {
        // A missing-fields error in an early chunk must win over a
        // bad value in a later one, as in a serial scan.
        let src = "R1 a b 1\nR2 c\nR3 d e zz\nR4 f g 2\n";
        let err = parse_chunked(src, 1).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ParseErrorKind::MissingFields { .. }));
    }
}
