//! The SPICE card parser for the PG subset (`R`, `I`, `V`).

use crate::error::{ParseError, ParseErrorKind};
use crate::lexer::logical_lines;
use crate::netlist::{CurrentSource, Netlist, Resistor, VoltageSource};
use crate::value::parse_spice_number;
use std::collections::HashSet;

/// Parses SPICE source into a [`Netlist`].
///
/// Supported cards:
///
/// - `R<name> <node> <node> <value>` — resistor;
/// - `I<name> <node> <node> <value>` — DC current source;
/// - `V<name> <node> <node> <value>` — DC voltage source;
/// - `.end` / `.op` and other dot-cards are accepted and ignored;
/// - `*` comments, `$`/`;` inline comments, and `+` continuations.
///
/// # Errors
///
/// Returns a [`ParseError`] with the offending line number for
/// malformed cards, unknown element prefixes, bad numeric values,
/// duplicate element names, or dangling continuations.
///
/// # Example
///
/// ```
/// let n = irf_spice::parse("R1 a b 2.0\nV1 p 0 1.05\n.end\n")?;
/// assert_eq!(n.resistors()[0].ohms, 2.0);
/// assert_eq!(n.voltage_sources()[0].volts, 1.05);
/// # Ok::<(), irf_spice::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Netlist, ParseError> {
    let mut span = irf_trace::span("spice_parse");
    let mut netlist = Netlist::new();
    let mut seen_names: HashSet<String> = HashSet::new();
    for line in logical_lines(src) {
        let fields = &line.fields;
        let head = &fields[0];
        if head == "+" {
            return Err(ParseError {
                line: line.line,
                kind: ParseErrorKind::DanglingContinuation,
            });
        }
        if head.starts_with('.') {
            continue; // control cards (.end, .op, ...) are ignored
        }
        let prefix = head
            .chars()
            .next()
            .expect("logical lines have non-empty fields")
            .to_ascii_uppercase();
        match prefix {
            'R' | 'I' | 'V' => {
                if fields.len() < 4 {
                    return Err(ParseError {
                        line: line.line,
                        kind: ParseErrorKind::MissingFields {
                            element: prefix,
                            found: fields.len(),
                        },
                    });
                }
                let name = head.clone();
                if !seen_names.insert(name.to_ascii_uppercase()) {
                    return Err(ParseError {
                        line: line.line,
                        kind: ParseErrorKind::DuplicateElement(name),
                    });
                }
                let a = netlist.intern(&fields[1]);
                let b = netlist.intern(&fields[2]);
                let value = parse_spice_number(&fields[3]).ok_or_else(|| ParseError {
                    line: line.line,
                    kind: ParseErrorKind::InvalidValue(fields[3].clone()),
                })?;
                match prefix {
                    'R' => netlist.add_resistor(Resistor {
                        name,
                        a,
                        b,
                        ohms: value,
                    }),
                    'I' => netlist.add_current_source(CurrentSource {
                        name,
                        from: a,
                        to: b,
                        amps: value,
                    }),
                    'V' => netlist.add_voltage_source(VoltageSource {
                        name,
                        plus: a,
                        minus: b,
                        volts: value,
                    }),
                    _ => unreachable!(),
                }
            }
            other => {
                return Err(ParseError {
                    line: line.line,
                    kind: ParseErrorKind::UnsupportedElement(other),
                });
            }
        }
    }
    if span.is_recording() {
        span.attr("resistors", netlist.resistors().len());
        span.attr("current_sources", netlist.current_sources().len());
        span.attr("voltage_sources", netlist.voltage_sources().len());
    }
    Ok(netlist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NodeId;

    const TINY: &str = "\
* tiny PG
R1 n1_m1_0_0 n1_m1_1000_0 0.5
R2 n1_m4_0_0 n1_m1_0_0 0.1
I1 n1_m1_1000_0 0 1m
V1 n1_m4_0_0 0 1.1
.end
";

    #[test]
    fn parses_all_element_kinds() {
        let n = parse(TINY).expect("parses");
        assert_eq!(n.resistors().len(), 2);
        assert_eq!(n.current_sources().len(), 1);
        assert_eq!(n.voltage_sources().len(), 1);
        assert_eq!(n.current_sources()[0].amps, 1e-3);
        assert_eq!(n.current_sources()[0].to, NodeId::GROUND);
    }

    #[test]
    fn lowercase_prefixes_are_accepted() {
        let n = parse("r1 a b 1.0\ni1 a 0 1m\nv1 a 0 1.0\n").expect("parses");
        assert_eq!(n.resistors().len(), 1);
    }

    #[test]
    fn missing_fields_error_carries_line() {
        let err = parse("R1 a b\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(matches!(
            err.kind,
            ParseErrorKind::MissingFields {
                element: 'R',
                found: 3
            }
        ));
    }

    #[test]
    fn bad_value_is_reported() {
        let err = parse("R1 a b zz\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::InvalidValue(_)));
    }

    #[test]
    fn unsupported_element_is_reported() {
        let err = parse("C1 a b 1p\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnsupportedElement('C')));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let err = parse("R1 a b 1\nR1 c d 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(matches!(err.kind, ParseErrorKind::DuplicateElement(_)));
    }

    #[test]
    fn continuations_apply_to_cards() {
        let n = parse("R1 a\n+ b 1.5\n").expect("parses");
        assert_eq!(n.resistors()[0].ohms, 1.5);
    }

    #[test]
    fn dangling_continuation_is_an_error() {
        let err = parse("+ b 1.5\n").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DanglingContinuation));
    }

    #[test]
    fn dot_cards_are_ignored() {
        let n = parse(".op\n.end\n").expect("parses");
        assert_eq!(n.node_count(), 1); // only ground
    }
}
