//! Parse errors with line provenance.

use std::error::Error;
use std::fmt;

/// Error produced while parsing a SPICE netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// Classification of SPICE parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// An element card had fewer fields than its type requires.
    MissingFields {
        /// Element prefix (`R`, `I`, `V`).
        element: char,
        /// Fields found on the card.
        found: usize,
    },
    /// A numeric value (possibly with an SI suffix) failed to parse.
    InvalidValue(String),
    /// The element prefix is not one the PG subset supports.
    UnsupportedElement(char),
    /// A `+` continuation appeared before any element card.
    DanglingContinuation,
    /// The same element name was defined twice.
    DuplicateElement(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseErrorKind::MissingFields { element, found } => {
                write!(f, "element '{element}' card has only {found} fields")
            }
            ParseErrorKind::InvalidValue(v) => write!(f, "invalid numeric value '{v}'"),
            ParseErrorKind::UnsupportedElement(c) => {
                write!(f, "unsupported element prefix '{c}'")
            }
            ParseErrorKind::DanglingContinuation => {
                write!(f, "continuation line '+' with no preceding card")
            }
            ParseErrorKind::DuplicateElement(name) => {
                write!(f, "duplicate element name '{name}'")
            }
        }
    }
}

impl Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = ParseError {
            line: 42,
            kind: ParseErrorKind::InvalidValue("1x".into()),
        };
        assert_eq!(e.to_string(), "line 42: invalid numeric value '1x'");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<ParseError>();
    }
}
