//! SPICE numeric values with SI magnitude suffixes.

/// Parses a SPICE number such as `1.5`, `10k`, `3m`, `2.2u`, `5meg`.
///
/// Suffixes follow SPICE conventions (case-insensitive): `f` 1e-15,
/// `p` 1e-12, `n` 1e-9, `u` 1e-6, `m` 1e-3, `k` 1e3, `meg` 1e6,
/// `g` 1e9, `t` 1e12. Any trailing unit letters after the suffix are
/// ignored (`10kohm` parses as `10e3`), matching common simulators.
///
/// Returns `None` when the leading numeric part is absent or malformed.
#[must_use]
pub fn parse_spice_number(s: &str) -> Option<f64> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    // Split into the longest valid float prefix and the suffix.
    let bytes = s.as_bytes();
    let mut end = 0;
    let mut seen_digit = false;
    let mut seen_dot = false;
    let mut seen_exp = false;
    while end < bytes.len() {
        let c = bytes[end] as char;
        let ok = match c {
            '0'..='9' => {
                seen_digit = true;
                true
            }
            '+' | '-' => end == 0 || matches!(bytes[end - 1] as char, 'e' | 'E'),
            '.' if !seen_dot && !seen_exp => {
                seen_dot = true;
                true
            }
            'e' | 'E' if seen_digit && !seen_exp => {
                // Only treat as exponent when followed by digit or sign.
                let next = bytes.get(end + 1).map(|&b| b as char);
                if matches!(next, Some('0'..='9') | Some('+') | Some('-')) {
                    seen_exp = true;
                    true
                } else {
                    false
                }
            }
            _ => false,
        };
        if !ok {
            break;
        }
        end += 1;
    }
    if !seen_digit {
        return None;
    }
    let base: f64 = s[..end].parse().ok()?;
    let suffix = s[end..].to_ascii_lowercase();
    let scale = if suffix.starts_with("meg") {
        1e6
    } else if suffix.starts_with("mil") {
        25.4e-6
    } else {
        match suffix.chars().next() {
            None => 1.0,
            Some('f') => 1e-15,
            Some('p') => 1e-12,
            Some('n') => 1e-9,
            Some('u') => 1e-6,
            Some('m') => 1e-3,
            Some('k') => 1e3,
            Some('g') => 1e9,
            Some('t') => 1e12,
            // Unknown letters are treated as a unit annotation.
            Some(c) if c.is_ascii_alphabetic() => 1.0,
            Some(_) => return None,
        }
    };
    Some(base * scale)
}

/// Formats a value for netlist output with full round-trip precision.
#[must_use]
pub fn format_spice_number(v: f64) -> String {
    // `{:e}` keeps precision compact while staying exact for f64.
    if v == 0.0 {
        "0".to_string()
    } else if (1e-3..1e6).contains(&v.abs()) {
        let s = format!("{v}");
        s
    } else {
        format!("{v:e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_numbers() {
        assert_eq!(parse_spice_number("1.5"), Some(1.5));
        assert_eq!(parse_spice_number("-3"), Some(-3.0));
        assert_eq!(parse_spice_number("2e3"), Some(2000.0));
        assert_eq!(parse_spice_number("1.2E-2"), Some(0.012));
    }

    #[test]
    fn si_suffixes() {
        assert_eq!(parse_spice_number("10k"), Some(10_000.0));
        assert_eq!(parse_spice_number("3m"), Some(0.003));
        assert_eq!(parse_spice_number("2.2u"), Some(2.2e-6));
        assert_eq!(parse_spice_number("5meg"), Some(5e6));
        let v = parse_spice_number("7n").expect("parses");
        assert!((v - 7e-9).abs() < 1e-20);
        assert_eq!(parse_spice_number("1p"), Some(1e-12));
        assert_eq!(parse_spice_number("4G"), Some(4e9));
    }

    #[test]
    fn unit_annotations_are_ignored() {
        assert_eq!(parse_spice_number("10kohm"), Some(10_000.0));
        assert_eq!(parse_spice_number("1.1v"), Some(1.1 * 1.0));
        assert_eq!(parse_spice_number("5mA"), Some(0.005));
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert_eq!(parse_spice_number(""), None);
        assert_eq!(parse_spice_number("abc"), None);
        assert_eq!(parse_spice_number("."), None);
        assert_eq!(parse_spice_number("-"), None);
    }

    #[test]
    fn exponent_without_digits_is_unit() {
        // "1e" — the 'e' cannot start an exponent, so it is a unit.
        assert_eq!(parse_spice_number("1e"), Some(1.0));
    }

    #[test]
    fn format_roundtrips() {
        for v in [0.0, 1.5, -0.003, 12_345.678, 1e-9, 3.3e12] {
            let s = format_spice_number(v);
            let back = parse_spice_number(&s).expect("formatted number parses");
            assert_eq!(back, v, "value {v} formatted as {s}");
        }
    }
}
