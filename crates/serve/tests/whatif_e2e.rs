//! End-to-end test for the incremental `/whatif` route, in its own
//! test binary so its requests don't perturb the process-global
//! metrics registry the main e2e test asserts exact counts against.

use ir_fusion::FusionConfig;
use irf_serve::json::{parse, Json};
use irf_serve::{BatchConfig, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Sends one HTTP/1.1 request with `Connection: close` and returns
/// `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let payload = response
        .split_once("\r\n\r\n")
        .expect("header/body separator")
        .1
        .to_string();
    (status, payload)
}

fn metric_value(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{metrics}"))
}

#[test]
fn whatif_rides_warm_artifacts() {
    // Modelless server: responses carry the rough map, which is all
    // the incremental path needs exercising (the forward pass is the
    // same micro-batcher either way).
    let server = Server::start(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            batch: BatchConfig::default(),
            cache_capacity: 8,
            read_timeout: Duration::from_secs(120),
            ..ServerConfig::default()
        },
        FusionConfig::tiny(),
        None,
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    // Base prediction registers the parsed design under its
    // fingerprint.
    let (status, body) = request(
        addr,
        "POST",
        "/predict",
        r#"{"spec":{"class":"fake","seed":3}}"#,
    );
    assert_eq!(status, 200, "predict failed: {body}");
    let json = parse(&body).expect("valid json");
    let base = json
        .get("design")
        .and_then(Json::as_str)
        .expect("design fingerprint")
        .to_string();
    let base_max = json.get("max_drop").and_then(Json::as_f64).expect("max");

    // A what-if against an unknown base is a 404, not a crash.
    let (status, _) = request(
        addr,
        "POST",
        "/whatif",
        r#"{"base":"0000000000000000","deltas":[{"node":1,"amps":0.001}]}"#,
    );
    assert_eq!(status, 404);
    // ...and a malformed delta list is a 400.
    let (status, _) = request(addr, "POST", "/whatif", &format!(r#"{{"base":"{base}"}}"#));
    assert_eq!(status, 400);
    let (status, _) = request(
        addr,
        "POST",
        "/whatif",
        &format!(r#"{{"base":"{base}","deltas":[{{"node":999999,"amps":0.1}}]}}"#),
    );
    assert_eq!(status, 400);

    // The real what-if: bump one cell's current and re-analyze.
    let whatif_body = format!(r#"{{"base":"{base}","deltas":[{{"node":1,"amps":0.002}}]}}"#);
    let (status, body) = request(addr, "POST", "/whatif", &whatif_body);
    assert_eq!(status, 200, "whatif failed: {body}");
    let json = parse(&body).expect("valid json");
    assert_eq!(json.get("base").and_then(Json::as_str), Some(base.as_str()));
    assert_eq!(json.get("deltas_applied").and_then(Json::as_u64), Some(1));
    let design = json
        .get("design")
        .and_then(Json::as_str)
        .expect("new fingerprint")
        .to_string();
    assert_ne!(design, base, "a current edit must change the fingerprint");
    let whatif_max = json.get("max_drop").and_then(Json::as_f64).expect("max");
    assert!(
        whatif_max > base_max,
        "more current must deepen the worst drop ({whatif_max} vs {base_max})"
    );

    // Re-issuing the identical what-if lands a warm stack hit, and
    // the edited design is itself a valid base for further what-ifs.
    let (status, body2) = request(addr, "POST", "/whatif", &whatif_body);
    assert_eq!(status, 200);
    assert_eq!(body2, body, "idempotent what-if");
    let chained = format!(r#"{{"base":"{design}","deltas":[{{"node":1,"amps":-0.001}}]}}"#);
    let (status, body) = request(addr, "POST", "/whatif", &chained);
    assert_eq!(status, 200, "chained whatif failed: {body}");

    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    // The warm walks reused the topology-keyed artifacts: the
    // assembled system and solver setup were computed once (by the
    // base predict) and only ever hit afterwards.
    assert!(
        metrics.contains("irf_stage_cache_events_total{stage=\"assembled\",event=\"miss\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("irf_stage_cache_events_total{stage=\"solver_setup\",event=\"miss\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("irf_stage_cache_events_total{stage=\"structural\",event=\"miss\"} 1"),
        "{metrics}"
    );
    let setup_hits = metric_value(
        &metrics,
        "irf_stage_cache_events_total{stage=\"solver_setup\",event=\"hit\"}",
    );
    assert!(setup_hits >= 2.0, "warm what-ifs must hit the solver setup");
    assert!(metrics.contains("irf_requests_total{route=\"whatif\",status=\"200\"} 3"));
    assert!(metrics.contains("irf_requests_total{route=\"whatif\",status=\"404\"} 1"));
    assert!(metrics.contains("irf_stage_seconds_total{stage=\"whatif_prepare\"}"));

    let (status, body) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200, "{body}");
    server.wait();
}

#[test]
fn read_timeouts_close_idle_connections_and_408_half_requests() {
    // Model-free server: these connections never reach the pipeline.
    let server = Server::start(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            batch: BatchConfig::default(),
            cache_capacity: 2,
            read_timeout: Duration::from_millis(200),
            ..ServerConfig::default()
        },
        FusionConfig::tiny(),
        None,
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    // A connection that sends part of a request and stalls gets 408.
    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stalled
        .write_all(b"POST /predict HTTP/1.1\r\nContent-Le")
        .expect("write partial head");
    let mut response = String::new();
    stalled
        .read_to_string(&mut response)
        .expect("server answers before closing");
    assert!(
        response.starts_with("HTTP/1.1 408 Request Timeout\r\n"),
        "expected 408, got: {response}"
    );
    assert!(response.contains("Connection: close\r\n"));

    // An idle connection is closed silently: EOF, zero bytes.
    let mut idle = TcpStream::connect(addr).expect("connect");
    idle.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut buf = Vec::new();
    idle.read_to_end(&mut buf).expect("clean close");
    assert!(buf.is_empty(), "idle close must not write a response");

    // A model-free server has nothing for /reload to swap.
    let (status, body) = request(addr, "POST", "/reload", r#"{"model_path":"x"}"#);
    assert_eq!(status, 409, "{body}");

    let (status, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.wait();
}
