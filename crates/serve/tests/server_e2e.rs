//! End-to-end test: boot the server on an ephemeral port, drive it
//! with raw TCP requests, and check the JSON responses and metrics.

use ir_fusion::FusionConfig;
use irf_data::Dataset;
use irf_models::ModelKind;
use irf_serve::json::{parse, Json};
use irf_serve::{BatchConfig, Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Sends one HTTP/1.1 request with `Connection: close` and returns
/// `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let payload = response
        .split_once("\r\n\r\n")
        .expect("header/body separator")
        .1
        .to_string();
    (status, payload)
}

/// Reads exactly one response (head + `Content-Length` body) off a
/// persistent connection. Returns `(status, connection_header, body)`.
fn read_one_response(reader: &mut BufReader<TcpStream>) -> (u16, String, String) {
    let mut status = 0u16;
    let mut connection = String::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if line.starts_with("HTTP/1.1 ") {
            status = line
                .split(' ')
                .nth(1)
                .expect("status")
                .parse()
                .expect("numeric");
        } else if let Some((name, value)) = line.split_once(':') {
            match name.to_ascii_lowercase().as_str() {
                "connection" => connection = value.trim().to_string(),
                "content-length" => content_length = value.trim().parse().expect("length"),
                _ => {}
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("read body");
    (
        status,
        connection,
        String::from_utf8(body).expect("utf8 body"),
    )
}

fn metric_value(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{metrics}"))
}

#[test]
fn server_answers_predicts_and_reuses_the_cache() {
    let config = FusionConfig::tiny();
    let dataset = Dataset::generate(2, 2, 1, 7);
    let trained = ir_fusion::train(ModelKind::IrEdge, &dataset, &config);

    let server = Server::start(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            batch: BatchConfig {
                max_batch: 2,
                deadline: Duration::from_millis(5),
                queue_capacity: 8,
            },
            cache_capacity: 8,
            read_timeout: Duration::from_secs(120),
            ..ServerConfig::default()
        },
        config,
        Some(trained),
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // No predict has run yet: /trace has nothing to serve.
    let (status, _) = request(addr, "GET", "/trace", "");
    assert_eq!(status, 404, "trace before any predict");

    // Two predicts of the SAME design: the second must hit the cache.
    let predict_body = r#"{"spec":{"class":"fake","seed":11}}"#;
    for _ in 0..2 {
        let (status, body) = request(addr, "POST", "/predict", predict_body);
        assert_eq!(status, 200, "predict failed: {body}");
        let json = parse(&body).expect("valid json");
        assert_eq!(json.get("source").and_then(Json::as_str), Some("fused"));
        assert_eq!(json.get("width").and_then(Json::as_u64), Some(16));
        assert_eq!(json.get("height").and_then(Json::as_u64), Some(16));
        assert!(
            json.get("max_drop")
                .and_then(Json::as_f64)
                .expect("max_drop")
                > 0.0
        );
        assert!(json.get("hotspot_count").and_then(Json::as_u64).is_some());
        assert_eq!(
            json.get("design").and_then(Json::as_str).map(str::len),
            Some(16),
            "design fingerprint is 16 hex chars"
        );
        assert!(json.get("map").is_none(), "map only on request");
    }

    // Malformed and unknown requests are rejected, not crashed on.
    let (status, _) = request(addr, "POST", "/predict", "{not json");
    assert_eq!(status, 400);
    let (status, _) = request(addr, "POST", "/predict", "{}");
    assert_eq!(status, 400);
    let (status, _) = request(addr, "GET", "/nope", "");
    assert_eq!(status, 404);

    // include_map returns width*height values. This is also the most
    // recent predict, so /trace below reflects it.
    let (status, body) = request(
        addr,
        "POST",
        "/predict",
        r#"{"spec":{"class":"fake","seed":11},"include_map":true}"#,
    );
    assert_eq!(status, 200);
    let json = parse(&body).expect("valid json");
    match json.get("map") {
        Some(Json::Arr(values)) => assert_eq!(values.len(), 16 * 16),
        other => panic!("expected map array, got {other:?}"),
    }

    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    // Three predicts of the same design: the cold walk computed each
    // of the six stage artifacts (stack, assembled system, solver
    // setup, rough solve, geometry maps, resistance maps) exactly
    // once; the two warm predicts short-circuited on the stack
    // artifact.
    assert_eq!(metric_value(&metrics, "irf_cache_misses_total"), 6.0);
    assert_eq!(metric_value(&metrics, "irf_cache_hits_total"), 2.0);
    assert!(metrics.contains("irf_stage_cache_events_total{stage=\"stack\",event=\"miss\"} 1"));
    assert!(metrics.contains("irf_stage_cache_events_total{stage=\"stack\",event=\"hit\"} 2"));
    assert!(
        metrics.contains("irf_stage_cache_events_total{stage=\"solver_setup\",event=\"miss\"} 1")
    );
    assert!(metric_value(&metrics, "irf_cache_hit_rate") > 0.2);
    assert_eq!(metric_value(&metrics, "irf_batch_size_count"), 3.0);
    assert!(metrics.contains("irf_requests_total{route=\"predict\",status=\"200\"} 3"));
    assert!(metrics.contains("irf_requests_total{route=\"predict\",status=\"400\"} 2"));
    assert!(metrics.contains("irf_stage_seconds_total{stage=\"prepare\"}"));
    assert!(metrics.contains("irf_stage_seconds_total{stage=\"forward\"}"));
    // Solver telemetry published deep in the pipeline surfaces on the
    // same endpoint: the cache miss above ran a full rough solve.
    assert!(metric_value(&metrics, "irf_pcg_iterations") >= 1.0);
    assert!(metric_value(&metrics, "irf_pcg_iterations_total") >= 1.0);
    assert!(metric_value(&metrics, "irf_amg_levels") >= 1.0);
    assert!(metrics.contains("irf_stage_seconds_total{stage=\"amg_setup\"}"));
    assert!(metrics.contains("irf_stage_seconds_total{stage=\"pcg_solve\"}"));
    assert!(metrics.contains("irf_stage_seconds_total{stage=\"rough_solve\"}"));

    // The last predict's trace is valid Chrome trace-event JSON (the
    // top-level array format) with at least the request-level span.
    let (status, trace) = request(addr, "GET", "/trace", "");
    assert_eq!(status, 200, "{trace}");
    match parse(&trace).expect("trace is valid json") {
        Json::Arr(events) => {
            assert!(!events.is_empty(), "trace has no events");
            let names: Vec<_> = events
                .iter()
                .filter_map(|e| e.get("name").and_then(Json::as_str).map(str::to_string))
                .collect();
            assert!(
                names.iter().any(|n| n == "predict_request"),
                "missing request span in {names:?}"
            );
            assert!(
                names.iter().any(|n| n == "nn_forward"),
                "missing forward span in {names:?}"
            );
        }
        other => panic!("expected a trace-event array, got {other:?}"),
    }

    // netlist_path streams the file into the same grid the spec
    // produced: identical design fingerprint, warm cache hit.
    let dir = std::env::temp_dir().join("irf_serve_e2e");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let netlist_path = dir.join("design.sp");
    std::fs::write(
        &netlist_path,
        irf_spice::write(&irf_data::fake::generate(11)),
    )
    .expect("write netlist file");
    let (status, body) = request(
        addr,
        "POST",
        "/predict",
        &format!(r#"{{"netlist_path":"{}"}}"#, netlist_path.display()),
    );
    assert_eq!(status, 200, "netlist_path predict failed: {body}");
    let json = parse(&body).expect("valid json");
    let by_path = json
        .get("design")
        .and_then(Json::as_str)
        .map(str::to_string);
    let (_, body) = request(addr, "POST", "/predict", predict_body);
    let json = parse(&body).expect("valid json");
    assert_eq!(
        by_path,
        json.get("design")
            .and_then(Json::as_str)
            .map(str::to_string),
        "streamed file and inline spec must resolve to the same design"
    );

    // An oversized netlist file is refused up front with the
    // structured payload_too_large envelope (sparse file: no disk).
    let big_path = dir.join("huge.sp");
    let big = std::fs::File::create(&big_path).expect("create sparse file");
    big.set_len(257 * 1024 * 1024).expect("set sparse length");
    drop(big);
    let (status, body) = request(
        addr,
        "POST",
        "/predict",
        &format!(r#"{{"netlist_path":"{}"}}"#, big_path.display()),
    );
    assert_eq!(status, 413, "oversized file must be refused: {body}");
    let json = parse(&body).expect("valid json");
    let error = json.get("error").expect("error envelope");
    assert_eq!(
        error.get("code").and_then(Json::as_str),
        Some("payload_too_large")
    );
    assert_eq!(
        error
            .get("details")
            .and_then(|d| d.get("actual_bytes"))
            .and_then(Json::as_u64),
        Some(257 * 1024 * 1024)
    );
    let _ = std::fs::remove_file(&big_path);
    let _ = std::fs::remove_file(&netlist_path);

    // One keep-alive connection serves several requests.
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    let mut reader = BufReader::new(stream);
    for _ in 0..3 {
        reader
            .get_mut()
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\n\r\n")
            .expect("write request");
        let (status, connection, body) = read_one_response(&mut reader);
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        assert_eq!(connection, "keep-alive");
    }
    reader
        .get_mut()
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .expect("write request");
    let (status, connection, _) = read_one_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(connection, "close");

    // Graceful shutdown over HTTP; wait() must join every thread.
    let (status, body) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200, "{body}");
    server.wait();
}
