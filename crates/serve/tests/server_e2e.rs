//! End-to-end test: boot the server on an ephemeral port, drive it
//! with raw TCP requests, and check the JSON responses and metrics.

use ir_fusion::FusionConfig;
use irf_data::Dataset;
use irf_models::ModelKind;
use irf_serve::json::{parse, Json};
use irf_serve::{BatchConfig, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Sends one HTTP/1.1 request and returns `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let payload = response
        .split_once("\r\n\r\n")
        .expect("header/body separator")
        .1
        .to_string();
    (status, payload)
}

fn metric_value(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{metrics}"))
}

#[test]
fn server_answers_predicts_and_reuses_the_cache() {
    let config = FusionConfig::tiny();
    let dataset = Dataset::generate(2, 2, 1, 7);
    let trained = ir_fusion::train(ModelKind::IrEdge, &dataset, &config);

    let server = Server::start(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            batch: BatchConfig {
                max_batch: 2,
                deadline: Duration::from_millis(5),
                queue_capacity: 8,
            },
            cache_capacity: 8,
        },
        config,
        Some(trained),
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // Two predicts of the SAME design: the second must hit the cache.
    let predict_body = r#"{"spec":{"class":"fake","seed":11}}"#;
    for _ in 0..2 {
        let (status, body) = request(addr, "POST", "/predict", predict_body);
        assert_eq!(status, 200, "predict failed: {body}");
        let json = parse(&body).expect("valid json");
        assert_eq!(json.get("source").and_then(Json::as_str), Some("fused"));
        assert_eq!(json.get("width").and_then(Json::as_u64), Some(16));
        assert_eq!(json.get("height").and_then(Json::as_u64), Some(16));
        assert!(
            json.get("max_drop")
                .and_then(Json::as_f64)
                .expect("max_drop")
                > 0.0
        );
        assert!(json.get("hotspot_count").and_then(Json::as_u64).is_some());
        assert_eq!(
            json.get("design").and_then(Json::as_str).map(str::len),
            Some(16),
            "design fingerprint is 16 hex chars"
        );
        assert!(json.get("map").is_none(), "map only on request");
    }

    // include_map returns width*height values.
    let (status, body) = request(
        addr,
        "POST",
        "/predict",
        r#"{"spec":{"class":"fake","seed":11},"include_map":true}"#,
    );
    assert_eq!(status, 200);
    let json = parse(&body).expect("valid json");
    match json.get("map") {
        Some(Json::Arr(values)) => assert_eq!(values.len(), 16 * 16),
        other => panic!("expected map array, got {other:?}"),
    }

    // Malformed and unknown requests are rejected, not crashed on.
    let (status, _) = request(addr, "POST", "/predict", "{not json");
    assert_eq!(status, 400);
    let (status, _) = request(addr, "POST", "/predict", "{}");
    assert_eq!(status, 400);
    let (status, _) = request(addr, "GET", "/nope", "");
    assert_eq!(status, 404);

    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    // Three predicts of the same design: one miss, two hits.
    assert_eq!(metric_value(&metrics, "irf_cache_misses_total"), 1.0);
    assert_eq!(metric_value(&metrics, "irf_cache_hits_total"), 2.0);
    assert!(metric_value(&metrics, "irf_cache_hit_rate") > 0.6);
    assert_eq!(metric_value(&metrics, "irf_batch_size_count"), 3.0);
    assert!(metrics.contains("irf_requests_total{route=\"predict\",status=\"200\"} 3"));
    assert!(metrics.contains("irf_requests_total{route=\"predict\",status=\"400\"} 2"));
    assert!(metrics.contains("irf_stage_seconds_total{stage=\"prepare\"}"));
    assert!(metrics.contains("irf_stage_seconds_total{stage=\"forward\"}"));

    // Graceful shutdown over HTTP; wait() must join every thread.
    let (status, body) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200, "{body}");
    server.wait();
}
