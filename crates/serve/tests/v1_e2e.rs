//! End-to-end tests of the versioned `/v1` surface: the unified error
//! envelope on every endpoint, legacy-alias parity (same handlers,
//! `Deprecation: true` header), the named model registry
//! (list / reload round-trip), and per-precision predicts including
//! int8 determinism. Kept in its own test binary because the server
//! publishes into the process-global metrics registry.

use ir_fusion::{FusionConfig, PrecisionMode};
use irf_data::Dataset;
use irf_models::ModelKind;
use irf_serve::json::{parse, Json};
use irf_serve::{BatchConfig, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Sends one HTTP/1.1 request with `Connection: close` and returns
/// the raw response text (status line, headers and body).
fn raw_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

/// `raw_request` reduced to `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let response = raw_request(addr, method, path, body);
    let status: u16 = response
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let payload = response
        .split_once("\r\n\r\n")
        .expect("header/body separator")
        .1
        .to_string();
    (status, payload)
}

/// Asserts `body` is the unified envelope and returns its code.
fn envelope_code(body: &str) -> String {
    let json = parse(body).expect("error body is json");
    let error = json.get("error").unwrap_or_else(|| {
        panic!("missing error envelope in: {body}");
    });
    let code = error
        .get("code")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing error.code in: {body}"));
    assert!(
        error.get("message").and_then(Json::as_str).is_some(),
        "missing error.message in: {body}"
    );
    assert!(
        error.get("details").is_some(),
        "missing error.details in: {body}"
    );
    code.to_string()
}

fn map_values(body: &str) -> Vec<f64> {
    match parse(body).expect("valid json").get("map") {
        Some(Json::Arr(values)) => values
            .iter()
            .map(|v| v.as_f64().expect("numeric map entry"))
            .collect(),
        other => panic!("expected map array, got {other:?}"),
    }
}

fn metric_value(metrics: &str, line_prefix: &str) -> f64 {
    metrics
        .lines()
        .find(|l| l.starts_with(line_prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {line_prefix} missing in:\n{metrics}"))
}

#[test]
fn v1_surface_envelope_aliases_registry_and_quantized_predicts() {
    let config = FusionConfig::tiny();
    let dataset = Dataset::generate(2, 2, 1, 7);
    let model = ir_fusion::train(ModelKind::IrEdge, &dataset, &config);

    // An int8-tagged checkpoint for the registry round-trip: loading
    // it must yield an entry whose unqualified predicts run at int8.
    let mut longer = config;
    longer.train.epochs += 2;
    let second = ir_fusion::train(ModelKind::IrEdge, &dataset, &longer);
    let int8 = second.precision_variant(PrecisionMode::Int8);
    let checkpoint = std::env::temp_dir().join(format!("irf-v1-{}.bin", std::process::id()));
    let mut model_cfg = config.model;
    model_cfg.in_channels = 11; // 5 shared + 3 layer-current + 3 layer-solution
    model_cfg.linear_head = int8.residual;
    let file = std::fs::File::create(&checkpoint).expect("create checkpoint");
    ir_fusion::save_model(&int8, ModelKind::IrEdge, model_cfg, file).expect("save checkpoint");

    let server = Server::start(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            batch: BatchConfig {
                max_batch: 2,
                deadline: Duration::from_millis(5),
                queue_capacity: 16,
            },
            cache_capacity: 8,
            read_timeout: Duration::from_secs(120),
            ..ServerConfig::default()
        },
        config,
        Some(model),
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    // --- Versioned routes answer without the Deprecation header; the
    // legacy aliases answer identically WITH it. ---
    let v1_health = raw_request(addr, "GET", "/v1/healthz", "");
    assert!(v1_health.starts_with("HTTP/1.1 200"), "{v1_health}");
    assert!(
        !v1_health.contains("Deprecation:"),
        "v1 route must not be deprecated: {v1_health}"
    );
    let legacy_health = raw_request(addr, "GET", "/healthz", "");
    assert!(legacy_health.starts_with("HTTP/1.1 200"), "{legacy_health}");
    assert!(
        legacy_health.contains("Deprecation: true\r\n"),
        "legacy route must carry the Deprecation header: {legacy_health}"
    );

    let predict_body = r#"{"spec":{"class":"fake","seed":3},"include_map":true}"#;
    let (status, v1_predict) = request(addr, "POST", "/v1/predict", predict_body);
    assert_eq!(status, 200, "v1 predict failed: {v1_predict}");
    let v1_json = parse(&v1_predict).expect("valid json");
    assert_eq!(
        v1_json.get("model").and_then(Json::as_str),
        Some("default"),
        "predict must echo the resolved model: {v1_predict}"
    );
    assert_eq!(
        v1_json.get("precision").and_then(Json::as_str),
        Some("f32"),
        "unqualified predicts run at the checkpoint precision: {v1_predict}"
    );
    let legacy_predict = raw_request(addr, "POST", "/predict", predict_body);
    assert!(legacy_predict.contains("Deprecation: true\r\n"));
    let legacy_body = legacy_predict
        .split_once("\r\n\r\n")
        .expect("separator")
        .1
        .to_string();
    assert_eq!(
        map_values(&v1_predict),
        map_values(&legacy_body),
        "legacy alias must run the identical handler"
    );

    // --- The unified envelope on every endpoint's error path. ---
    for (method, path, body, status, code) in [
        ("POST", "/v1/predict", "{not json", 400, "invalid_json"),
        (
            "POST",
            "/v1/predict",
            r#"{"spec":{"class":"fake","seed":3},"precision":"fp64"}"#,
            400,
            "invalid_precision",
        ),
        (
            "POST",
            "/v1/predict",
            r#"{"spec":{"class":"fake","seed":3},"model":"ghost"}"#,
            404,
            "unknown_model",
        ),
        ("POST", "/v1/whatif", "{}", 400, "missing_base"),
        (
            "POST",
            "/v1/whatif",
            r#"{"base":"zz"}"#,
            400,
            "invalid_base",
        ),
        (
            "POST",
            "/v1/whatif",
            r#"{"base":"0000000000000000"}"#,
            404,
            "unknown_base",
        ),
        ("POST", "/v1/sweep", "{}", 400, "missing_base"),
        ("POST", "/v1/optimize", "{}", 400, "missing_base"),
        (
            "GET",
            "/v1/debug/requests/zz",
            "",
            400,
            "invalid_request_id",
        ),
        (
            "POST",
            "/v1/models/bad%20name/reload",
            "{}",
            400,
            "invalid_model_name",
        ),
        (
            "POST",
            "/v1/models/default/reload",
            "{}",
            400,
            "missing_model_path",
        ),
        ("GET", "/v1/nonsense", "", 404, "unknown_route"),
        ("DELETE", "/v1/predict", "", 405, "method_not_allowed"),
    ] {
        let (got, reply) = request(addr, method, path, body);
        assert_eq!(got, status, "{method} {path}: {reply}");
        assert_eq!(
            envelope_code(&reply),
            code,
            "{method} {path} wrong code: {reply}"
        );
    }
    // unknown_model reports which models ARE loaded.
    let (_, reply) = request(
        addr,
        "POST",
        "/v1/predict",
        r#"{"spec":{"class":"fake","seed":3},"model":"ghost"}"#,
    );
    let loaded = parse(&reply)
        .expect("valid json")
        .get("error")
        .and_then(|e| e.get("details"))
        .and_then(|d| d.get("loaded"))
        .cloned()
        .expect("details.loaded");
    assert_eq!(loaded.render(), r#"["default"]"#, "{reply}");

    // --- Registry: list, named reload, precision variants. ---
    let (status, listing) = request(addr, "GET", "/v1/models", "");
    assert_eq!(status, 200, "{listing}");
    let json = parse(&listing).expect("valid json");
    assert_eq!(json.get("count").and_then(Json::as_u64), Some(1));
    let Some(Json::Arr(models)) = json.get("models") else {
        panic!("missing models array: {listing}");
    };
    assert_eq!(
        models[0].get("name").and_then(Json::as_str),
        Some("default")
    );
    assert_eq!(
        models[0].get("loaded_precision").and_then(Json::as_str),
        Some("f32")
    );
    assert_eq!(
        models[0].get("precisions").expect("precisions").render(),
        r#"["f32","f16","int8"]"#
    );

    let reload_body = format!(r#"{{"model_path":"{}"}}"#, checkpoint.display());
    let (status, reply) = request(addr, "POST", "/v1/models/alt/reload", &reload_body);
    assert_eq!(status, 200, "named reload failed: {reply}");
    let json = parse(&reply).expect("valid json");
    assert_eq!(json.get("model").and_then(Json::as_str), Some("alt"));
    assert_eq!(json.get("precision").and_then(Json::as_str), Some("int8"));
    assert_eq!(json.get("reloads").and_then(Json::as_u64), Some(0));

    let (_, listing) = request(addr, "GET", "/v1/models", "");
    let json = parse(&listing).expect("valid json");
    assert_eq!(
        json.get("count").and_then(Json::as_u64),
        Some(2),
        "{listing}"
    );

    // The legacy alias targets `default` and bumps its reload count.
    let legacy_reload = raw_request(addr, "POST", "/reload", &reload_body);
    assert!(legacy_reload.contains("Deprecation: true\r\n"));
    assert!(
        legacy_reload.contains("\"model\":\"default\""),
        "{legacy_reload}"
    );
    let (_, listing) = request(addr, "GET", "/v1/models", "");
    let Some(Json::Arr(models)) = parse(&listing).expect("valid json").get("models").cloned()
    else {
        panic!("missing models array: {listing}");
    };
    let default = models
        .iter()
        .find(|m| m.get("name").and_then(Json::as_str) == Some("default"))
        .expect("default entry");
    assert_eq!(default.get("reloads").and_then(Json::as_u64), Some(1));

    // --- Per-precision predicts: int8 is deterministic end to end,
    // distinct from f32, and an int8 checkpoint's entry defaults to
    // int8 without an explicit precision member. ---
    let int8_body = r#"{"spec":{"class":"fake","seed":3},"precision":"int8","include_map":true}"#;
    let (status, first) = request(addr, "POST", "/v1/predict", int8_body);
    assert_eq!(status, 200, "int8 predict failed: {first}");
    assert_eq!(
        parse(&first)
            .expect("valid json")
            .get("precision")
            .and_then(Json::as_str),
        Some("int8")
    );
    let (_, second_reply) = request(addr, "POST", "/v1/predict", int8_body);
    assert_eq!(
        map_values(&first),
        map_values(&second_reply),
        "int8 predicts must be bitwise deterministic"
    );
    let (_, f32_reply) = request(
        addr,
        "POST",
        "/v1/predict",
        r#"{"spec":{"class":"fake","seed":3},"precision":"f32","include_map":true}"#,
    );
    assert_ne!(
        map_values(&first),
        map_values(&f32_reply),
        "int8 and f32 forwards must be distinguishable"
    );
    let (status, alt_reply) = request(
        addr,
        "POST",
        "/v1/predict",
        r#"{"spec":{"class":"fake","seed":3},"model":"alt","include_map":true}"#,
    );
    assert_eq!(status, 200, "alt predict failed: {alt_reply}");
    assert_eq!(
        parse(&alt_reply)
            .expect("valid json")
            .get("precision")
            .and_then(Json::as_str),
        Some("int8"),
        "an int8 checkpoint serves int8 by default: {alt_reply}"
    );

    // --- Metrics: registry gauge, per-precision counters, and the
    // deprecation counters the legacy hits accumulated. ---
    let (status, metrics) = request(addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(metric_value(&metrics, "irf_model_registry_models "), 2.0);
    assert_eq!(
        metric_value(&metrics, "irf_predict_requests_total{precision=\"int8\"} "),
        3.0
    );
    assert_eq!(
        metric_value(&metrics, "irf_predict_requests_total{precision=\"f32\"} "),
        3.0
    );
    assert!(
        metric_value(
            &metrics,
            "irf_deprecated_requests_total{endpoint=\"predict\"} "
        ) >= 1.0
    );
    assert!(
        metric_value(
            &metrics,
            "irf_deprecated_requests_total{endpoint=\"reload\"} "
        ) >= 1.0
    );

    let (status, _) = request(addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    server.wait();
    let _ = std::fs::remove_file(&checkpoint);
}
