//! End-to-end tests for topology what-ifs and the `/sweep` route, in
//! their own test binary so their requests don't perturb the
//! process-global metrics registry other e2e binaries assert exact
//! counts against.

use ir_fusion::FusionConfig;
use irf_serve::json::{parse, Json};
use irf_serve::{BatchConfig, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Sends one HTTP/1.1 request with `Connection: close` and returns
/// `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let payload = response
        .split_once("\r\n\r\n")
        .expect("header/body separator")
        .1
        .to_string();
    (status, payload)
}

fn start_server(num_threads: usize) -> Server {
    let mut fusion = FusionConfig::tiny();
    fusion.num_threads = num_threads;
    Server::start(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            batch: BatchConfig::default(),
            // Generous: a sweep keeps base + 8 candidates warm per
            // stage, and per-shard LRU must not evict mid-test.
            cache_capacity: 64,
            read_timeout: Duration::from_secs(120),
            ..ServerConfig::default()
        },
        fusion,
        None,
    )
    .expect("bind ephemeral port")
}

fn predict_base(addr: SocketAddr) -> String {
    let (status, body) = request(
        addr,
        "POST",
        "/predict",
        r#"{"spec":{"class":"fake","seed":3}}"#,
    );
    assert_eq!(status, 200, "predict failed: {body}");
    parse(&body)
        .expect("valid json")
        .get("design")
        .and_then(Json::as_str)
        .expect("design fingerprint")
        .to_string()
}

/// The eight-candidate sweep body used by both the ranking and the
/// thread-determinism tests. Synthesized grids use layers 1 (m1),
/// 2 (m2) and 4 (m4) with vias on (1,2) and (2,4).
fn sweep_body(base: &str) -> String {
    format!(
        concat!(
            r#"{{"base":"{}","candidates":["#,
            r#"{{"label":"thicken-m1","deltas":[{{"kind":"strap","layer":1,"scale":0.5}}]}},"#,
            r#"{{"label":"thin-m1","deltas":[{{"kind":"strap","layer":1,"scale":1.5}}]}},"#,
            r#"{{"label":"thicken-m2","deltas":[{{"kind":"strap","layer":2,"scale":0.7}}]}},"#,
            r#"{{"label":"better-vias","deltas":[{{"kind":"via","layers":[1,2],"scale":0.6}}]}},"#,
            r#"{{"label":"worse-vias","deltas":[{{"kind":"via","layers":[2,4],"scale":2.0}}]}},"#,
            r#"{{"label":"more-load","deltas":[{{"node":1,"amps":0.002}}]}},"#,
            r#"{{"label":"less-load","deltas":[{{"node":1,"amps":-0.0002}}]}},"#,
            r#"{{"label":"combo","deltas":[{{"kind":"strap","layer":1,"scale":0.8}},"#,
            r#"{{"kind":"via","layers":[1,2],"scale":0.9}},{{"node":2,"amps":0.0005}}]}}"#,
            r#"]}}"#
        ),
        base
    )
}

#[test]
fn topology_whatif_reuses_geometry_and_rejects_bad_deltas() {
    let server = start_server(0);
    let addr = server.addr();
    let base = predict_base(addr);

    // A strap edit re-analyzes successfully and moves the fingerprint.
    let strap =
        format!(r#"{{"base":"{base}","deltas":[{{"kind":"strap","layer":1,"scale":0.5}}]}}"#);
    let (status, body) = request(addr, "POST", "/whatif", &strap);
    assert_eq!(status, 200, "strap whatif failed: {body}");
    let json = parse(&body).expect("valid json");
    assert_ne!(
        json.get("design").and_then(Json::as_str),
        Some(base.as_str()),
        "a strap edit must change the fingerprint"
    );
    assert_eq!(
        json.get("topology_deltas_applied").and_then(Json::as_u64),
        Some(1)
    );
    // Halving every m1 resistance must not deepen the worst drop.
    let base_max = {
        let (_, body) = request(
            addr,
            "POST",
            "/whatif",
            &format!(r#"{{"base":"{base}","deltas":[]}}"#),
        );
        parse(&body)
            .expect("valid json")
            .get("max_drop")
            .and_then(Json::as_f64)
            .expect("max")
    };
    let strap_max = json.get("max_drop").and_then(Json::as_f64).expect("max");
    assert!(
        strap_max <= base_max,
        "halving m1 resistance must not worsen the drop ({strap_max} vs {base_max})"
    );
    // Identical edit → byte-identical response (warm, deterministic).
    let (_, body2) = request(addr, "POST", "/whatif", &strap);
    assert_eq!(body2, body, "idempotent topology what-if");

    // Mixed kinds in one request work too.
    let mixed = format!(
        concat!(
            r#"{{"base":"{}","deltas":[{{"kind":"via","layers":[1,2],"scale":1.2}},"#,
            r#"{{"kind":"segment","segment":0,"ohms":0.75}},{{"node":1,"amps":0.001}}]}}"#
        ),
        base
    );
    let (status, body) = request(addr, "POST", "/whatif", &mixed);
    assert_eq!(status, 200, "mixed whatif failed: {body}");
    let json = parse(&body).expect("valid json");
    assert_eq!(json.get("deltas_applied").and_then(Json::as_u64), Some(3));
    assert_eq!(
        json.get("topology_deltas_applied").and_then(Json::as_u64),
        Some(2)
    );

    // The geometry maps stayed warm across every topology edit: only
    // the very first predict computed them.
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert!(
        metrics.contains("irf_stage_cache_events_total{stage=\"structural\",event=\"miss\"} 1"),
        "geometry maps must be computed exactly once:\n{metrics}"
    );
    // Ohms-dependent stages recomputed per distinct topology.
    let resistance_misses = metrics
        .lines()
        .find(|l| {
            l.starts_with("irf_stage_cache_events_total{stage=\"resistance\",event=\"miss\"}")
        })
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<f64>().ok())
        .expect("resistance miss counter");
    assert!(
        resistance_misses >= 3.0,
        "each distinct topology re-rasterizes resistance maps:\n{metrics}"
    );

    // Structured validation errors: each bad delta names its code and
    // leaves the session unapplied.
    for (deltas, code) in [
        (
            r#"[{"kind":"strap","layer":99,"scale":0.5}]"#,
            "no_strap_segments",
        ),
        (
            r#"[{"kind":"via","layers":[7,9],"scale":0.5}]"#,
            "no_via_segments",
        ),
        (
            r#"[{"kind":"via","layers":[1,1],"scale":0.5}]"#,
            "degenerate_via",
        ),
        (
            r#"[{"kind":"segment","segment":999999999,"ohms":1.0}]"#,
            "segment_out_of_range",
        ),
        (
            r#"[{"kind":"strap","layer":1,"scale":0.0}]"#,
            "invalid_value",
        ),
        (
            r#"[{"kind":"strap","layer":1,"scale":-2.0}]"#,
            "invalid_value",
        ),
        (
            r#"[{"kind":"segment","segment":0,"ohms":0.0}]"#,
            "invalid_value",
        ),
    ] {
        let (status, body) = request(
            addr,
            "POST",
            "/whatif",
            &format!(r#"{{"base":"{base}","deltas":{deltas}}}"#),
        );
        assert_eq!(status, 400, "{deltas} must be rejected, got: {body}");
        let json = parse(&body).expect("error body is json");
        let error = json.get("error").expect("error envelope");
        assert_eq!(
            error.get("code").and_then(Json::as_str),
            Some(code),
            "wrong code for {deltas}: {body}"
        );
        assert!(error.get("message").and_then(Json::as_str).is_some());
    }
    // Malformed shapes are plain 400s.
    for deltas in [
        r#"[{"kind":"strap","scale":0.5}]"#,
        r#"[{"kind":"via","layers":[1],"scale":0.5}]"#,
        r#"[{"kind":"via","layers":[1,2,4],"scale":0.5}]"#,
        r#"[{"kind":"segment","segment":0}]"#,
        r#"[{"kind":"resistor","value":1.0}]"#,
    ] {
        let (status, _) = request(
            addr,
            "POST",
            "/whatif",
            &format!(r#"{{"base":"{base}","deltas":{deltas}}}"#),
        );
        assert_eq!(status, 400, "{deltas} must be rejected");
    }

    let (status, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.wait();
}

#[test]
fn sweep_ranks_candidates_deterministically() {
    let server = start_server(0);
    let addr = server.addr();
    let base = predict_base(addr);

    // Error paths first: unknown base, missing / empty candidates, and
    // a structurally invalid candidate plan.
    let (status, _) = request(
        addr,
        "POST",
        "/sweep",
        r#"{"base":"0000000000000000","candidates":[{"deltas":[]}]}"#,
    );
    assert_eq!(status, 404);
    let (status, _) = request(addr, "POST", "/sweep", &format!(r#"{{"base":"{base}"}}"#));
    assert_eq!(status, 400);
    let (status, _) = request(
        addr,
        "POST",
        "/sweep",
        &format!(r#"{{"base":"{base}","candidates":[]}}"#),
    );
    assert_eq!(status, 400);
    let (status, body) = request(
        addr,
        "POST",
        "/sweep",
        &format!(
            r#"{{"base":"{base}","candidates":[{{"label":"bogus","deltas":[{{"kind":"strap","layer":99,"scale":0.5}}]}}]}}"#
        ),
    );
    assert_eq!(status, 400, "{body}");
    let json = parse(&body).expect("error body is json");
    let error = json.get("error").expect("error envelope");
    assert_eq!(
        error.get("code").and_then(Json::as_str),
        Some("no_strap_segments")
    );
    let details = error.get("details").expect("details member");
    assert_eq!(details.get("candidate").and_then(Json::as_u64), Some(0));
    assert_eq!(details.get("label").and_then(Json::as_str), Some("bogus"));

    // The real sweep: eight candidates, ranked best-first.
    let (status, body) = request(addr, "POST", "/sweep", &sweep_body(&base));
    assert_eq!(status, 200, "sweep failed: {body}");
    let json = parse(&body).expect("valid json");
    assert_eq!(json.get("base").and_then(Json::as_str), Some(base.as_str()));
    assert!(json.get("baseline").is_some());
    let Some(Json::Arr(candidates)) = json.get("candidates") else {
        panic!("sweep must list candidates: {body}");
    };
    assert_eq!(candidates.len(), 8);
    let deltas: Vec<f64> = candidates
        .iter()
        .map(|c| {
            c.get("delta_max_drop")
                .and_then(Json::as_f64)
                .expect("delta_max_drop")
        })
        .collect();
    assert!(
        deltas.windows(2).all(|w| w[0] <= w[1]),
        "candidates must be sorted best-first: {deltas:?}"
    );
    for (i, c) in candidates.iter().enumerate() {
        assert_eq!(c.get("rank").and_then(Json::as_u64), Some(i as u64 + 1));
        assert!(c.get("label").and_then(Json::as_str).is_some());
        assert!(c.get("design").and_then(Json::as_str).is_some());
        let cache = c.get("cache").expect("per-candidate cache stats");
        assert!(cache.get("hits").and_then(Json::as_u64).is_some());
        assert!(cache.get("misses").and_then(Json::as_u64).is_some());
    }
    // Physics sanity on the extremes: the winner strengthens the PDN
    // (and actually lowers the worst drop), adding load ranks dead
    // last.
    let label_of = |c: &Json| c.get("label").and_then(Json::as_str).unwrap().to_string();
    assert!(
        ["thicken-m1", "thicken-m2", "better-vias", "combo"]
            .contains(&label_of(&candidates[0]).as_str()),
        "winner should strengthen the grid, got {}",
        label_of(&candidates[0])
    );
    assert!(deltas[0] < 0.0, "winner must improve the worst drop");
    assert_eq!(label_of(&candidates[7]), "more-load");

    // Re-issuing the identical sweep is warm and byte-identical —
    // cache statistics included, because every candidate stack is now
    // a stack-stage hit (1 hit, 0 misses per candidate).
    let (status, body2) = request(addr, "POST", "/sweep", &sweep_body(&base));
    assert_eq!(status, 200);
    let json2 = parse(&body2).expect("valid json");
    let Some(Json::Arr(candidates2)) = json2.get("candidates") else {
        panic!("warm sweep must list candidates");
    };
    for (a, b) in candidates.iter().zip(candidates2) {
        assert_eq!(
            a.get("design").and_then(Json::as_str),
            b.get("design").and_then(Json::as_str)
        );
        assert_eq!(
            a.get("delta_max_drop").and_then(Json::as_f64),
            b.get("delta_max_drop").and_then(Json::as_f64),
            "warm sweep must reproduce the cold metrics bitwise"
        );
        assert_eq!(
            b.get("cache").unwrap().get("misses").and_then(Json::as_u64),
            Some(0)
        );
    }

    let (status, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.wait();
}

#[test]
fn sweep_is_bitwise_identical_across_thread_counts() {
    // One cold server per thread count, same request sequence; the
    // /sweep response (metrics, fingerprints, ranking and per-candidate
    // cache statistics) must be byte-identical.
    let run = |threads: usize| {
        let server = start_server(threads);
        let addr = server.addr();
        let base = predict_base(addr);
        let (status, body) = request(addr, "POST", "/sweep", &sweep_body(&base));
        assert_eq!(status, 200, "sweep at {threads} threads failed: {body}");
        let (status, _) = request(addr, "POST", "/shutdown", "");
        assert_eq!(status, 200);
        server.wait();
        body
    };
    let reference = run(1);
    for threads in [2, 4, 8] {
        assert_eq!(
            run(threads),
            reference,
            "sweep response differs at {threads} threads"
        );
    }
}
