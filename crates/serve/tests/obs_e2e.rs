//! End-to-end tests for the request-scoped observability layer:
//! `X-Irf-Request-Id` response headers, the flight recorder behind
//! `GET /debug/requests`, and per-request attribution of stage-cache
//! and solver telemetry. Kept in its own test binary so its traffic
//! doesn't perturb the process-global metrics registry other e2e
//! tests assert exact counts against.

use ir_fusion::FusionConfig;
use irf_data::Dataset;
use irf_models::ModelKind;
use irf_obs::RequestId;
use irf_serve::json::{parse, Json};
use irf_serve::{BatchConfig, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Sends one HTTP/1.1 request with `Connection: close` and returns
/// `(status, request_id_header, body)`. The id is `None` when the
/// response carried no `X-Irf-Request-Id` header.
fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Option<String>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .expect("header/body separator");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let id = head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.eq_ignore_ascii_case("x-irf-request-id")
            .then(|| value.trim().to_string())
    });
    (status, id, payload.to_string())
}

/// Fetches one recorded request from the flight recorder and parses it.
fn debug_record(addr: SocketAddr, id: &str) -> Json {
    let (status, _, body) = request(addr, "GET", &format!("/debug/requests/{id}"), "");
    assert_eq!(status, 200, "record {id} missing: {body}");
    parse(&body).expect("valid record json")
}

fn field_u64(record: &Json, name: &str) -> u64 {
    record
        .get(name)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("numeric field {name} missing in {record:?}"))
}

/// Collects every span name in a span tree, depth first.
fn span_names(node: &Json, out: &mut Vec<String>) {
    if let Some(name) = node.get("name").and_then(Json::as_str) {
        out.push(name.to_string());
    }
    if let Some(Json::Arr(children)) = node.get("children") {
        for child in children {
            span_names(child, out);
        }
    }
}

fn modelless_server(recorder_capacity: usize) -> Server {
    Server::start(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            batch: BatchConfig::default(),
            cache_capacity: 8,
            read_timeout: Duration::from_secs(120),
            // Snapshot the span tree for every request so the tests
            // below can assert on it deterministically.
            slow_threshold: Duration::ZERO,
            recorder_capacity,
        },
        FusionConfig::tiny(),
        None,
    )
    .expect("bind ephemeral port")
}

#[test]
fn request_ids_round_trip_and_attribute_stage_events() {
    let server = modelless_server(64);
    let addr = server.addr();

    // Every response carries a parseable 16-hex request id.
    let (status, id, body) = request(
        addr,
        "POST",
        "/predict",
        r#"{"spec":{"class":"fake","seed":3}}"#,
    );
    assert_eq!(status, 200, "predict failed: {body}");
    let predict_id = id.expect("predict response carries X-Irf-Request-Id");
    assert_eq!(predict_id.len(), 16, "id is 16 hex chars: {predict_id}");
    let parsed = RequestId::parse(&predict_id).expect("id parses back");
    assert_eq!(parsed.to_string(), predict_id);
    let base = parse(&body)
        .expect("valid json")
        .get("design")
        .and_then(Json::as_str)
        .expect("design fingerprint")
        .to_string();

    // A /whatif against the warm base: its record must attribute the
    // stage-cache hits (base artifacts) AND misses (edited design)
    // plus the PCG iterations of its incremental re-solve to its own
    // request id — the core acceptance criterion of this layer.
    let whatif_body = format!(r#"{{"base":"{base}","deltas":[{{"node":1,"amps":0.002}}]}}"#);
    let (status, id, body) = request(addr, "POST", "/whatif", &whatif_body);
    assert_eq!(status, 200, "whatif failed: {body}");
    let whatif_id = id.expect("whatif response carries X-Irf-Request-Id");
    assert_ne!(whatif_id, predict_id, "ids are distinct per request");

    let record = debug_record(addr, &whatif_id);
    assert_eq!(
        record.get("request").and_then(Json::as_str),
        Some(whatif_id.as_str())
    );
    assert_eq!(
        record.get("endpoint").and_then(Json::as_str),
        Some("whatif")
    );
    assert_eq!(field_u64(&record, "status"), 200);
    assert!(
        field_u64(&record, "cache_hits") >= 1,
        "warm base artifacts must register as hits: {record:?}"
    );
    assert!(
        field_u64(&record, "cache_misses") >= 1,
        "the edited design computes fresh stages: {record:?}"
    );
    assert!(
        field_u64(&record, "pcg_iterations") >= 1,
        "the incremental re-solve runs PCG: {record:?}"
    );
    assert!(field_u64(&record, "pcg_solves") >= 1);

    // slow_threshold == 0 snapshots the span tree for every request:
    // the whatif's tree holds its request span, the stage-cache walk,
    // and the solver spans, all tagged to this id.
    assert_eq!(record.get("has_spans").and_then(Json::as_bool), Some(true));
    let spans = match record.get("spans") {
        Some(Json::Arr(spans)) => spans,
        other => panic!("expected spans array, got {other:?}"),
    };
    let mut names = Vec::new();
    for span in spans {
        span_names(span, &mut names);
    }
    assert!(
        names.iter().any(|n| n == "whatif_request"),
        "missing request span in {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "stage_cache"),
        "missing stage-cache span in {names:?}"
    );
    assert!(
        names.iter().any(|n| n == "pcg_solve"),
        "missing solver span in {names:?}"
    );

    // The predict's own record exists too, and did NOT absorb the
    // whatif's telemetry (the cold predict has no cache hits).
    let record = debug_record(addr, &predict_id);
    assert_eq!(
        record.get("endpoint").and_then(Json::as_str),
        Some("predict")
    );
    assert_eq!(field_u64(&record, "cache_hits"), 0);
    assert!(field_u64(&record, "cache_misses") >= 1);

    // The list endpoint summarizes both, newest first.
    let (status, _, body) = request(addr, "GET", "/debug/requests", "");
    assert_eq!(status, 200);
    let listing = parse(&body).expect("valid listing json");
    assert_eq!(field_u64(&listing, "capacity"), 64);
    let summaries = match listing.get("requests") {
        Some(Json::Arr(records)) => records,
        other => panic!("expected requests array, got {other:?}"),
    };
    let listed: Vec<_> = summaries
        .iter()
        .filter_map(|r| r.get("request").and_then(Json::as_str).map(str::to_string))
        .collect();
    assert!(listed.contains(&predict_id), "{listed:?}");
    assert!(listed.contains(&whatif_id), "{listed:?}");
    let seqs: Vec<_> = summaries.iter().map(|r| field_u64(r, "seq")).collect();
    let mut sorted = seqs.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    assert_eq!(seqs, sorted, "listing is newest first");

    // Malformed and unknown ids are rejected cleanly.
    let (status, _, _) = request(addr, "GET", "/debug/requests/not-hex", "");
    assert_eq!(status, 400);
    let (status, _, _) = request(addr, "GET", "/debug/requests/ffffffffffffffff", "");
    assert_eq!(status, 404);

    let (status, _, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.wait();
}

#[test]
fn concurrent_requests_get_distinct_ids_with_their_own_stats() {
    // A trained model so predicts ride the micro-batcher: batch
    // attribution (queue wait, batch size) only exists on that path.
    let config = FusionConfig::tiny();
    let dataset = Dataset::generate(2, 2, 1, 7);
    let trained = ir_fusion::train(ModelKind::IrEdge, &dataset, &config);
    let server = Server::start(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 3,
            batch: BatchConfig {
                max_batch: 3,
                deadline: Duration::from_millis(5),
                queue_capacity: 16,
            },
            cache_capacity: 8,
            read_timeout: Duration::from_secs(120),
            slow_threshold: Duration::ZERO,
            recorder_capacity: 64,
        },
        config,
        Some(trained),
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    // Distinct designs from concurrent connections: each must come
    // back with a unique id whose record carries that request's own
    // pipeline work (every cold design computes its own stages).
    let workers: Vec<_> = (0..6)
        .map(|seed| {
            std::thread::spawn(move || {
                let body = format!(r#"{{"spec":{{"class":"fake","seed":{}}}}}"#, 100 + seed);
                let (status, id, body) = request(addr, "POST", "/predict", &body);
                assert_eq!(status, 200, "predict failed: {body}");
                id.expect("response carries X-Irf-Request-Id")
            })
        })
        .collect();
    let ids: Vec<String> = workers
        .into_iter()
        .map(|w| w.join().expect("predict thread"))
        .collect();

    let mut unique = ids.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), ids.len(), "duplicate request ids in {ids:?}");

    for id in &ids {
        let record = debug_record(addr, id);
        assert_eq!(
            record.get("request").and_then(Json::as_str),
            Some(id.as_str())
        );
        assert_eq!(
            record.get("endpoint").and_then(Json::as_str),
            Some("predict")
        );
        assert_eq!(field_u64(&record, "status"), 200);
        assert!(
            field_u64(&record, "batch_size") >= 1,
            "predict rides the micro-batcher: {record:?}"
        );
        assert!(
            field_u64(&record, "cache_misses") >= 1,
            "each cold design computes its own stages: {record:?}"
        );
    }

    let (status, _, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.wait();
}

#[test]
fn flight_recorder_stays_within_its_fixed_capacity() {
    let server = modelless_server(4);
    let addr = server.addr();

    let mut first_id = None;
    for _ in 0..10 {
        let (status, id, _) = request(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        let id = id.expect("even /healthz responses carry an id");
        first_id.get_or_insert(id);
    }

    let (status, _, body) = request(addr, "GET", "/debug/requests", "");
    assert_eq!(status, 200);
    let listing = parse(&body).expect("valid listing json");
    assert_eq!(field_u64(&listing, "capacity"), 4);
    assert_eq!(
        field_u64(&listing, "count"),
        4,
        "ring keeps exactly the newest `capacity` records: {body}"
    );

    // The newest retained request answers 200. (Debug requests are
    // themselves recorded after their response is written, so older
    // summaries may be evicted by the very act of fetching them.)
    let summaries = match listing.get("requests") {
        Some(Json::Arr(records)) => records,
        other => panic!("expected requests array, got {other:?}"),
    };
    let newest = summaries[0]
        .get("request")
        .and_then(Json::as_str)
        .expect("summary id");
    let (status, _, _) = request(addr, "GET", &format!("/debug/requests/{newest}"), "");
    assert_eq!(status, 200);

    // The first request of the burst was evicted long ago: 404.
    let first_id = first_id.expect("captured first id");
    let (status, _, _) = request(addr, "GET", &format!("/debug/requests/{first_id}"), "");
    assert_eq!(status, 404, "oldest record must have been evicted");

    let (status, _, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.wait();
}
