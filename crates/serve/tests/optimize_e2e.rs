//! End-to-end tests for `POST /optimize` and the hardened `/sweep`
//! input validation, in their own test binary so their requests don't
//! perturb the process-global metrics registry other e2e binaries
//! assert exact counts against.

use ir_fusion::FusionConfig;
use irf_serve::json::{parse, Json};
use irf_serve::{BatchConfig, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Sends one HTTP/1.1 request with `Connection: close` and returns
/// `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let payload = response
        .split_once("\r\n\r\n")
        .expect("header/body separator")
        .1
        .to_string();
    (status, payload)
}

fn start_server(num_threads: usize) -> Server {
    let mut fusion = FusionConfig::tiny();
    fusion.num_threads = num_threads;
    Server::start(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            // The optimizer keeps a beam of designs warm per stage.
            cache_capacity: 128,
            batch: BatchConfig::default(),
            read_timeout: Duration::from_secs(120),
            ..ServerConfig::default()
        },
        fusion,
        None,
    )
    .expect("bind ephemeral port")
}

fn predict_base(addr: SocketAddr) -> String {
    let (status, body) = request(
        addr,
        "POST",
        "/predict",
        r#"{"spec":{"class":"fake","seed":3}}"#,
    );
    assert_eq!(status, 200, "predict failed: {body}");
    parse(&body)
        .expect("valid json")
        .get("design")
        .and_then(Json::as_str)
        .expect("design fingerprint")
        .to_string()
}

fn baseline_max_drop(addr: SocketAddr) -> f64 {
    let (status, body) = request(
        addr,
        "POST",
        "/predict",
        r#"{"spec":{"class":"fake","seed":3}}"#,
    );
    assert_eq!(status, 200, "predict failed: {body}");
    parse(&body)
        .expect("valid json")
        .get("max_drop")
        .and_then(Json::as_f64)
        .expect("max_drop")
}

#[test]
fn optimize_closes_the_loop_and_registers_the_winner() {
    let server = start_server(0);
    let addr = server.addr();
    let base = predict_base(addr);
    let baseline = baseline_max_drop(addr);
    let target = baseline * 0.9;

    let body = format!(
        r#"{{"base":"{base}","target_max_drop":{target},"metal_budget":1e9,"beam":2,"max_iterations":3,"max_evaluations":24}}"#
    );
    let (status, reply) = request(addr, "POST", "/optimize", &body);
    assert_eq!(status, 200, "optimize failed: {reply}");
    let json = parse(&reply).expect("valid json");
    assert_eq!(json.get("target_met").and_then(Json::as_bool), Some(true));
    assert_eq!(
        json.get("stop_reason").and_then(Json::as_str),
        Some("target_met")
    );
    assert_eq!(json.get("source").and_then(Json::as_str), Some("rough"));
    let winner = json.get("winner").expect("winner");
    let winner_drop = winner.get("max_drop").and_then(Json::as_f64).expect("drop");
    assert!(winner_drop <= target, "{winner_drop} > target {target}");
    assert!(
        winner
            .get("metal_cost")
            .and_then(Json::as_f64)
            .expect("cost")
            > 0.0
    );
    let Some(Json::Arr(trajectory)) = json.get("trajectory") else {
        panic!("trajectory missing: {reply}");
    };
    assert!(!trajectory.is_empty());
    let Some(Json::Arr(deltas)) = winner.get("deltas") else {
        panic!("winner deltas missing: {reply}");
    };
    assert!(!deltas.is_empty());

    // The winner is registered: its design fingerprint is a valid
    // /whatif base, and replaying its deltas from the original base
    // reproduces the same design fingerprint.
    let design = winner
        .get("design")
        .and_then(Json::as_str)
        .expect("winner design")
        .to_string();
    let whatif = format!(r#"{{"base":"{design}","deltas":[{{"node":0,"amps":0.0001}}]}}"#);
    let (status, reply) = request(addr, "POST", "/whatif", &whatif);
    assert_eq!(status, 200, "winner not registered as base: {reply}");

    let replay_deltas: Vec<String> = deltas.iter().map(Json::render).collect();
    let replay = format!(
        r#"{{"base":"{base}","deltas":[{}]}}"#,
        replay_deltas.join(",")
    );
    let (status, reply) = request(addr, "POST", "/whatif", &replay);
    assert_eq!(status, 200, "replaying winner deltas failed: {reply}");
    let replayed = parse(&reply).expect("valid json");
    assert_eq!(
        replayed.get("design").and_then(Json::as_str),
        Some(design.as_str()),
        "replayed plan landed on a different design"
    );

    // The loop's work is visible on /metrics.
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert!(metrics.contains("irf_opt_iterations_total"));
    assert!(metrics.contains("irf_opt_evaluations_total"));
    let iterations = metric_value(&metrics, "irf_opt_iterations_total");
    assert!(iterations >= 1.0, "no optimizer iterations recorded");

    server.shutdown();
    server.wait();
}

/// Reads an unlabelled counter's value out of a Prometheus text page.
fn metric_value(page: &str, name: &str) -> f64 {
    page.lines()
        .find(|l| l.starts_with(name) && !l.starts_with('#'))
        .and_then(|l| l.split_whitespace().last())
        .and_then(|v| v.parse().ok())
        .unwrap_or(f64::NAN)
}

#[test]
fn optimize_rejects_bad_inputs_with_structured_bodies() {
    let server = start_server(0);
    let addr = server.addr();
    let base = predict_base(addr);

    // Unknown base.
    let (status, reply) = request(
        addr,
        "POST",
        "/optimize",
        r#"{"base":"00000000deadbeef","target_max_drop":0.001,"metal_budget":1.0}"#,
    );
    assert_eq!(status, 404, "unexpected: {reply}");

    // Missing / invalid target and budget.
    for (body, code) in [
        (format!(r#"{{"base":"{base}"}}"#), "missing_target"),
        (
            format!(r#"{{"base":"{base}","target_max_drop":-0.5,"metal_budget":1.0}}"#),
            "invalid_target",
        ),
        (
            format!(r#"{{"base":"{base}","target_max_drop":0.001}}"#),
            "missing_budget",
        ),
        (
            format!(r#"{{"base":"{base}","target_max_drop":0.001,"metal_budget":0.0}}"#),
            "invalid_budget",
        ),
        (
            format!(r#"{{"base":"{base}","target_max_drop":0.001,"metal_budget":1.0,"beam":99}}"#),
            "invalid_beam",
        ),
        (
            format!(
                r#"{{"base":"{base}","target_max_drop":0.001,"metal_budget":1.0,"max_iterations":0}}"#
            ),
            "invalid_max_iterations",
        ),
        (
            format!(
                r#"{{"base":"{base}","target_max_drop":0.001,"metal_budget":1.0,"max_evaluations":1000}}"#
            ),
            "invalid_max_evaluations",
        ),
    ] {
        let (status, reply) = request(addr, "POST", "/optimize", &body);
        assert_eq!(status, 400, "expected 400 for {code}: {reply}");
        let json = parse(&reply).expect("valid json");
        assert_eq!(
            json.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some(code),
            "wrong code in {reply}"
        );
    }

    server.shutdown();
    server.wait();
}

#[test]
fn sweep_rejects_empty_and_oversized_candidate_lists_with_counts() {
    let server = start_server(0);
    let addr = server.addr();
    let base = predict_base(addr);

    // Empty candidate list: structured body carrying the count.
    let (status, reply) = request(
        addr,
        "POST",
        "/sweep",
        &format!(r#"{{"base":"{base}","candidates":[]}}"#),
    );
    assert_eq!(status, 400, "unexpected: {reply}");
    let json = parse(&reply).expect("valid json");
    let error = json.get("error").expect("error envelope");
    assert_eq!(
        error.get("code").and_then(Json::as_str),
        Some("empty_candidates")
    );
    let details = error.get("details").expect("details member");
    assert_eq!(details.get("count").and_then(Json::as_f64), Some(0.0));
    assert_eq!(details.get("limit").and_then(Json::as_f64), Some(64.0));

    // 65 candidates: structured body carrying count and limit.
    let candidate = r#"{"deltas":[{"node":0,"amps":0.0001}]}"#;
    let oversized = format!(
        r#"{{"base":"{base}","candidates":[{}]}}"#,
        vec![candidate; 65].join(",")
    );
    let (status, reply) = request(addr, "POST", "/sweep", &oversized);
    assert_eq!(status, 400, "unexpected: {reply}");
    let json = parse(&reply).expect("valid json");
    let error = json.get("error").expect("error envelope");
    assert_eq!(
        error.get("code").and_then(Json::as_str),
        Some("too_many_candidates")
    );
    let details = error.get("details").expect("details member");
    assert_eq!(details.get("count").and_then(Json::as_f64), Some(65.0));
    assert_eq!(details.get("limit").and_then(Json::as_f64), Some(64.0));

    // A valid sweep is counted on the candidates metric.
    let ok = format!(r#"{{"base":"{base}","candidates":[{candidate},{candidate}]}}"#);
    let (status, reply) = request(addr, "POST", "/sweep", &ok);
    assert_eq!(status, 200, "sweep failed: {reply}");
    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(metric_value(&metrics, "irf_sweep_candidates_total"), 2.0);

    server.shutdown();
    server.wait();
}

/// `warm_start` sweeps evaluate the same candidates to the same
/// untagged design fingerprints as cold sweeps, and are themselves
/// deterministic. (The *ranking* may legitimately differ for near-tied
/// candidates: a seeded solve stops at the seed's achieved residual, so
/// its drops are not bitwise the cold drops — that is exactly why warm
/// results live under seed-tagged stage keys.)
#[test]
fn warm_start_sweep_matches_cold_identities() {
    let server = start_server(0);
    let addr = server.addr();
    let base = predict_base(addr);

    let candidates = concat!(
        r#"[{"label":"thicken-m1","deltas":[{"kind":"strap","layer":1,"scale":0.5}]},"#,
        r#"{"label":"thicken-m2","deltas":[{"kind":"strap","layer":2,"scale":0.7}]},"#,
        r#"{"label":"better-vias","deltas":[{"kind":"via","layers":[1,2],"scale":0.6}]}]"#
    );
    let cold_body = format!(r#"{{"base":"{base}","candidates":{candidates}}}"#);
    let warm_body = format!(r#"{{"base":"{base}","warm_start":true,"candidates":{candidates}}}"#);

    let (status, cold) = request(addr, "POST", "/sweep", &cold_body);
    assert_eq!(status, 200, "cold sweep failed: {cold}");
    let (status, warm) = request(addr, "POST", "/sweep", &warm_body);
    assert_eq!(status, 200, "warm sweep failed: {warm}");

    let identities = |reply: &str| -> Vec<(String, String)> {
        let json = parse(reply).expect("valid json");
        let Some(Json::Arr(rows)) = json.get("candidates") else {
            panic!("candidates missing: {reply}");
        };
        let mut rows: Vec<(String, String)> = rows
            .iter()
            .map(|row| {
                (
                    row.get("label")
                        .and_then(Json::as_str)
                        .expect("label")
                        .to_string(),
                    row.get("design")
                        .and_then(Json::as_str)
                        .expect("design")
                        .to_string(),
                )
            })
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(
        identities(&cold),
        identities(&warm),
        "warm-start sweep changed the candidates' design identities"
    );

    // The warm path is itself deterministic: the same warm sweep twice
    // reproduces every ranking metric bitwise (cache stats differ —
    // the repeat is a pure stack-stage hit).
    let (status, warm2) = request(addr, "POST", "/sweep", &warm_body);
    assert_eq!(status, 200, "second warm sweep failed: {warm2}");
    let ranking = |reply: &str| -> Vec<(String, String, Option<f64>, Option<f64>)> {
        let json = parse(reply).expect("valid json");
        let Some(Json::Arr(rows)) = json.get("candidates") else {
            panic!("candidates missing: {reply}");
        };
        rows.iter()
            .map(|row| {
                (
                    row.get("label")
                        .and_then(Json::as_str)
                        .expect("label")
                        .to_string(),
                    row.get("design")
                        .and_then(Json::as_str)
                        .expect("design")
                        .to_string(),
                    row.get("max_drop").and_then(Json::as_f64),
                    row.get("delta_max_drop").and_then(Json::as_f64),
                )
            })
            .collect()
    };
    assert_eq!(
        ranking(&warm),
        ranking(&warm2),
        "warm sweep must be reproducible"
    );

    server.shutdown();
    server.wait();
}
