//! End-to-end test of `POST /reload`: checkpoint swap under live
//! traffic. Kept in its own test binary (= its own process) because
//! the server publishes into the process-global metrics registry, and
//! this test's predict traffic would pollute the counters asserted by
//! `server_e2e.rs`.

use ir_fusion::FusionConfig;
use irf_data::Dataset;
use irf_models::ModelKind;
use irf_serve::json::{parse, Json};
use irf_serve::{BatchConfig, Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Sends one HTTP/1.1 request with `Connection: close` and returns
/// `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("timeout");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body.as_bytes()).expect("write body");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let payload = response
        .split_once("\r\n\r\n")
        .expect("header/body separator")
        .1
        .to_string();
    (status, payload)
}

fn metric_value(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && l[name.len()..].starts_with(' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing in:\n{metrics}"))
}

fn map_values(body: &str) -> Vec<f64> {
    match parse(body).expect("valid json").get("map") {
        Some(Json::Arr(values)) => values
            .iter()
            .map(|v| v.as_f64().expect("numeric map entry"))
            .collect(),
        other => panic!("expected map array, got {other:?}"),
    }
}

#[test]
fn reload_swaps_the_model_without_dropping_requests() {
    let config = FusionConfig::tiny();
    let dataset = Dataset::generate(2, 2, 1, 7);
    let first = ir_fusion::train(ModelKind::IrEdge, &dataset, &config);
    let mut longer = config;
    longer.train.epochs += 2;
    let second = ir_fusion::train(ModelKind::IrEdge, &dataset, &longer);

    let checkpoint = std::env::temp_dir().join(format!("irf-reload-{}.bin", std::process::id()));
    let mut model_cfg = config.model;
    model_cfg.in_channels = 11; // 5 shared + 3 layer-current + 3 layer-solution
    model_cfg.linear_head = second.residual;
    let file = std::fs::File::create(&checkpoint).expect("create checkpoint");
    ir_fusion::save_model(&second, ModelKind::IrEdge, model_cfg, file).expect("save checkpoint");

    let server = Server::start(
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 3,
            batch: BatchConfig {
                max_batch: 2,
                deadline: Duration::from_millis(5),
                queue_capacity: 16,
            },
            cache_capacity: 8,
            read_timeout: Duration::from_secs(120),
            ..ServerConfig::default()
        },
        config,
        Some(first),
    )
    .expect("bind ephemeral port");
    let addr = server.addr();

    let predict_body = r#"{"spec":{"class":"fake","seed":3},"include_map":true}"#;
    let (status, before) = request(addr, "POST", "/predict", predict_body);
    assert_eq!(status, 200, "predict failed: {before}");

    // Bad reload requests are rejected without disturbing the model.
    let (status, _) = request(addr, "POST", "/reload", "{}");
    assert_eq!(status, 400, "missing model_path");
    let (status, _) = request(
        addr,
        "POST",
        "/reload",
        r#"{"model_path":"/nonexistent.bin"}"#,
    );
    assert_eq!(status, 422, "unreadable checkpoint");

    // Swap under concurrent predict traffic: every in-flight request
    // must still be answered (by the old model or the new one).
    let workers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                for _ in 0..3 {
                    let (status, body) = request(addr, "POST", "/predict", predict_body);
                    assert_eq!(status, 200, "in-flight predict dropped: {body}");
                }
            })
        })
        .collect();
    let reload_body = format!(r#"{{"model_path":"{}"}}"#, checkpoint.display());
    let (status, body) = request(addr, "POST", "/reload", &reload_body);
    assert_eq!(status, 200, "reload failed: {body}");
    assert!(body.contains("\"reloaded\":true"), "{body}");
    for worker in workers {
        worker.join().expect("predict thread");
    }

    // The same design (served from the feature cache) now goes through
    // the new weights.
    let (status, after) = request(addr, "POST", "/predict", predict_body);
    assert_eq!(status, 200, "predict after reload: {after}");
    assert_ne!(
        map_values(&before),
        map_values(&after),
        "prediction must change after the swap"
    );

    let (status, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(metric_value(&metrics, "irf_model_reloads_total"), 1.0);
    assert!(metrics.contains("irf_requests_total{route=\"reload\",status=\"200\"} 1"));
    assert!(metrics.contains("irf_requests_total{route=\"reload\",status=\"400\"} 1"));
    assert!(metrics.contains("irf_requests_total{route=\"reload\",status=\"422\"} 1"));

    let (status, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.wait();
    let _ = std::fs::remove_file(&checkpoint);
}
