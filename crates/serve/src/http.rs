//! A minimal HTTP/1.1 server-side implementation on plain `std::io`
//! streams: enough protocol to parse one request and write one
//! response. Every exchange is `Connection: close` — the server's unit
//! of work is the request, and closing keeps the state machine trivial.

use std::io::{self, Read, Write};

/// Upper bound on the request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method verb, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path only; query strings are not used by the
    /// serving protocol and are kept verbatim).
    pub target: String,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value with the given (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Transport failure.
    Io(io::Error),
    /// Head or body exceeded the size caps.
    TooLarge,
    /// Protocol violation.
    Malformed(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::TooLarge => write!(f, "request too large"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one request from `stream`.
///
/// # Errors
///
/// [`HttpError::TooLarge`] when the head or body exceeds the caps,
/// [`HttpError::Malformed`] on protocol violations, [`HttpError::Io`]
/// on transport failures.
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    // Byte-at-a-time until the blank line; callers wrap the socket in
    // a BufReader so this costs one memcpy per byte, not one syscall.
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        match stream.read(&mut byte)? {
            0 => return Err(HttpError::Malformed("connection closed mid-head")),
            _ => head.push(byte[0]),
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| HttpError::Malformed("non-utf8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::Malformed("missing method"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("missing target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported version"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed("bad content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Request {
        method,
        target,
        headers,
        body,
    })
}

/// Canonical reason phrase for the status codes the server emits.
#[must_use]
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete `Connection: close` response.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        status_reason(status),
        content_type,
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut &raw[..]).expect("valid");
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/predict");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("Content-Length"), Some("4"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_a_get_without_body() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..]).expect("valid");
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage() {
        let raw = b"NOT-HTTP\r\n\r\n";
        assert!(read_request(&mut &raw[..]).is_err());
        let truncated = b"GET /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(read_request(&mut &truncated[..]).is_err());
    }

    #[test]
    fn response_has_content_length_and_close() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}").expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
