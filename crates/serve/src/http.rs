//! A minimal HTTP/1.1 server-side implementation on plain `std::io`
//! streams: enough protocol to parse requests and write responses.
//!
//! Connections are persistent by default (HTTP/1.1 keep-alive): the
//! connection handler reads requests in a loop until the client sends
//! `Connection: close`, speaks HTTP/1.0 without `keep-alive`, closes
//! the socket, or exceeds the per-request read timeout. An idle
//! timeout (no request started) closes silently; a timeout *mid*
//! request is answered with `408 Request Timeout`.

use std::io::{self, Read, Write};

/// Upper bound on the request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method verb, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path only; query strings are not used by the
    /// serving protocol and are kept verbatim).
    pub target: String,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection may serve another request afterwards:
    /// HTTP/1.1 unless `Connection: close`, HTTP/1.0 only with
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl Request {
    /// First header value with the given (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// Transport failure.
    Io(io::Error),
    /// The peer closed the connection cleanly between requests — the
    /// normal end of a keep-alive session, not an error to report.
    Closed,
    /// The read timeout expired. `mid_request` is `true` when part of
    /// a request had already arrived (client gets a 408); `false` on
    /// an idle connection (closed silently).
    Timeout {
        /// Whether request bytes had been received before the timeout.
        mid_request: bool,
    },
    /// Head or body exceeded the size caps.
    TooLarge,
    /// Protocol violation.
    Malformed(&'static str),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io error: {e}"),
            HttpError::Closed => write!(f, "connection closed"),
            HttpError::Timeout { mid_request: true } => write!(f, "timed out mid-request"),
            HttpError::Timeout { mid_request: false } => write!(f, "idle timeout"),
            HttpError::TooLarge => write!(f, "request too large"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// `true` for the error kinds a timed-out socket read produces
/// (`WouldBlock` on unix `SO_RCVTIMEO`, `TimedOut` on windows).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one request from `stream`.
///
/// # Errors
///
/// [`HttpError::Closed`] when the peer hung up before sending anything
/// (normal for keep-alive), [`HttpError::Timeout`] when a read timeout
/// configured on the underlying socket expired, [`HttpError::TooLarge`]
/// when the head or body exceeds the caps, [`HttpError::Malformed`] on
/// protocol violations, [`HttpError::Io`] on transport failures.
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    // Byte-at-a-time until the blank line; callers wrap the socket in
    // a BufReader so this costs one memcpy per byte, not one syscall.
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge);
        }
        match stream.read(&mut byte) {
            Ok(0) if head.is_empty() => return Err(HttpError::Closed),
            Ok(0) => return Err(HttpError::Malformed("connection closed mid-head")),
            Ok(_) => head.push(byte[0]),
            Err(e) if is_timeout(&e) => {
                return Err(HttpError::Timeout {
                    mid_request: !head.is_empty(),
                })
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    let head = std::str::from_utf8(&head).map_err(|_| HttpError::Malformed("non-utf8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::Malformed("missing method"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(HttpError::Malformed("missing target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported version"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("header without colon"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let connection = headers
        .iter()
        .find(|(k, _)| k == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        // HTTP/1.1 defaults to persistent; HTTP/1.0 to close.
        _ => version != "HTTP/1.0",
    };
    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Malformed("bad content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    if let Err(e) = stream.read_exact(&mut body) {
        if is_timeout(&e) {
            return Err(HttpError::Timeout { mid_request: true });
        }
        return Err(HttpError::Io(e));
    }
    Ok(Request {
        method,
        target,
        headers,
        body,
        keep_alive,
    })
}

/// Canonical reason phrase for the status codes the server emits.
#[must_use]
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response. `keep_alive` selects the `Connection`
/// header; the caller decides whether the connection actually
/// persists.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with_headers(stream, status, content_type, body, keep_alive, &[])
}

/// Like [`write_response`], with extra response headers appended after
/// the standard ones. Header names and values must already be valid
/// HTTP token/text — they are written verbatim.
///
/// # Errors
///
/// Propagates transport failures.
pub fn write_response_with_headers(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
    extra_headers: &[(&str, &str)],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        status_reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut &raw[..]).expect("valid");
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/predict");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("Content-Length"), Some("4"));
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_a_get_without_body() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..]).expect("valid");
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let close = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(!read_request(&mut &close[..]).expect("valid").keep_alive);
        let old = b"GET / HTTP/1.0\r\n\r\n";
        assert!(!read_request(&mut &old[..]).expect("valid").keep_alive);
        let old_ka = b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n";
        assert!(read_request(&mut &old_ka[..]).expect("valid").keep_alive);
    }

    #[test]
    fn clean_eof_before_any_byte_is_closed_not_malformed() {
        let raw: &[u8] = b"";
        assert!(matches!(
            read_request(&mut &raw[..]),
            Err(HttpError::Closed)
        ));
        let partial: &[u8] = b"GET / HT";
        assert!(matches!(
            read_request(&mut &partial[..]),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn timeouts_distinguish_idle_from_mid_request() {
        struct TimesOut {
            prefix: &'static [u8],
            at: usize,
        }
        impl Read for TimesOut {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.at < self.prefix.len() {
                    buf[0] = self.prefix[self.at];
                    self.at += 1;
                    Ok(1)
                } else {
                    Err(io::Error::new(io::ErrorKind::WouldBlock, "timed out"))
                }
            }
        }
        let idle = read_request(&mut TimesOut { prefix: b"", at: 0 });
        assert!(matches!(
            idle,
            Err(HttpError::Timeout { mid_request: false })
        ));
        let mid = read_request(&mut TimesOut {
            prefix: b"GET / HTTP",
            at: 0,
        });
        assert!(matches!(mid, Err(HttpError::Timeout { mid_request: true })));
        // A timeout while the body is outstanding is also mid-request.
        let body = read_request(&mut TimesOut {
            prefix: b"POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\nab",
            at: 0,
        });
        assert!(matches!(
            body,
            Err(HttpError::Timeout { mid_request: true })
        ));
    }

    #[test]
    fn rejects_garbage() {
        let raw = b"NOT-HTTP\r\n\r\n";
        assert!(read_request(&mut &raw[..]).is_err());
        let truncated = b"GET /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(read_request(&mut &truncated[..]).is_err());
    }

    #[test]
    fn response_carries_requested_connection_header() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}", false).expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let mut out = Vec::new();
        write_response(&mut out, 200, "text/plain", b"ok", true).expect("write");
        assert!(String::from_utf8(out)
            .expect("utf8")
            .contains("Connection: keep-alive\r\n"));
    }

    #[test]
    fn reason_phrases_cover_served_codes() {
        for code in [200, 400, 404, 405, 408, 409, 413, 422, 429, 500, 503] {
            assert_ne!(status_reason(code), "Unknown", "{code}");
        }
    }

    #[test]
    fn extra_headers_are_appended_before_the_body() {
        let mut out = Vec::new();
        write_response_with_headers(
            &mut out,
            200,
            "application/json",
            b"{}",
            true,
            &[("X-Irf-Request-Id", "00000000deadbeef")],
        )
        .expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("X-Irf-Request-Id: 00000000deadbeef\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let head_end = text.find("\r\n\r\n").expect("head/body split");
        assert!(text.find("X-Irf-Request-Id").expect("header") < head_end);
    }
}
