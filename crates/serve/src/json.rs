//! Hand-rolled JSON: a tree value with a writer and a recursive-descent
//! parser. The repo carries no external dependencies, so the serving
//! layer brings its own (small, strict) JSON implementation.

use std::fmt;

/// A JSON value.
///
/// Objects preserve insertion order (they are association lists, not
/// maps), which keeps rendered responses deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered association list.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (`None` on other variants).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders to compact JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(*v, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes a number. JSON has no NaN/infinity, so non-finite values
/// render as `null`; finite values use Rust's shortest round-trip
/// formatting, with integral values printed without a fraction.
fn write_number(v: f64, out: &mut String) {
    use fmt::Write as _;
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Writes `s` as a quoted JSON string with the mandatory escapes.
fn write_escaped(s: &str, out: &mut String) {
    use fmt::Write as _;
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// content rejected).
///
/// # Errors
///
/// Returns a [`JsonError`] on malformed input.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for the
                            // serving protocol; replace them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

/// Shorthand for building an object.
#[must_use]
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let src = r#"{"spec":{"class":"fake","seed":7},"include_map":false,"xs":[1,2.5,-3e2],"note":"a\"b\\c\n"}"#;
        let v = parse(src).expect("valid");
        assert_eq!(
            v.get("spec")
                .and_then(|s| s.get("seed"))
                .and_then(Json::as_u64),
            Some(7)
        );
        assert_eq!(v.get("include_map").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("note").and_then(Json::as_str), Some("a\"b\\c\n"));
        let reparsed = parse(&v.render()).expect("render is valid json");
        assert_eq!(v, reparsed);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn numbers_render_without_noise() {
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(0.25).render(), "0.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(parse("0.25").expect("num"), Json::Num(0.25));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""Aé""#).expect("valid");
        assert_eq!(v.as_str(), Some("Aé"));
        let esc = parse(r#""\u0041z""#).expect("valid");
        assert_eq!(esc.as_str(), Some("Az"));
    }
}
