//! The named model registry behind `/v1/models`.
//!
//! Generalizes the single swappable [`ModelSlot`] into a map of named
//! entries, each holding one [`ModelSlot`] per precision variant
//! (f32 / f16 / int8). Variants are derived once per (re)load via
//! [`TrainedModel::precision_variant`] — the f32 weights are shared
//! structurally and the quantization sidecars rebuilt per mode — so a
//! request can pick any precision of any loaded model and the
//! micro-batcher still reads exactly one slot per batch.
//!
//! Slot identity is stable across reloads: `POST /v1/models/{name}/reload`
//! swaps the three variant slots in place (under the registry lock, so
//! the swap is atomic with respect to concurrent resolves), and jobs
//! already queued against the old `Arc<TrainedModel>` finish on the
//! model they started with.

use crate::batch::ModelSlot;
use ir_fusion::{PrecisionMode, TrainedModel};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// All precision variants, in listing order.
pub const PRECISIONS: [PrecisionMode; 3] =
    [PrecisionMode::F32, PrecisionMode::F16, PrecisionMode::Int8];

/// One named entry: a slot per precision variant plus the precision
/// the underlying checkpoint declared (what an unqualified request
/// runs at).
struct Entry {
    /// Indexed by [`PrecisionMode::id`].
    slots: [Arc<ModelSlot>; 3],
    /// Precision of the loaded checkpoint; requests that don't name a
    /// precision use this variant.
    loaded: PrecisionMode,
    /// Architecture display name (stable across reloads of the same
    /// architecture; refreshed on every reload).
    architecture: String,
    /// Trained parameter scalars.
    params: usize,
    /// Completed reloads of this entry (0 for the startup model).
    reloads: u64,
}

/// A summary row of one registry entry (rendered by `GET /v1/models`).
#[derive(Debug, Clone)]
pub struct ModelInfo {
    /// Registry name (`default` for the startup model).
    pub name: String,
    /// Architecture display name (e.g. `IR-Fusion`).
    pub architecture: String,
    /// Trained parameter scalars.
    pub params: usize,
    /// Precision of the loaded checkpoint.
    pub loaded_precision: PrecisionMode,
    /// Precisions servable for this entry.
    pub precisions: Vec<PrecisionMode>,
    /// Completed reloads of this entry.
    pub reloads: u64,
}

/// Named, hot-swappable trained models with per-precision variants.
pub struct ModelRegistry {
    entries: Mutex<BTreeMap<String, Entry>>,
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ModelRegistry({} models)", self.len())
    }
}

fn build_entry(model: TrainedModel, reloads: u64) -> Entry {
    let loaded = model.precision;
    let architecture = model.model.name().to_string();
    let params = model.store.num_scalars();
    // Two structural copies requantized per mode; the third variant is
    // the loaded model itself (avoids one copy).
    let variant = |mode: PrecisionMode| Arc::new(ModelSlot::new(model.precision_variant(mode)));
    let slots = match loaded {
        PrecisionMode::F32 => {
            let f16 = variant(PrecisionMode::F16);
            let int8 = variant(PrecisionMode::Int8);
            [Arc::new(ModelSlot::new(model)), f16, int8]
        }
        PrecisionMode::F16 => {
            let f32v = variant(PrecisionMode::F32);
            let int8 = variant(PrecisionMode::Int8);
            [f32v, Arc::new(ModelSlot::new(model)), int8]
        }
        PrecisionMode::Int8 => {
            let f32v = variant(PrecisionMode::F32);
            let f16 = variant(PrecisionMode::F16);
            [f32v, f16, Arc::new(ModelSlot::new(model))]
        }
    };
    Entry {
        slots,
        loaded,
        architecture,
        params,
        reloads,
    }
}

impl ModelRegistry {
    /// A registry holding `initial` under the name `default`.
    #[must_use]
    pub fn new(initial: TrainedModel) -> Self {
        let mut entries = BTreeMap::new();
        entries.insert("default".to_string(), build_entry(initial, 0));
        ModelRegistry {
            entries: Mutex::new(entries),
        }
    }

    /// Number of loaded models.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// `true` when no model is loaded (never the case today — the
    /// registry is only constructed with an initial model).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The slot serving `name` at `precision` (`None` precision → the
    /// entry's loaded checkpoint precision). `Err` carries the sorted
    /// names of the models that ARE loaded, for the error envelope.
    ///
    /// # Errors
    ///
    /// Returns the list of loaded model names when `name` is unknown.
    pub fn resolve(
        &self,
        name: &str,
        precision: Option<PrecisionMode>,
    ) -> Result<(Arc<ModelSlot>, PrecisionMode), Vec<String>> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        match entries.get(name) {
            Some(entry) => {
                let mode = precision.unwrap_or(entry.loaded);
                Ok((Arc::clone(&entry.slots[mode.id() as usize]), mode))
            }
            None => Err(entries.keys().cloned().collect()),
        }
    }

    /// Loads `model` under `name`: existing entries have all three
    /// variant slots swapped in place (batches already collected keep
    /// the model they resolved), new names get fresh slots. Returns
    /// the entry's total reload count.
    pub fn reload(&self, name: &str, model: TrainedModel) -> u64 {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        match entries.get_mut(name) {
            Some(entry) => {
                let next = build_entry(model, entry.reloads + 1);
                for (slot, fresh) in entry.slots.iter().zip(next.slots) {
                    // Move the variant out of its fresh slot into the
                    // existing one, preserving slot identity for
                    // queued jobs.
                    slot.swap_arc(fresh.get());
                }
                entry.loaded = next.loaded;
                entry.architecture = next.architecture;
                entry.params = next.params;
                entry.reloads += 1;
                entry.reloads
            }
            None => {
                entries.insert(name.to_string(), build_entry(model, 0));
                0
            }
        }
    }

    /// Summaries of every entry, name-sorted (deterministic listing).
    #[must_use]
    pub fn list(&self) -> Vec<ModelInfo> {
        let entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries
            .iter()
            .map(|(name, entry)| ModelInfo {
                name: name.clone(),
                architecture: entry.architecture.clone(),
                params: entry.params,
                loaded_precision: entry.loaded,
                precisions: PRECISIONS.to_vec(),
                reloads: entry.reloads,
            })
            .collect()
    }
}

/// `true` when `name` is usable as a registry key in a URL path:
/// nonempty, at most 64 bytes, `[A-Za-z0-9._-]` only.
#[must_use]
pub fn valid_model_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_fusion::FusionConfig;
    use irf_data::Dataset;
    use irf_models::ModelKind;

    fn tiny_model() -> TrainedModel {
        let config = FusionConfig::tiny();
        let dataset = Dataset::generate(2, 2, 1, 7);
        ir_fusion::train(ModelKind::IrEdge, &dataset, &config)
    }

    #[test]
    fn registry_serves_every_precision_variant() {
        let registry = ModelRegistry::new(tiny_model());
        assert_eq!(registry.len(), 1);
        for mode in PRECISIONS {
            let (slot, resolved) = registry
                .resolve("default", Some(mode))
                .expect("default exists");
            assert_eq!(resolved, mode);
            assert_eq!(slot.get().precision, mode);
        }
        // Unqualified resolve uses the loaded precision.
        let (_, resolved) = registry.resolve("default", None).expect("default exists");
        assert_eq!(resolved, PrecisionMode::F32);
    }

    #[test]
    fn unknown_models_report_the_loaded_names() {
        let registry = ModelRegistry::new(tiny_model());
        let err = registry.resolve("nope", None).expect_err("unknown");
        assert_eq!(err, vec!["default".to_string()]);
    }

    #[test]
    fn reload_keeps_slot_identity_and_counts() {
        let registry = ModelRegistry::new(tiny_model());
        let (before, _) = registry.resolve("default", None).expect("exists");
        assert_eq!(registry.reload("default", tiny_model()), 1);
        let (after, _) = registry.resolve("default", None).expect("exists");
        assert!(Arc::ptr_eq(&before, &after), "slot identity must survive");
        assert_eq!(registry.reload("alt", tiny_model()), 0);
        assert_eq!(registry.len(), 2);
        let names: Vec<String> = registry.list().into_iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["alt".to_string(), "default".to_string()]);
    }

    #[test]
    fn model_names_are_validated() {
        assert!(valid_model_name("default"));
        assert!(valid_model_name("exp-2.b_1"));
        assert!(!valid_model_name(""));
        assert!(!valid_model_name("a/b"));
        assert!(!valid_model_name("x".repeat(65).as_str()));
        assert!(!valid_model_name("sp ace"));
    }
}
