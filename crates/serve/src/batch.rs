//! The micro-batching queue: concurrent predict requests are collected
//! up to a batch size `B` or a deadline `T`, whichever comes first, and
//! executed as ONE batched forward pass.
//!
//! Batching is free of accuracy consequences here: the batched forward
//! is bitwise identical to running each sample alone (asserted by
//! `tests/integration_batch.rs`), so the only observable effect is
//! throughput — one tape walk amortizes scheduling and parameter
//! traffic across all samples in flight.

use crate::metrics::ServerMetrics;
use ir_fusion::{IrFusionPipeline, PreparedStack, TrainedModel};
use irf_metrics::Timer;
use irf_pg::GridMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of the micro-batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum requests fused into one forward pass.
    pub max_batch: usize,
    /// How long the collector waits for more requests after the first
    /// one arrives.
    pub deadline: Duration,
    /// Bound on queued-but-unbatched requests; submissions beyond it
    /// are rejected (the server answers 429).
    pub queue_capacity: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 4,
            deadline: Duration::from_millis(5),
            queue_capacity: 64,
        }
    }
}

/// One queued inference request: the prepared stack to run and the
/// channel that receives the predicted map.
pub struct PredictJob {
    /// Prepared features + rough map (label-free).
    pub stack: Arc<PreparedStack>,
    /// Where the prediction is delivered.
    pub reply: mpsc::Sender<GridMap>,
}

/// Why a submission was not queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — shed load (HTTP 429).
    QueueFull,
    /// The batcher has shut down (HTTP 503).
    Closed,
}

/// Handle to the batcher thread.
pub struct Batcher {
    tx: mpsc::SyncSender<PredictJob>,
    handle: JoinHandle<()>,
}

impl Batcher {
    /// Spawns the batcher thread. It owns the trained model; request
    /// handlers only prepare stacks and queue jobs.
    #[must_use]
    pub fn start(
        pipeline: IrFusionPipeline,
        model: TrainedModel,
        config: BatchConfig,
        metrics: Arc<ServerMetrics>,
    ) -> Batcher {
        let (tx, rx) = mpsc::sync_channel::<PredictJob>(config.queue_capacity.max(1));
        let handle = std::thread::Builder::new()
            .name("irf-batcher".into())
            .spawn(move || run_batcher(&rx, &pipeline, &model, config, &metrics))
            .expect("spawn batcher thread");
        Batcher { tx, handle }
    }

    /// A cloneable submission endpoint.
    #[must_use]
    pub fn sender(&self) -> mpsc::SyncSender<PredictJob> {
        self.tx.clone()
    }

    /// Drops the submission endpoint and joins the thread after it
    /// drains every queued job (provided all cloned senders are gone).
    pub fn shutdown(self) {
        let Batcher { tx, handle } = self;
        drop(tx);
        let _ = handle.join();
    }
}

/// Non-blocking submission helper shared by the server's handlers.
///
/// # Errors
///
/// [`SubmitError::QueueFull`] when the bounded queue is at capacity,
/// [`SubmitError::Closed`] when the batcher is gone.
pub fn try_submit(tx: &mpsc::SyncSender<PredictJob>, job: PredictJob) -> Result<(), SubmitError> {
    match tx.try_send(job) {
        Ok(()) => Ok(()),
        Err(mpsc::TrySendError::Full(_)) => Err(SubmitError::QueueFull),
        Err(mpsc::TrySendError::Disconnected(_)) => Err(SubmitError::Closed),
    }
}

fn run_batcher(
    rx: &mpsc::Receiver<PredictJob>,
    pipeline: &IrFusionPipeline,
    model: &TrainedModel,
    config: BatchConfig,
    metrics: &ServerMetrics,
) {
    let max_batch = config.max_batch.max(1);
    loop {
        // Block for the first job; every sender gone means shutdown
        // (after the channel's remaining jobs have been drained).
        let first = match rx.recv() {
            Ok(job) => job,
            Err(mpsc::RecvError) => return,
        };
        let mut jobs = vec![first];
        let deadline = Instant::now() + config.deadline;
        while jobs.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => jobs.push(job),
                Err(mpsc::RecvTimeoutError::Timeout | mpsc::RecvTimeoutError::Disconnected) => {
                    break
                }
            }
        }
        let stacks: Vec<&PreparedStack> = jobs.iter().map(|j| j.stack.as_ref()).collect();
        let (maps, seconds) = Timer::time(|| pipeline.predict_batch(model, &stacks));
        metrics.observe_batch(jobs.len());
        metrics.observe_stage("forward", seconds);
        for (job, map) in jobs.iter().zip(maps) {
            // A handler that gave up (client disconnect) just drops
            // its receiver; that is not the batcher's problem.
            let _ = job.reply.send(map);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_fusion::FusionConfig;
    use irf_data::Dataset;
    use irf_models::ModelKind;

    #[test]
    fn batcher_serves_jobs_and_drains_on_shutdown() {
        let config = FusionConfig::tiny();
        let dataset = Dataset::generate(2, 2, 1, 7);
        let trained = ir_fusion::train(ModelKind::IrEdge, &dataset, &config);
        let pipeline = IrFusionPipeline::new(config);
        let stack = Arc::new(pipeline.prepare_stack(&dataset.designs[0].grid));
        let expected = pipeline.predict(&trained, &stack);

        let metrics = Arc::new(ServerMetrics::new(4));
        let batcher = Batcher::start(
            pipeline,
            trained,
            BatchConfig {
                max_batch: 4,
                deadline: Duration::from_millis(1),
                queue_capacity: 8,
            },
            Arc::clone(&metrics),
        );
        let tx = batcher.sender();
        let mut replies = Vec::new();
        for _ in 0..3 {
            let (reply_tx, reply_rx) = mpsc::channel();
            try_submit(
                &tx,
                PredictJob {
                    stack: Arc::clone(&stack),
                    reply: reply_tx,
                },
            )
            .expect("queue has room");
            replies.push(reply_rx);
        }
        for rx in replies {
            let map = rx.recv().expect("batcher replies");
            assert_eq!(map, expected, "batched result must equal solo predict");
        }
        drop(tx);
        batcher.shutdown();
    }
}
