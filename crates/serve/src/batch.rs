//! The micro-batching queue: concurrent predict requests are collected
//! up to a batch size `B` or a deadline `T`, whichever comes first, and
//! executed as ONE batched forward pass.
//!
//! Batching is free of accuracy consequences here: the batched forward
//! is bitwise identical to running each sample alone (asserted by
//! `tests/integration_batch.rs`), so the only observable effect is
//! throughput — one tape walk amortizes scheduling and parameter
//! traffic across all samples in flight.

use crate::metrics::ServerMetrics;
use ir_fusion::{IrFusionPipeline, PreparedStack, TrainedModel};
use irf_metrics::Timer;
use irf_pg::GridMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// An atomically swappable trained model, shared between the batcher
/// and the `POST /reload` endpoint.
///
/// The batcher reads the slot once per batch ([`ModelSlot::get`] clones
/// the inner `Arc` under a short lock), so a [`ModelSlot::swap`] never
/// disturbs a forward pass already in flight: batches collected before
/// the swap finish on the model they started with, batches collected
/// after it run on the new one. No request is dropped either way.
#[derive(Debug)]
pub struct ModelSlot {
    model: Mutex<Arc<TrainedModel>>,
}

impl ModelSlot {
    /// Wraps an initial model.
    #[must_use]
    pub fn new(model: TrainedModel) -> Self {
        ModelSlot {
            model: Mutex::new(Arc::new(model)),
        }
    }

    /// The current model (cheap `Arc` clone).
    #[must_use]
    pub fn get(&self) -> Arc<TrainedModel> {
        Arc::clone(&self.model.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Replaces the model. Takes effect from the next collected batch.
    pub fn swap(&self, model: TrainedModel) {
        self.swap_arc(Arc::new(model));
    }

    /// [`ModelSlot::swap`] for an already-shared model (the registry
    /// moves prepared precision variants between slots this way).
    pub fn swap_arc(&self, model: Arc<TrainedModel>) {
        *self.model.lock().unwrap_or_else(|e| e.into_inner()) = model;
    }
}

/// Tunables of the micro-batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum requests fused into one forward pass.
    pub max_batch: usize,
    /// How long the collector waits for more requests after the first
    /// one arrives.
    pub deadline: Duration,
    /// Bound on queued-but-unbatched requests; submissions beyond it
    /// are rejected (the server answers 429).
    pub queue_capacity: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 4,
            deadline: Duration::from_millis(5),
            queue_capacity: 64,
        }
    }
}

/// One queued inference request: the prepared stack to run, the model
/// slot to run it through, and the channel that receives the predicted
/// map.
pub struct PredictJob {
    /// Prepared features + rough map (label-free).
    pub stack: Arc<PreparedStack>,
    /// The (model, precision) variant this job runs on, resolved by
    /// the handler. The batcher groups collected jobs by slot, so
    /// every executed forward batch is homogeneous in both model and
    /// precision mode.
    pub slot: Arc<ModelSlot>,
    /// Id of the originating HTTP request (`0` when none). Carried
    /// explicitly: the batcher thread never inherits the handler's
    /// thread-local `irf_trace::request` scope.
    pub request: u64,
    /// When the job was queued; the batcher derives queue wait from it.
    pub submitted: Instant,
    /// Where the prediction (plus its accounting) is delivered.
    pub reply: mpsc::Sender<PredictReply>,
}

/// What the batcher delivers for one job: the prediction and the
/// accounting the access log and flight recorder attribute to the
/// originating request.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictReply {
    /// The predicted IR-drop map.
    pub map: GridMap,
    /// How long the job sat queued before its batch's forward started.
    pub queue_seconds: f64,
    /// Number of jobs fused into the same forward pass.
    pub batch_size: usize,
}

/// Why a submission was not queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is full — shed load (HTTP 429).
    QueueFull,
    /// The batcher has shut down (HTTP 503).
    Closed,
}

/// Handle to the batcher thread.
pub struct Batcher {
    tx: mpsc::SyncSender<PredictJob>,
    handle: JoinHandle<()>,
}

impl Batcher {
    /// Spawns the batcher thread. Each job carries the [`ModelSlot`]
    /// it resolved against (a named model at one precision); the
    /// batcher reads each distinct slot once per batch and a
    /// `POST /v1/models/{name}/reload` swaps slots in place.
    #[must_use]
    pub fn start(
        pipeline: IrFusionPipeline,
        config: BatchConfig,
        metrics: Arc<ServerMetrics>,
    ) -> Batcher {
        let (tx, rx) = mpsc::sync_channel::<PredictJob>(config.queue_capacity.max(1));
        let handle = std::thread::Builder::new()
            .name("irf-batcher".into())
            .spawn(move || run_batcher(&rx, &pipeline, config, &metrics))
            .expect("spawn batcher thread");
        Batcher { tx, handle }
    }

    /// A cloneable submission endpoint.
    #[must_use]
    pub fn sender(&self) -> mpsc::SyncSender<PredictJob> {
        self.tx.clone()
    }

    /// Drops the submission endpoint and joins the thread after it
    /// drains every queued job (provided all cloned senders are gone).
    pub fn shutdown(self) {
        let Batcher { tx, handle } = self;
        drop(tx);
        let _ = handle.join();
    }
}

/// Non-blocking submission helper shared by the server's handlers.
///
/// # Errors
///
/// [`SubmitError::QueueFull`] when the bounded queue is at capacity,
/// [`SubmitError::Closed`] when the batcher is gone.
pub fn try_submit(tx: &mpsc::SyncSender<PredictJob>, job: PredictJob) -> Result<(), SubmitError> {
    match tx.try_send(job) {
        Ok(()) => Ok(()),
        Err(mpsc::TrySendError::Full(_)) => Err(SubmitError::QueueFull),
        Err(mpsc::TrySendError::Disconnected(_)) => Err(SubmitError::Closed),
    }
}

fn run_batcher(
    rx: &mpsc::Receiver<PredictJob>,
    pipeline: &IrFusionPipeline,
    config: BatchConfig,
    metrics: &ServerMetrics,
) {
    let max_batch = config.max_batch.max(1);
    loop {
        // Block for the first job; every sender gone means shutdown
        // (after the channel's remaining jobs have been drained).
        let first = match rx.recv() {
            Ok(job) => job,
            Err(mpsc::RecvError) => return,
        };
        let mut jobs = vec![first];
        let deadline = Instant::now() + config.deadline;
        while jobs.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => jobs.push(job),
                Err(mpsc::RecvTimeoutError::Timeout | mpsc::RecvTimeoutError::Disconnected) => {
                    break
                }
            }
        }
        // Partition the collected jobs into homogeneous groups — one
        // per distinct (model, precision) slot, in arrival order — so
        // a forward batch never mixes models or precision modes.
        let mut groups: Vec<(Arc<ModelSlot>, Vec<PredictJob>)> = Vec::new();
        for job in jobs {
            match groups
                .iter_mut()
                .find(|(slot, _)| Arc::ptr_eq(slot, &job.slot))
            {
                Some((_, group)) => group.push(job),
                None => {
                    let slot = Arc::clone(&job.slot);
                    groups.push((slot, vec![job]));
                }
            }
        }
        for (slot, jobs) in groups {
            let stacks: Vec<&PreparedStack> = jobs.iter().map(|j| j.stack.as_ref()).collect();
            // Resolve the model once per group: a concurrent reload
            // takes effect on the NEXT batch, never mid-forward.
            let model = slot.get();
            let batch_started = Instant::now();
            let (maps, seconds) = Timer::time(|| pipeline.predict_batch(&model, &stacks));
            metrics.observe_batch(jobs.len());
            metrics.observe_stage("forward", seconds);
            let batch_size = jobs.len();
            if irf_obs::log::enabled(irf_obs::log::Level::Debug) {
                // The per-batch detail record names every fused request
                // so a slow forward can be pinned to its co-batched
                // peers.
                let ids: Vec<String> = jobs.iter().map(|j| format!("{:016x}", j.request)).collect();
                let ids = ids.join(",");
                irf_obs::debug(
                    "forward_batch",
                    &[
                        ("batch_size", batch_size.into()),
                        ("forward_seconds", seconds.into()),
                        ("precision", model.precision.name().into()),
                        ("requests", ids.as_str().into()),
                    ],
                );
            }
            for (job, map) in jobs.into_iter().zip(maps) {
                let queue_seconds = batch_started
                    .saturating_duration_since(job.submitted)
                    .as_secs_f64();
                // A handler that gave up (client disconnect) just
                // drops its receiver; that is not the batcher's
                // problem.
                let _ = job.reply.send(PredictReply {
                    map,
                    queue_seconds,
                    batch_size,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_fusion::FusionConfig;
    use irf_data::Dataset;
    use irf_models::ModelKind;

    #[test]
    fn batcher_serves_jobs_and_drains_on_shutdown() {
        let config = FusionConfig::tiny();
        let dataset = Dataset::generate(2, 2, 1, 7);
        let trained = ir_fusion::train(ModelKind::IrEdge, &dataset, &config);
        let pipeline = IrFusionPipeline::new(config);
        let stack = Arc::new(
            pipeline
                .prepare_stack(&dataset.designs[0].grid)
                .expect("grid has pads"),
        );
        let expected = pipeline.predict(&trained, &stack);

        let metrics = Arc::new(ServerMetrics::new(4));
        let slot = Arc::new(ModelSlot::new(trained));
        let batcher = Batcher::start(
            pipeline,
            BatchConfig {
                max_batch: 4,
                deadline: Duration::from_millis(1),
                queue_capacity: 8,
            },
            Arc::clone(&metrics),
        );
        let tx = batcher.sender();
        let mut replies = Vec::new();
        for seq in 0..3u64 {
            let (reply_tx, reply_rx) = mpsc::channel();
            try_submit(
                &tx,
                PredictJob {
                    stack: Arc::clone(&stack),
                    slot: Arc::clone(&slot),
                    request: seq + 1,
                    submitted: Instant::now(),
                    reply: reply_tx,
                },
            )
            .expect("queue has room");
            replies.push(reply_rx);
        }
        for rx in replies {
            let reply = rx.recv().expect("batcher replies");
            assert_eq!(
                reply.map, expected,
                "batched result must equal solo predict"
            );
            assert!(reply.batch_size >= 1 && reply.batch_size <= 3);
            assert!(reply.queue_seconds >= 0.0);
        }
        drop(tx);
        batcher.shutdown();
    }

    #[test]
    fn model_swap_takes_effect_on_the_next_batch() {
        let config = FusionConfig::tiny();
        let dataset = Dataset::generate(2, 2, 1, 7);
        let first = ir_fusion::train(ModelKind::IrEdge, &dataset, &config);
        let mut longer = config;
        longer.train.epochs += 1;
        let second = ir_fusion::train(ModelKind::IrEdge, &dataset, &longer);
        let pipeline = IrFusionPipeline::new(config);
        let stack = Arc::new(
            pipeline
                .prepare_stack(&dataset.designs[0].grid)
                .expect("grid has pads"),
        );
        let from_first = pipeline.predict(&first, &stack);
        let from_second = pipeline.predict(&second, &stack);
        assert_ne!(from_first, from_second, "models must actually differ");

        let slot = Arc::new(ModelSlot::new(first));
        let metrics = Arc::new(ServerMetrics::new(4));
        let batcher = Batcher::start(pipeline, BatchConfig::default(), metrics);
        let tx = batcher.sender();

        let predict_once = |tx: &mpsc::SyncSender<PredictJob>| {
            let (reply_tx, reply_rx) = mpsc::channel();
            try_submit(
                tx,
                PredictJob {
                    stack: Arc::clone(&stack),
                    slot: Arc::clone(&slot),
                    request: 0,
                    submitted: Instant::now(),
                    reply: reply_tx,
                },
            )
            .expect("queue has room");
            reply_rx.recv().expect("batcher replies").map
        };

        assert_eq!(predict_once(&tx), from_first);
        slot.swap(second);
        assert_eq!(predict_once(&tx), from_second, "swap must be visible");
        drop(tx);
        batcher.shutdown();
    }

    #[test]
    fn mixed_precision_jobs_batch_homogeneously() {
        let config = FusionConfig::tiny();
        let dataset = Dataset::generate(2, 2, 1, 7);
        let trained = ir_fusion::train(ModelKind::IrEdge, &dataset, &config);
        let int8 = trained.precision_variant(ir_fusion::PrecisionMode::Int8);
        let pipeline = IrFusionPipeline::new(config);
        let stack = Arc::new(
            pipeline
                .prepare_stack(&dataset.designs[0].grid)
                .expect("grid has pads"),
        );
        let expected_f32 = pipeline.predict(&trained, &stack);
        let expected_int8 = pipeline.predict(&int8, &stack);
        assert_ne!(expected_f32, expected_int8, "precisions must differ");

        let slots = [
            Arc::new(ModelSlot::new(trained)),
            Arc::new(ModelSlot::new(int8)),
        ];
        let metrics = Arc::new(ServerMetrics::new(8));
        let batcher = Batcher::start(
            pipeline,
            BatchConfig {
                max_batch: 8,
                deadline: Duration::from_millis(50),
                queue_capacity: 8,
            },
            metrics,
        );
        let tx = batcher.sender();
        // Interleave the two precisions so one collected batch holds
        // both; the batcher must split it into homogeneous groups.
        let mut replies = Vec::new();
        for i in 0..4usize {
            let (reply_tx, reply_rx) = mpsc::channel();
            try_submit(
                &tx,
                PredictJob {
                    stack: Arc::clone(&stack),
                    slot: Arc::clone(&slots[i % 2]),
                    request: i as u64,
                    submitted: Instant::now(),
                    reply: reply_tx,
                },
            )
            .expect("queue has room");
            replies.push(reply_rx);
        }
        for (i, rx) in replies.into_iter().enumerate() {
            let reply = rx.recv().expect("batcher replies");
            let expected = if i % 2 == 0 {
                &expected_f32
            } else {
                &expected_int8
            };
            assert_eq!(
                &reply.map, expected,
                "job {i} must ride its own precision group"
            );
            assert!(
                reply.batch_size <= 2,
                "groups must not mix slots (got batch of {})",
                reply.batch_size
            );
        }
        drop(tx);
        batcher.shutdown();
    }
}
