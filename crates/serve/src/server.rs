//! The HTTP server: a `std::net::TcpListener` accept loop, a small
//! pool of connection handlers, and the micro-batcher behind them.
//!
//! Routes:
//!
//! - `GET /healthz` — liveness probe, plain `ok`.
//! - `GET /metrics` — Prometheus text exposition.
//! - `GET /trace` — Chrome trace-event JSON of the most recent
//!   `/predict` (load it in Perfetto / `chrome://tracing`).
//! - `POST /predict` — run one design through the pipeline.
//! - `POST /whatif` — incremental re-analysis: a base design
//!   fingerprint (as reported by `/predict`) plus per-cell current
//!   deltas. Rides the stage store's warm artifacts — the assembled
//!   MNA system, AMG hierarchy and structural feature maps are reused
//!   and only the rough solve, stack assembly and model forward run.
//! - `POST /reload` — swap in a checkpoint (`{"model_path": ...}`)
//!   without dropping in-flight requests: the batcher resolves the
//!   model once per batch, so batches already collected finish on the
//!   old weights and later ones use the new.
//! - `POST /shutdown` — graceful drain (see below).
//!
//! Connections are persistent (HTTP/1.1 keep-alive) and carry a
//! per-request read timeout: an idle connection is closed silently
//! when it expires, a half-sent request is answered with 408.
//!
//! Shutdown: the toolchain-only build has no way to trap SIGTERM /
//! ctrl-c (that needs `libc`/`signal-hook`, and this repo is
//! dependency-free by design), so graceful termination is exposed as
//! an explicit `POST /shutdown` endpoint and the in-process
//! [`Server::shutdown`] handle instead. Both stop accepting, drain
//! queued batches, and join every thread.

use crate::batch::{try_submit, BatchConfig, Batcher, ModelSlot, PredictJob, SubmitError};
use crate::http::{read_request, write_response, HttpError, Request};
use crate::json::{obj, parse, Json};
use crate::metrics::ServerMetrics;
use ir_fusion::{design_fingerprint, FusionConfig, IrFusionPipeline, StageStore, TrainedModel};
use irf_metrics::Timer;
use irf_pg::{GridMap, PowerGrid};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` for an ephemeral
    /// port).
    pub addr: String,
    /// Connection-handler threads.
    pub workers: usize,
    /// Micro-batcher settings.
    pub batch: BatchConfig,
    /// Stage-store capacity (artifacts per stage, roughly "designs
    /// kept warm").
    pub cache_capacity: usize,
    /// Per-request read timeout. An idle keep-alive connection is
    /// closed silently when it expires; a connection that timed out
    /// mid-request gets a 408 first.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            batch: BatchConfig::default(),
            cache_capacity: 32,
            read_timeout: Duration::from_secs(30),
        }
    }
}

struct State {
    pipeline: IrFusionPipeline,
    cache: Arc<StageStore>,
    metrics: Arc<ServerMetrics>,
    /// `None` once shutdown started (or when serving without a model
    /// was requested and no batcher exists).
    predict_tx: Mutex<Option<mpsc::SyncSender<PredictJob>>>,
    /// The swappable model behind the batcher; `None` when serving
    /// without a model (then `/reload` answers 409).
    model_slot: Option<Arc<ModelSlot>>,
    has_model: bool,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    read_timeout: Duration,
    /// Chrome trace JSON of the most recent `/predict` (served by
    /// `GET /trace`). Best-effort: the trace collector is a process
    /// singleton, so under concurrent predicts only one request at a
    /// time records.
    last_trace: Mutex<Option<String>>,
}

/// A running server; dropping the handle does NOT stop it — call
/// [`Server::shutdown`] (or POST `/shutdown`) then [`Server::wait`].
pub struct Server {
    state: Arc<State>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Option<Batcher>,
}

impl Server {
    /// Binds and starts serving. `model` is optional: without one,
    /// `/predict` answers with the rough numerical map only
    /// (`"source":"rough"`).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(
        config: &ServerConfig,
        fusion: FusionConfig,
        model: Option<TrainedModel>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let cache = Arc::new(StageStore::new(config.cache_capacity));
        let metrics = Arc::new(ServerMetrics::new(config.batch.max_batch));
        let pipeline = IrFusionPipeline::new(fusion).with_cache(Arc::clone(&cache));
        let has_model = model.is_some();
        let model_slot = model.map(|trained| Arc::new(ModelSlot::new(trained)));
        let batcher = model_slot.as_ref().map(|slot| {
            Batcher::start(
                pipeline.clone(),
                Arc::clone(slot),
                config.batch,
                Arc::clone(&metrics),
            )
        });
        let state = Arc::new(State {
            pipeline,
            cache,
            metrics,
            predict_tx: Mutex::new(batcher.as_ref().map(Batcher::sender)),
            model_slot,
            has_model,
            shutting_down: AtomicBool::new(false),
            addr,
            read_timeout: config.read_timeout,
            last_trace: Mutex::new(None),
        });

        // Accepted connections flow to the handler pool over a channel;
        // the accept thread owns the sender, so its exit hangs up the
        // workers.
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&conn_rx);
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("irf-serve-{i}"))
                    .spawn(move || worker_loop(&rx, &state))
                    .expect("spawn worker thread")
            })
            .collect();
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("irf-serve-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_state.shutting_down.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if conn_tx.send(stream).is_err() {
                        break;
                    }
                }
                // conn_tx drops here: workers finish queued connections
                // and exit.
            })
            .expect("spawn accept thread");
        Ok(Server {
            state,
            accept: Some(accept),
            workers,
            batcher,
        })
    }

    /// The bound address (useful with ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The stage-artifact store (shared with the pipeline).
    #[must_use]
    pub fn cache(&self) -> &Arc<StageStore> {
        &self.state.cache
    }

    /// Starts a graceful shutdown: stop accepting, reject new predict
    /// submissions, let queued batches finish. Idempotent.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.state);
    }

    /// Blocks until every thread has exited (after
    /// [`Server::shutdown`] or a `POST /shutdown`).
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(batcher) = self.batcher.take() {
            batcher.shutdown();
        }
    }
}

/// Flags shutdown, closes the predict queue, and pokes the listener so
/// the accept loop observes the flag even while blocked in `accept`.
fn initiate_shutdown(state: &State) {
    if state.shutting_down.swap(true, Ordering::SeqCst) {
        return;
    }
    state
        .predict_tx
        .lock()
        .expect("predict sender poisoned")
        .take();
    // Self-connect unblocks the accept loop; the errors don't matter.
    let _ = TcpStream::connect(state.addr);
}

fn worker_loop(rx: &Arc<Mutex<mpsc::Receiver<TcpStream>>>, state: &Arc<State>) {
    loop {
        let stream = {
            let guard = rx.lock().expect("connection queue poisoned");
            guard.recv()
        };
        match stream {
            Ok(stream) => handle_connection(stream, state),
            Err(mpsc::RecvError) => return,
        }
    }
}

/// Serves one connection: requests are handled in a loop until the
/// client asks for `Connection: close`, hangs up, errors, or stays
/// idle past the read timeout.
fn handle_connection(stream: TcpStream, state: &Arc<State>) {
    let _ = stream.set_read_timeout(Some(state.read_timeout));
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(request) => request,
            // Clean close between requests / idle timeout: nothing to
            // answer, nothing to count.
            Err(HttpError::Closed | HttpError::Timeout { mid_request: false }) => return,
            Err(error) => {
                let status = match error {
                    HttpError::TooLarge => 413,
                    HttpError::Timeout { mid_request: true } => 408,
                    _ => 400,
                };
                let body = error_body(&error.to_string());
                let _ = write_response(
                    reader.get_mut(),
                    status,
                    "application/json",
                    body.as_bytes(),
                    false,
                );
                state.metrics.observe_request("other", status);
                return;
            }
        };
        // Don't hold connections open across a shutdown.
        let keep_alive = request.keep_alive && !state.shutting_down.load(Ordering::SeqCst);
        let (route, status, content_type, body) = route_request(&request, state);
        let written = write_response(
            reader.get_mut(),
            status,
            content_type,
            body.as_bytes(),
            keep_alive,
        );
        state.metrics.observe_request(route, status);
        if written.is_err() || !keep_alive {
            return;
        }
    }
}

fn error_body(message: &str) -> String {
    obj(vec![("error", Json::Str(message.to_string()))]).render()
}

fn route_request(
    request: &Request,
    state: &Arc<State>,
) -> (&'static str, u16, &'static str, String) {
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => ("healthz", 200, "text/plain", "ok\n".to_string()),
        ("GET", "/metrics") => (
            "metrics",
            200,
            "text/plain; version=0.0.4",
            state.metrics.render(&state.cache),
        ),
        ("GET", "/trace") => match state.last_trace.lock().expect("trace poisoned").clone() {
            Some(json) => ("trace", 200, "application/json", json),
            None => (
                "trace",
                404,
                "application/json",
                error_body("no trace captured yet; POST /predict first"),
            ),
        },
        ("POST", "/predict") => {
            let (status, body) = handle_predict(request, state);
            ("predict", status, "application/json", body)
        }
        ("POST", "/whatif") => {
            let (status, body) = handle_whatif(request, state);
            ("whatif", status, "application/json", body)
        }
        ("POST", "/reload") => {
            let (status, body) = handle_reload(request, state);
            ("reload", status, "application/json", body)
        }
        ("POST", "/shutdown") => {
            initiate_shutdown(state);
            (
                "shutdown",
                200,
                "application/json",
                obj(vec![("shutting_down", Json::Bool(true))]).render(),
            )
        }
        ("GET" | "POST", _) => (
            "other",
            404,
            "application/json",
            error_body("no such route"),
        ),
        _ => (
            "other",
            405,
            "application/json",
            error_body("method not allowed"),
        ),
    }
}

/// Resolves the request body into a power grid: an inline `netlist`
/// (SPICE text), a `netlist_path` on the server's filesystem, or a
/// synthetic `spec` (`{"class":"fake"|"real","seed":N}`).
fn resolve_grid(body: &Json) -> Result<PowerGrid, String> {
    let netlist = if let Some(text) = body.get("netlist").and_then(Json::as_str) {
        irf_spice::parse(text).map_err(|e| format!("netlist parse error: {e}"))?
    } else if let Some(path) = body.get("netlist_path").and_then(Json::as_str) {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        irf_spice::parse(&text).map_err(|e| format!("netlist parse error: {e}"))?
    } else if let Some(spec) = body.get("spec") {
        let class = spec.get("class").and_then(Json::as_str).unwrap_or("fake");
        let seed = spec.get("seed").and_then(Json::as_u64).unwrap_or(0);
        match class {
            "fake" => irf_data::fake::generate(seed),
            "real" => irf_data::real_like::generate(seed),
            other => return Err(format!("unknown design class {other:?}")),
        }
    } else {
        return Err("request needs one of: netlist, netlist_path, spec".to_string());
    };
    PowerGrid::from_netlist(&netlist).map_err(|e| format!("invalid power grid: {e}"))
}

/// Records the spans of one `/predict` into `state.last_trace` when it
/// drops (even on early error returns). The collector is a process
/// singleton, so `install` yields `None` while another request is
/// already recording — that request's trace wins.
struct TraceScope<'a> {
    collector: Option<irf_trace::Collector>,
    state: &'a State,
}

impl Drop for TraceScope<'_> {
    fn drop(&mut self) {
        if let Some(collector) = self.collector.take() {
            let json = collector.finish().to_chrome_json();
            *self.state.last_trace.lock().expect("trace poisoned") = Some(json);
        }
    }
}

/// `POST /reload` — loads a checkpoint from the server's filesystem
/// (`{"model_path": ...}`) and swaps it behind the batcher. Batches
/// already collected finish on the old model; no request is dropped.
fn handle_reload(request: &Request, state: &Arc<State>) -> (u16, String) {
    if state.shutting_down.load(Ordering::SeqCst) {
        return (503, error_body("shutting down"));
    }
    let Some(slot) = &state.model_slot else {
        return (
            409,
            error_body("server is running without a model; reload has nothing to swap"),
        );
    };
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return (400, error_body("body is not utf-8")),
    };
    let body = match parse(text) {
        Ok(body) => body,
        Err(error) => return (400, error_body(&error.to_string())),
    };
    let Some(path) = body.get("model_path").and_then(Json::as_str) else {
        return (400, error_body("request needs model_path"));
    };
    let (loaded, seconds) = Timer::time(|| {
        std::fs::File::open(path)
            .map_err(|e| format!("cannot open {path}: {e}"))
            .and_then(|file| {
                ir_fusion::load_model(BufReader::new(file))
                    .map_err(|e| format!("cannot load {path}: {e}"))
            })
    });
    let model = match loaded {
        Ok(model) => model,
        Err(message) => return (422, error_body(&message)),
    };
    slot.swap(model);
    state.metrics.observe_reload();
    state.metrics.observe_stage("reload", seconds);
    (
        200,
        obj(vec![
            ("reloaded", Json::Bool(true)),
            ("model_path", Json::Str(path.to_string())),
        ])
        .render(),
    )
}

fn handle_predict(request: &Request, state: &Arc<State>) -> (u16, String) {
    if state.shutting_down.load(Ordering::SeqCst) {
        return (503, error_body("shutting down"));
    }
    let _trace = TraceScope {
        collector: irf_trace::Collector::install(),
        state,
    };
    // Dropped before `_trace` (reverse declaration order), so the
    // request-level span is flushed into the collector it belongs to.
    let _span = irf_trace::span("predict_request");
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return (400, error_body("body is not utf-8")),
    };
    let ((grid, body), parse_seconds) = match Timer::time(|| {
        parse(text)
            .map_err(|e| e.to_string())
            .and_then(|body| resolve_grid(&body).map(|grid| (grid, body)))
    }) {
        (Ok(ok), seconds) => (ok, seconds),
        (Err(message), _) => return (400, error_body(&message)),
    };
    state.metrics.observe_stage("parse", parse_seconds);
    let grid = Arc::new(grid);

    let (stack, prepare_seconds) = Timer::time(|| state.pipeline.stack_builder().prepare(&grid));
    let stack = match stack {
        Ok(stack) => stack,
        Err(error) => {
            return (
                400,
                error_body(&format!("cannot prepare features: {error}")),
            )
        }
    };
    state.metrics.observe_stage("prepare", prepare_seconds);
    // Register the parsed grid under its reported fingerprint so a
    // later /whatif can start from it without re-sending the netlist.
    state
        .cache
        .insert_parsed(stack.fingerprint, Arc::clone(&grid));

    let (map, source) = match run_inference(state, &stack) {
        Ok(ok) => ok,
        Err(err) => return err,
    };
    (
        200,
        render_prediction(&grid, state, &map, source, &body, Vec::new()),
    )
}

/// `POST /whatif` — incremental re-analysis of a previously predicted
/// design under per-cell current deltas:
///
/// ```json
/// {"base": "<16-hex design fingerprint>",
///  "deltas": [{"node": 17, "amps": 0.002}, {"name": "n1_m1_0_0", "amps": -1e-3}]}
/// ```
///
/// The base grid is looked up in the stage store's parsed stage (404
/// when unknown — POST it to `/predict` first); the session walk then
/// reuses every warm topology-keyed artifact and recomputes only the
/// rough solve, the stack assembly and the model forward.
fn handle_whatif(request: &Request, state: &Arc<State>) -> (u16, String) {
    if state.shutting_down.load(Ordering::SeqCst) {
        return (503, error_body("shutting down"));
    }
    let _trace = TraceScope {
        collector: irf_trace::Collector::install(),
        state,
    };
    let _span = irf_trace::span("whatif_request");
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return (400, error_body("body is not utf-8")),
    };
    let body = match parse(text) {
        Ok(body) => body,
        Err(error) => return (400, error_body(&error.to_string())),
    };
    let Some(base) = body.get("base").and_then(Json::as_str) else {
        return (
            400,
            error_body("request needs base (a /predict design fingerprint)"),
        );
    };
    let Ok(fingerprint) = u64::from_str_radix(base, 16) else {
        return (400, error_body("base must be a hex fingerprint"));
    };
    let Some(grid) = state.cache.get_parsed(fingerprint) else {
        return (
            404,
            error_body("unknown base design; POST it to /predict first"),
        );
    };
    let deltas = match parse_deltas(&body, &grid) {
        Ok(deltas) => deltas,
        Err(message) => return (400, error_body(&message)),
    };

    let session = state
        .pipeline
        .session(Arc::clone(&grid))
        .with_current_deltas(&deltas);
    let (stack, prepare_seconds) = Timer::time(|| session.prepare());
    let stack = match stack {
        Ok(stack) => stack,
        Err(error) => {
            return (
                400,
                error_body(&format!("cannot prepare features: {error}")),
            )
        }
    };
    state
        .metrics
        .observe_stage("whatif_prepare", prepare_seconds);
    // The edited design is itself a valid base for further what-ifs.
    state
        .cache
        .insert_parsed(stack.fingerprint, Arc::clone(session.grid()));

    let (map, source) = match run_inference(state, &stack) {
        Ok(ok) => ok,
        Err(err) => return err,
    };
    let extra = vec![
        ("base", Json::Str(format!("{fingerprint:016x}"))),
        ("deltas_applied", Json::Num(deltas.len() as f64)),
    ];
    (
        200,
        render_prediction(session.grid(), state, &map, source, &body, extra),
    )
}

/// Parses the `deltas` array of a `/whatif` body into `(node, amps)`
/// pairs, resolving node names against the base grid.
fn parse_deltas(body: &Json, grid: &PowerGrid) -> Result<Vec<(usize, f64)>, String> {
    let Some(Json::Arr(items)) = body.get("deltas") else {
        return Err("request needs deltas (an array of {node|name, amps})".to_string());
    };
    let mut deltas = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let Some(amps) = item.get("amps").and_then(Json::as_f64) else {
            return Err(format!("deltas[{i}] needs a numeric amps"));
        };
        let node = if let Some(node) = item.get("node").and_then(Json::as_u64) {
            let node = node as usize;
            if node >= grid.nodes.len() {
                return Err(format!(
                    "deltas[{i}]: node {node} out of range ({} nodes)",
                    grid.nodes.len()
                ));
            }
            node
        } else if let Some(name) = item.get("name").and_then(Json::as_str) {
            match grid.nodes.iter().position(|n| n.name == name) {
                Some(node) => node,
                None => return Err(format!("deltas[{i}]: no node named {name:?}")),
            }
        } else {
            return Err(format!("deltas[{i}] needs node (index) or name"));
        };
        deltas.push((node, amps));
    }
    Ok(deltas)
}

/// Queues one prepared stack for the batched forward pass (when a
/// model is loaded), or falls back to the rough map.
fn run_inference(
    state: &Arc<State>,
    stack: &Arc<ir_fusion::PreparedStack>,
) -> Result<(GridMap, &'static str), (u16, String)> {
    let sender = state
        .predict_tx
        .lock()
        .expect("predict sender poisoned")
        .clone();
    match sender {
        Some(tx) => {
            let (reply_tx, reply_rx) = mpsc::channel();
            let job = PredictJob {
                stack: Arc::clone(stack),
                reply: reply_tx,
            };
            match try_submit(&tx, job) {
                Ok(()) => {}
                Err(SubmitError::QueueFull) => {
                    return Err((429, error_body("predict queue is full, retry later")))
                }
                Err(SubmitError::Closed) => return Err((503, error_body("shutting down"))),
            }
            let (received, infer_seconds) = Timer::time(|| reply_rx.recv());
            state.metrics.observe_stage("infer", infer_seconds);
            match received {
                Ok(map) => Ok((map, "fused")),
                Err(mpsc::RecvError) => Err((503, error_body("shutting down"))),
            }
        }
        None if state.has_model => Err((503, error_body("shutting down"))),
        None => Ok((stack.rough.clone(), "rough")),
    }
}

fn render_prediction(
    grid: &PowerGrid,
    state: &Arc<State>,
    map: &GridMap,
    source: &str,
    body: &Json,
    extra: Vec<(&'static str, Json)>,
) -> String {
    let include_map = body
        .get("include_map")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let threshold = body
        .get("hotspot_threshold")
        .and_then(Json::as_f64)
        .unwrap_or_else(|| f64::from(map.max()) * 0.9);
    let hotspot_count = map
        .data()
        .iter()
        .filter(|&&v| f64::from(v) >= threshold && v > 0.0)
        .count();
    let fingerprint = design_fingerprint(grid, state.pipeline.config());
    let mut members = extra;
    members.extend(vec![
        ("design", Json::Str(format!("{fingerprint:016x}"))),
        ("source", Json::Str(source.to_string())),
        ("width", Json::Num(map.width() as f64)),
        ("height", Json::Num(map.height() as f64)),
        ("max_drop", Json::Num(f64::from(map.max()))),
        ("mean_drop", Json::Num(f64::from(map.mean()))),
        ("hotspot_threshold", Json::Num(threshold)),
        ("hotspot_count", Json::Num(hotspot_count as f64)),
        ("nodes", Json::Num(grid.nodes.len() as f64)),
    ]);
    if include_map {
        members.push((
            "map",
            Json::Arr(
                map.data()
                    .iter()
                    .map(|&v| Json::Num(f64::from(v)))
                    .collect(),
            ),
        ));
    }
    obj(members).render()
}
