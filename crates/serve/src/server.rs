//! The HTTP server: a `std::net::TcpListener` accept loop, a small
//! pool of connection handlers, and the micro-batcher behind them.
//!
//! The HTTP surface is versioned under `/v1/`; every route below is
//! canonical at `/v1/<route>`. The original unversioned paths remain
//! as thin deprecated aliases: they run the identical handler and
//! answer with a `Deprecation: true` header, one structured warning
//! log record, and a bump of
//! `irf_deprecated_requests_total{endpoint=...}`. (`POST /reload`
//! aliases `POST /v1/models/default/reload`.)
//!
//! Every error response uses one envelope shape:
//! `{"error": {"code": <machine-readable>, "message": <human>,
//! "details": {...}}}` — `details` carries the structured context a
//! caller can branch on (offending value, accepted range, loaded
//! model names, ...), and is `{}` when there is none.
//!
//! Routes:
//!
//! - `GET /v1/healthz` — liveness probe, plain `ok`.
//! - `GET /v1/metrics` — Prometheus text exposition.
//! - `GET /v1/trace` — Chrome trace-event JSON of the most recent
//!   `/v1/predict` (load it in Perfetto / `chrome://tracing`).
//! - `GET /v1/debug/requests` — the flight recorder: the last N
//!   completed requests (ids, timings, batch placement, per-request
//!   stage-cache and solver counts), most recent first.
//! - `GET /v1/debug/requests/{id}` — one recorded request in full,
//!   including its span tree when it ran at or over the configured
//!   slow-request threshold.
//! - `GET /v1/models` — the model registry: every loaded model with
//!   its architecture, parameter count, checkpoint precision and
//!   servable precision variants.
//! - `POST /v1/models/{name}/reload` — load a checkpoint
//!   (`{"model_path": ...}`) under `name`, hot-swapping an existing
//!   entry atomically (in-flight batches finish on the model they
//!   resolved) or creating a new named entry.
//! - `POST /v1/predict` — run one design through the pipeline.
//!   Optional `"model"` picks a registry entry (default `default`),
//!   optional `"precision"` (`"f32"` | `"f16"` | `"int8"`) picks the
//!   forward-precision variant; both are validated with the error
//!   envelope. The micro-batcher only fuses requests that resolved to
//!   the same (model, precision) variant, so every executed batch is
//!   homogeneous and bitwise deterministic within its mode.
//! - `POST /v1/whatif` — incremental re-analysis: a base design
//!   fingerprint (as reported by `/predict`) plus a list of deltas.
//!   Current deltas (`kind` omitted or `"current"`) ride the stage
//!   store's warm artifacts — the assembled MNA system, AMG hierarchy
//!   and feature maps are reused and only the rough solve, stack
//!   assembly and model forward run. Topology deltas (`"strap"`,
//!   `"via"`, `"segment"`) scale or set segment resistances; the
//!   parsed design and geometry maps stay warm and the MNA system /
//!   AMG hierarchy are rebuilt incrementally from the base artifacts.
//! - `POST /sweep` — ranked candidate sweep: one base fingerprint
//!   plus N candidate delta plans. Every candidate is prepared
//!   through the warm stage graph, the model forwards are fanned
//!   through the micro-batcher, and the response ranks candidates by
//!   worst-drop improvement (then hotspot-count delta) against the
//!   base analysis, with per-candidate stage-cache hit statistics.
//!   `"warm_start": true` opts candidates into seeding their rough
//!   solves from the base solution.
//! - `POST /optimize` — the closed-loop PDN optimizer: a base
//!   fingerprint, a worst-drop target and a metal budget. Candidates
//!   are generated from the base drop map, priced by the metal cost
//!   model, beam-searched through the warm stage graph, and the
//!   winning plan (registered for follow-up what-ifs) plus the full
//!   per-iteration trajectory come back.
//! - `POST /reload` — swap in a checkpoint (`{"model_path": ...}`)
//!   without dropping in-flight requests: the batcher resolves the
//!   model once per batch, so batches already collected finish on the
//!   old weights and later ones use the new.
//! - `POST /shutdown` — graceful drain (see below).
//!
//! Connections are persistent (HTTP/1.1 keep-alive) and carry a
//! per-request read timeout: an idle connection is closed silently
//! when it expires, a half-sent request is answered with 408.
//!
//! Shutdown: the toolchain-only build has no way to trap SIGTERM /
//! ctrl-c (that needs `libc`/`signal-hook`, and this repo is
//! dependency-free by design), so graceful termination is exposed as
//! an explicit `POST /shutdown` endpoint and the in-process
//! [`Server::shutdown`] handle instead. Both stop accepting, drain
//! queued batches, and join every thread.

use crate::batch::{
    try_submit, BatchConfig, Batcher, ModelSlot, PredictJob, PredictReply, SubmitError,
};
use crate::http::{read_request, write_response, write_response_with_headers, HttpError, Request};
use crate::json::{obj, parse, Json};
use crate::metrics::{ServerMetrics, DEPRECATED_ENDPOINTS};
use crate::registry::{valid_model_name, ModelRegistry};
use ir_fusion::{
    design_fingerprint, EditError, FusionConfig, IrFusionPipeline, PrecisionMode, StageStore,
    TopologyDelta, TrainedModel,
};
use irf_metrics::Timer;
use irf_obs::recorder::SpanNode;
use irf_obs::{FlightRecorder, RequestId, RequestIdMinter, RequestRecord, SloPolicy};
use irf_pg::{GridMap, PowerGrid};
use irf_trace::request::RequestStats;
use std::cell::{Cell, RefCell};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` for an ephemeral
    /// port).
    pub addr: String,
    /// Connection-handler threads.
    pub workers: usize,
    /// Micro-batcher settings.
    pub batch: BatchConfig,
    /// Stage-store capacity (artifacts per stage, roughly "designs
    /// kept warm").
    pub cache_capacity: usize,
    /// Per-request read timeout. An idle keep-alive connection is
    /// closed silently when it expires; a connection that timed out
    /// mid-request gets a 408 first.
    pub read_timeout: Duration,
    /// Requests at or above this duration snapshot their full span
    /// tree into the flight recorder (inspect via
    /// `GET /debug/requests/{id}`). `Duration::ZERO` snapshots every
    /// request.
    pub slow_threshold: Duration,
    /// Completed requests retained by the flight recorder
    /// (`GET /debug/requests`).
    pub recorder_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            batch: BatchConfig::default(),
            cache_capacity: 32,
            read_timeout: Duration::from_secs(30),
            slow_threshold: Duration::from_millis(500),
            recorder_capacity: 256,
        }
    }
}

struct State {
    pipeline: IrFusionPipeline,
    cache: Arc<StageStore>,
    metrics: Arc<ServerMetrics>,
    /// `None` once shutdown started (or when serving without a model
    /// was requested and no batcher exists).
    predict_tx: Mutex<Option<mpsc::SyncSender<PredictJob>>>,
    /// Named models with per-precision variants; `None` when serving
    /// without a model (then reloads answer 409 and predicts fall back
    /// to the rough numerical map).
    registry: Option<Arc<ModelRegistry>>,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    read_timeout: Duration,
    /// Chrome trace JSON of the most recent `/predict` (served by
    /// `GET /trace`). Best-effort: the trace collector is a process
    /// singleton, so under concurrent predicts only one request at a
    /// time records.
    last_trace: Mutex<Option<String>>,
    /// Ring of completed request records (`GET /debug/requests`).
    recorder: FlightRecorder,
    /// Per-endpoint latency objectives in force.
    slo: SloPolicy,
    /// Requests at or above this duration snapshot their span tree.
    slow_threshold: Duration,
    /// Accept counter; each connection's request ids derive from it.
    connections: AtomicU64,
}

/// A running server; dropping the handle does NOT stop it — call
/// [`Server::shutdown`] (or POST `/shutdown`) then [`Server::wait`].
pub struct Server {
    state: Arc<State>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    batcher: Option<Batcher>,
}

impl Server {
    /// Binds and starts serving. `model` is optional: without one,
    /// `/predict` answers with the rough numerical map only
    /// (`"source":"rough"`).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(
        config: &ServerConfig,
        fusion: FusionConfig,
        model: Option<TrainedModel>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let cache = Arc::new(StageStore::new(config.cache_capacity));
        let metrics = Arc::new(ServerMetrics::new(config.batch.max_batch));
        let slo = SloPolicy::from_env();
        // Zero-init the per-endpoint SLO series so `/metrics` exposes
        // every endpoint from the first scrape.
        metrics.init_http(&slo);
        let pipeline = IrFusionPipeline::new(fusion).with_cache(Arc::clone(&cache));
        let registry = model.map(|trained| Arc::new(ModelRegistry::new(trained)));
        metrics.set_registry_models(registry.as_ref().map_or(0, |r| r.len()));
        let batcher = registry
            .as_ref()
            .map(|_| Batcher::start(pipeline.clone(), config.batch, Arc::clone(&metrics)));
        let state = Arc::new(State {
            pipeline,
            cache,
            metrics,
            predict_tx: Mutex::new(batcher.as_ref().map(Batcher::sender)),
            registry,
            shutting_down: AtomicBool::new(false),
            addr,
            read_timeout: config.read_timeout,
            last_trace: Mutex::new(None),
            recorder: FlightRecorder::new(config.recorder_capacity),
            slo,
            slow_threshold: config.slow_threshold,
            connections: AtomicU64::new(0),
        });

        // Accepted connections flow to the handler pool over a channel;
        // the accept thread owns the sender, so its exit hangs up the
        // workers.
        let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
        let conn_rx = Arc::new(Mutex::new(conn_rx));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&conn_rx);
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("irf-serve-{i}"))
                    .spawn(move || worker_loop(&rx, &state))
                    .expect("spawn worker thread")
            })
            .collect();
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("irf-serve-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_state.shutting_down.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if conn_tx.send(stream).is_err() {
                        break;
                    }
                }
                // conn_tx drops here: workers finish queued connections
                // and exit.
            })
            .expect("spawn accept thread");
        Ok(Server {
            state,
            accept: Some(accept),
            workers,
            batcher,
        })
    }

    /// The bound address (useful with ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// The stage-artifact store (shared with the pipeline).
    #[must_use]
    pub fn cache(&self) -> &Arc<StageStore> {
        &self.state.cache
    }

    /// Starts a graceful shutdown: stop accepting, reject new predict
    /// submissions, let queued batches finish. Idempotent.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.state);
    }

    /// Blocks until every thread has exited (after
    /// [`Server::shutdown`] or a `POST /shutdown`).
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(batcher) = self.batcher.take() {
            batcher.shutdown();
        }
    }
}

/// Flags shutdown, closes the predict queue, and pokes the listener so
/// the accept loop observes the flag even while blocked in `accept`.
fn initiate_shutdown(state: &State) {
    if state.shutting_down.swap(true, Ordering::SeqCst) {
        return;
    }
    state
        .predict_tx
        .lock()
        .expect("predict sender poisoned")
        .take();
    // Self-connect unblocks the accept loop; the errors don't matter.
    let _ = TcpStream::connect(state.addr);
}

fn worker_loop(rx: &Arc<Mutex<mpsc::Receiver<TcpStream>>>, state: &Arc<State>) {
    loop {
        let stream = {
            let guard = rx.lock().expect("connection queue poisoned");
            guard.recv()
        };
        match stream {
            Ok(stream) => handle_connection(stream, state),
            Err(mpsc::RecvError) => return,
        }
    }
}

/// Serves one connection: requests are handled in a loop until the
/// client asks for `Connection: close`, hangs up, errors, or stays
/// idle past the read timeout. Every parsed request is minted a
/// request id, served under a thread-local `irf_trace::request` scope
/// (so spans, stage-cache events and solver telemetry recorded while
/// handling it carry the id), echoed back as `X-Irf-Request-Id`, and
/// lands one record in the flight recorder plus one access-log line.
fn handle_connection(stream: TcpStream, state: &Arc<State>) {
    let _ = stream.set_read_timeout(Some(state.read_timeout));
    let conn = state.connections.fetch_add(1, Ordering::Relaxed);
    let mut minter = RequestIdMinter::new(conn);
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(request) => request,
            // Clean close between requests / idle timeout: nothing to
            // answer, nothing to count.
            Err(HttpError::Closed | HttpError::Timeout { mid_request: false }) => return,
            Err(error) => {
                let (status, code) = match error {
                    HttpError::TooLarge => (413, "body_too_large"),
                    HttpError::Timeout { mid_request: true } => (408, "request_timeout"),
                    _ => (400, "bad_request"),
                };
                let message = error.to_string();
                let body = envelope(code, &message);
                let _ = write_response(
                    reader.get_mut(),
                    status,
                    "application/json",
                    body.as_bytes(),
                    false,
                );
                state.metrics.observe_request("other", status);
                irf_obs::warn(
                    "request_error",
                    &[
                        ("error", message.as_str().into()),
                        ("status", u64::from(status).into()),
                    ],
                );
                return;
            }
        };
        let id = minter.mint();
        let started = Instant::now();
        let start_unix_ms = unix_ms_now();
        let ctx = RequestCtx::new(id);
        // Don't hold connections open across a shutdown.
        let keep_alive = request.keep_alive && !state.shutting_down.load(Ordering::SeqCst);
        // Everything recorded on this thread until `finish` — spans,
        // stage-cache events, PCG telemetry — is tagged with this id.
        let scope = irf_trace::request::scope(id.as_u64());
        let (route, status, content_type, body, deprecated) = route_request(&request, state, &ctx);
        let stats = scope.finish();
        let duration_seconds = started.elapsed().as_secs_f64();
        let id_text = id.to_string();
        let mut headers: Vec<(&str, &str)> = vec![("X-Irf-Request-Id", &id_text)];
        if deprecated {
            // Legacy unversioned alias: same handler, but the response
            // advertises the deprecation, the hit is counted, and one
            // structured warning lands in the log.
            headers.push(("Deprecation", "true"));
            if DEPRECATED_ENDPOINTS.contains(&route) {
                state.metrics.observe_deprecated(route);
            }
            irf_obs::warn(
                "deprecated_route",
                &[
                    ("endpoint", route.into()),
                    ("target", request.target.as_str().into()),
                    ("request", id_text.as_str().into()),
                ],
            );
        }
        let written = write_response_with_headers(
            reader.get_mut(),
            status,
            content_type,
            body.as_bytes(),
            keep_alive,
            &headers,
        );
        finish_request(
            state,
            &ctx,
            route,
            status,
            start_unix_ms,
            duration_seconds,
            stats,
        );
        if written.is_err() || !keep_alive {
            return;
        }
    }
}

fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// SLO accounting, flight-recorder entry and access-log line for one
/// finished request.
fn finish_request(
    state: &State,
    ctx: &RequestCtx,
    route: &'static str,
    status: u16,
    start_unix_ms: u64,
    duration_seconds: f64,
    stats: RequestStats,
) {
    state.metrics.observe_request(route, status);
    let objective = state.slo.objective_seconds(route);
    let breached = duration_seconds > objective;
    state
        .metrics
        .observe_http(route, duration_seconds, breached);
    // Slow requests keep their full span tree; healthy ones keep the
    // ring cheap (the record alone).
    let spans = if duration_seconds >= state.slow_threshold.as_secs_f64() {
        ctx.trace
            .borrow()
            .as_ref()
            .map(|trace| irf_obs::recorder::span_tree(trace, ctx.id.as_u64()))
    } else {
        None
    };
    state.recorder.record(RequestRecord {
        id: ctx.id.as_u64(),
        seq: 0, // stamped by the recorder
        endpoint: route,
        status,
        start_unix_ms,
        duration_seconds,
        queue_seconds: ctx.queue_seconds.get(),
        batch_size: ctx.batch_size.get(),
        stats,
        slo_objective_seconds: objective,
        slo_breached: breached,
        spans,
    });
    if irf_obs::log::enabled(irf_obs::log::Level::Info) {
        let id_text = ctx.id.to_string();
        irf_obs::info(
            "access",
            &[
                ("request", id_text.as_str().into()),
                ("endpoint", route.into()),
                ("status", u64::from(status).into()),
                ("duration_seconds", duration_seconds.into()),
                ("queue_seconds", ctx.queue_seconds.get().into()),
                ("batch_size", ctx.batch_size.get().into()),
                ("cache_hits", stats.cache_hits.into()),
                ("cache_misses", stats.cache_misses.into()),
                ("pcg_iterations", stats.pcg_iterations.into()),
                ("slo_breached", breached.into()),
            ],
        );
    }
}

/// Renders the unified error envelope:
/// `{"error": {"code", "message", "details": {...}}}`.
fn envelope_with(code: &str, message: &str, details: Vec<(&'static str, Json)>) -> String {
    obj(vec![(
        "error",
        obj(vec![
            ("code", Json::Str(code.to_string())),
            ("message", Json::Str(message.to_string())),
            ("details", obj(details)),
        ]),
    )])
    .render()
}

/// The envelope with empty `details`.
fn envelope(code: &str, message: &str) -> String {
    envelope_with(code, message, Vec::new())
}

/// Maps a request target onto the canonical (unversioned-internal)
/// path plus a deprecation flag: `/v1/...` is the canonical surface;
/// the original unversioned paths are deprecated aliases running the
/// identical handlers (`/reload` aliases `/v1/models/default/reload`).
/// Unknown targets pass through untouched (they 404 downstream).
fn canonical_target(target: &str) -> (String, bool) {
    if let Some(rest) = target.strip_prefix("/v1/") {
        return (format!("/{rest}"), false);
    }
    match target {
        "/reload" => ("/models/default/reload".to_string(), true),
        "/healthz" | "/metrics" | "/trace" | "/predict" | "/whatif" | "/sweep" | "/optimize"
        | "/shutdown" => (target.to_string(), true),
        path if path == "/debug/requests" || path.starts_with("/debug/requests/") => {
            (path.to_string(), true)
        }
        other => (other.to_string(), false),
    }
}

fn route_request(
    request: &Request,
    state: &Arc<State>,
    ctx: &RequestCtx,
) -> (&'static str, u16, &'static str, String, bool) {
    let (path, deprecated) = canonical_target(&request.target);
    let (route, status, content_type, body) = match (request.method.as_str(), path.as_str()) {
        ("GET", "/healthz") => ("healthz", 200, "text/plain", "ok\n".to_string()),
        ("GET", "/metrics") => (
            "metrics",
            200,
            "text/plain; version=0.0.4",
            state.metrics.render(&state.cache),
        ),
        ("GET", "/trace") => match state.last_trace.lock().expect("trace poisoned").clone() {
            Some(json) => ("trace", 200, "application/json", json),
            None => (
                "trace",
                404,
                "application/json",
                envelope("no_trace", "no trace captured yet; POST /v1/predict first"),
            ),
        },
        ("GET", path) if path == "/debug/requests" || path.starts_with("/debug/requests/") => {
            let (status, body) = handle_debug_requests(path, state);
            ("debug", status, "application/json", body)
        }
        ("GET", "/models") => {
            let (status, body) = handle_models_list(state);
            ("models", status, "application/json", body)
        }
        ("POST", path)
            if path
                .strip_prefix("/models/")
                .and_then(|rest| rest.strip_suffix("/reload"))
                .is_some() =>
        {
            let name = path
                .strip_prefix("/models/")
                .and_then(|rest| rest.strip_suffix("/reload"))
                .expect("guard matched");
            let (status, body) = handle_model_reload(name, request, state);
            ("reload", status, "application/json", body)
        }
        ("POST", "/predict") => {
            let (status, body) = handle_predict(request, state, ctx);
            ("predict", status, "application/json", body)
        }
        ("POST", "/whatif") => {
            let (status, body) = handle_whatif(request, state, ctx);
            ("whatif", status, "application/json", body)
        }
        ("POST", "/sweep") => {
            let (status, body) = handle_sweep(request, state, ctx);
            ("sweep", status, "application/json", body)
        }
        ("POST", "/optimize") => {
            let (status, body) = handle_optimize(request, state, ctx);
            ("optimize", status, "application/json", body)
        }
        ("POST", "/shutdown") => {
            initiate_shutdown(state);
            (
                "shutdown",
                200,
                "application/json",
                obj(vec![("shutting_down", Json::Bool(true))]).render(),
            )
        }
        ("GET" | "POST", _) => (
            "other",
            404,
            "application/json",
            envelope("unknown_route", "no such route"),
        ),
        _ => (
            "other",
            405,
            "application/json",
            envelope("method_not_allowed", "method not allowed"),
        ),
    };
    (route, status, content_type, body, deprecated)
}

/// `GET /v1/models` — the registry listing: every loaded model with
/// its architecture, parameter count, checkpoint precision, servable
/// precision variants and reload count.
fn handle_models_list(state: &Arc<State>) -> (u16, String) {
    let models: Vec<Json> = state
        .registry
        .as_ref()
        .map(|registry| registry.list())
        .unwrap_or_default()
        .iter()
        .map(|info| {
            obj(vec![
                ("name", Json::Str(info.name.clone())),
                ("architecture", Json::Str(info.architecture.clone())),
                ("params", Json::Num(info.params as f64)),
                (
                    "loaded_precision",
                    Json::Str(info.loaded_precision.name().to_string()),
                ),
                (
                    "precisions",
                    Json::Arr(
                        info.precisions
                            .iter()
                            .map(|p| Json::Str(p.name().to_string()))
                            .collect(),
                    ),
                ),
                ("reloads", Json::Num(info.reloads as f64)),
            ])
        })
        .collect();
    (
        200,
        obj(vec![
            ("count", Json::Num(models.len() as f64)),
            ("models", Json::Arr(models)),
        ])
        .render(),
    )
}

/// Largest on-disk netlist a `netlist_path` request may reference.
/// Files up to this size stream through [`irf_pg::grid_from_spice_path`]
/// in bounded memory; anything larger is refused up front with a
/// structured `payload_too_large` envelope rather than silently
/// tying a worker to a multi-minute ingest.
const MAX_NETLIST_FILE_BYTES: u64 = 256 * 1024 * 1024;

/// Resolves the request body into a power grid: an inline `netlist`
/// (SPICE text), a `netlist_path` on the server's filesystem
/// (streamed — the file is never materialized as a `String` or
/// `Netlist`), or a synthetic `spec`
/// (`{"class":"fake"|"real","seed":N}`). Errors come back as a ready
/// `(status, envelope-body)` response.
fn resolve_grid(body: &Json) -> Result<PowerGrid, (u16, String)> {
    let invalid = |message: String| (400, envelope("invalid_design", &message));
    let netlist = if let Some(text) = body.get("netlist").and_then(Json::as_str) {
        irf_spice::parse(text).map_err(|e| invalid(format!("netlist parse error: {e}")))?
    } else if let Some(path) = body.get("netlist_path").and_then(Json::as_str) {
        let size = std::fs::metadata(path)
            .map_err(|e| invalid(format!("cannot read {path}: {e}")))?
            .len();
        if size > MAX_NETLIST_FILE_BYTES {
            return Err((
                413,
                envelope_with(
                    "payload_too_large",
                    &format!("netlist file {path} exceeds the ingest limit"),
                    vec![
                        ("limit_bytes", Json::Num(MAX_NETLIST_FILE_BYTES as f64)),
                        ("actual_bytes", Json::Num(size as f64)),
                    ],
                ),
            ));
        }
        return irf_pg::grid_from_spice_path(path)
            .map_err(|e| invalid(format!("cannot ingest {path}: {e}")));
    } else if let Some(spec) = body.get("spec") {
        let class = spec.get("class").and_then(Json::as_str).unwrap_or("fake");
        let seed = spec.get("seed").and_then(Json::as_u64).unwrap_or(0);
        match class {
            "fake" => irf_data::fake::generate(seed),
            "real" => irf_data::real_like::generate(seed),
            other => return Err(invalid(format!("unknown design class {other:?}"))),
        }
    } else {
        return Err(invalid(
            "request needs one of: netlist, netlist_path, spec".to_string(),
        ));
    };
    PowerGrid::from_netlist(&netlist).map_err(|e| invalid(format!("invalid power grid: {e}")))
}

/// Per-request accounting threaded through the handlers: the
/// inference helpers fill in queue/batch placement, the trace scope
/// deposits the finished trace, and the connection loop reads it all
/// back when it builds the flight-recorder entry and the access-log
/// line.
struct RequestCtx {
    /// The minted id, echoed as `X-Irf-Request-Id`.
    id: RequestId,
    /// Longest batch-queue wait among the request's inference jobs.
    queue_seconds: Cell<f64>,
    /// Largest forward batch any of the request's jobs rode in.
    batch_size: Cell<u64>,
    /// The finished span trace (handlers that install the collector).
    trace: RefCell<Option<irf_trace::Trace>>,
}

impl RequestCtx {
    fn new(id: RequestId) -> RequestCtx {
        RequestCtx {
            id,
            queue_seconds: Cell::new(0.0),
            batch_size: Cell::new(0),
            trace: RefCell::new(None),
        }
    }

    /// Folds one batcher reply's placement into the request's totals.
    fn observe_reply(&self, reply: &PredictReply) {
        self.queue_seconds
            .set(self.queue_seconds.get().max(reply.queue_seconds));
        self.batch_size
            .set(self.batch_size.get().max(reply.batch_size as u64));
    }
}

/// `GET /debug/requests` — the flight recorder's retained requests,
/// most recent first (summaries only). `GET /debug/requests/{id}` —
/// one request in full, including its span tree when the request was
/// slow enough to snapshot one.
fn handle_debug_requests(path: &str, state: &Arc<State>) -> (u16, String) {
    match path.strip_prefix("/debug/requests/") {
        None => {
            let records: Vec<Json> = state
                .recorder
                .recent()
                .iter()
                .map(|record| render_request_record(record, false))
                .collect();
            (
                200,
                obj(vec![
                    ("capacity", Json::Num(state.recorder.capacity() as f64)),
                    ("count", Json::Num(records.len() as f64)),
                    ("requests", Json::Arr(records)),
                ])
                .render(),
            )
        }
        Some(id) => {
            let Some(id) = RequestId::parse(id) else {
                return (
                    400,
                    envelope("invalid_request_id", "request id must be 16 hex digits"),
                );
            };
            match state.recorder.find(id.as_u64()) {
                Some(record) => (200, render_request_record(&record, true).render()),
                None => (
                    404,
                    envelope("not_recorded", "request not recorded (or already evicted)"),
                ),
            }
        }
    }
}

fn render_request_record(record: &RequestRecord, include_spans: bool) -> Json {
    let mut members = vec![
        ("request", Json::Str(format!("{:016x}", record.id))),
        ("seq", Json::Num(record.seq as f64)),
        ("endpoint", Json::Str(record.endpoint.to_string())),
        ("status", Json::Num(f64::from(record.status))),
        ("start_unix_ms", Json::Num(record.start_unix_ms as f64)),
        ("duration_seconds", Json::Num(record.duration_seconds)),
        ("queue_seconds", Json::Num(record.queue_seconds)),
        ("batch_size", Json::Num(record.batch_size as f64)),
        ("cache_hits", Json::Num(record.stats.cache_hits as f64)),
        ("cache_misses", Json::Num(record.stats.cache_misses as f64)),
        (
            "pcg_iterations",
            Json::Num(record.stats.pcg_iterations as f64),
        ),
        ("pcg_solves", Json::Num(record.stats.pcg_solves as f64)),
        (
            "slo_objective_seconds",
            Json::Num(record.slo_objective_seconds),
        ),
        ("slo_breached", Json::Bool(record.slo_breached)),
        ("has_spans", Json::Bool(record.spans.is_some())),
    ];
    if include_spans {
        if let Some(spans) = &record.spans {
            members.push((
                "spans",
                Json::Arr(spans.iter().map(render_span_node).collect()),
            ));
        }
    }
    obj(members)
}

fn render_span_node(node: &SpanNode) -> Json {
    obj(vec![
        ("name", Json::Str(node.name.to_string())),
        ("tid", Json::Num(node.tid as f64)),
        ("start_ns", Json::Num(node.start_ns as f64)),
        ("dur_ns", Json::Num(node.dur_ns as f64)),
        (
            "args",
            obj(node
                .args
                .iter()
                .map(|(k, v)| (*k, Json::Str(v.clone())))
                .collect()),
        ),
        (
            "children",
            Json::Arr(node.children.iter().map(render_span_node).collect()),
        ),
    ])
}

/// Records the spans of one `/predict` into `state.last_trace` when it
/// drops (even on early error returns), and deposits the raw trace in
/// the request's [`RequestCtx`] so a slow request can snapshot its
/// span tree. The collector is a process singleton, so `install`
/// yields `None` while another request is already recording — that
/// request's trace wins.
struct TraceScope<'a> {
    collector: Option<irf_trace::Collector>,
    state: &'a State,
    ctx: &'a RequestCtx,
}

impl Drop for TraceScope<'_> {
    fn drop(&mut self) {
        if let Some(collector) = self.collector.take() {
            let trace = collector.finish();
            *self.state.last_trace.lock().expect("trace poisoned") = Some(trace.to_chrome_json());
            *self.ctx.trace.borrow_mut() = Some(trace);
        }
    }
}

/// `POST /v1/models/{name}/reload` — loads a checkpoint from the
/// server's filesystem (`{"model_path": ...}`) under `name`: existing
/// entries are hot-swapped atomically (batches already collected
/// finish on the model they resolved; no request is dropped), unknown
/// names become new registry entries. `POST /reload` is the deprecated
/// alias targeting `default`.
fn handle_model_reload(name: &str, request: &Request, state: &Arc<State>) -> (u16, String) {
    if state.shutting_down.load(Ordering::SeqCst) {
        return (503, envelope("shutting_down", "shutting down"));
    }
    let Some(registry) = &state.registry else {
        return (
            409,
            envelope(
                "no_model",
                "server is running without a model; reload has nothing to swap",
            ),
        );
    };
    if !valid_model_name(name) {
        return (
            400,
            envelope_with(
                "invalid_model_name",
                "model names are 1-64 characters of [A-Za-z0-9._-]",
                vec![("value", Json::Str(name.to_string()))],
            ),
        );
    }
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return (400, envelope("invalid_body", "body is not utf-8")),
    };
    let body = match parse(text) {
        Ok(body) => body,
        Err(error) => return (400, envelope("invalid_json", &error.to_string())),
    };
    let Some(path) = body.get("model_path").and_then(Json::as_str) else {
        return (
            400,
            envelope("missing_model_path", "request needs model_path"),
        );
    };
    let (loaded, seconds) = Timer::time(|| {
        std::fs::File::open(path)
            .map_err(|e| format!("cannot open {path}: {e}"))
            .and_then(|file| {
                ir_fusion::load_model(BufReader::new(file))
                    .map_err(|e| format!("cannot load {path}: {e}"))
            })
    });
    let model = match loaded {
        Ok(model) => model,
        Err(message) => {
            return (
                422,
                envelope_with(
                    "checkpoint_error",
                    &message,
                    vec![("model_path", Json::Str(path.to_string()))],
                ),
            )
        }
    };
    let precision = model.precision;
    let reloads = registry.reload(name, model);
    state.metrics.set_registry_models(registry.len());
    state.metrics.observe_reload();
    state.metrics.observe_stage("reload", seconds);
    (
        200,
        obj(vec![
            ("reloaded", Json::Bool(true)),
            ("model", Json::Str(name.to_string())),
            ("model_path", Json::Str(path.to_string())),
            ("precision", Json::Str(precision.name().to_string())),
            ("reloads", Json::Num(reloads as f64)),
        ])
        .render(),
    )
}

/// A resolved predict target: the slot to run on plus the (model
/// name, precision) echoed in the response.
type ResolvedModel = (Arc<ModelSlot>, String, PrecisionMode);

/// Resolves the optional `"model"` / `"precision"` request members
/// against the registry: the slot to run on plus the resolved
/// (model name, precision) for the response, or a rendered envelope.
/// `Ok(None)` means no model is loaded and the rough map applies.
fn resolve_model(body: &Json, state: &Arc<State>) -> Result<Option<ResolvedModel>, (u16, String)> {
    let name = match body.get("model") {
        None => "default",
        Some(value) => match value.as_str() {
            Some(name) => name,
            None => {
                return Err((
                    400,
                    envelope("invalid_model_name", "model must be a string"),
                ))
            }
        },
    };
    let precision = match body.get("precision") {
        None => None,
        Some(value) => match value.as_str().and_then(PrecisionMode::parse) {
            Some(mode) => Some(mode),
            None => {
                return Err((
                    400,
                    envelope_with(
                        "invalid_precision",
                        "precision must be one of f32, f16, int8",
                        vec![(
                            "value",
                            value
                                .as_str()
                                .map_or_else(|| value.clone(), |s| Json::Str(s.to_string())),
                        )],
                    ),
                ))
            }
        },
    };
    let Some(registry) = &state.registry else {
        if body.get("model").is_some() || body.get("precision").is_some() {
            // Serving without a model: an explicit model/precision ask
            // cannot be honoured, and silently answering with the
            // rough map would misreport the precision contract.
            return Err((
                409,
                envelope(
                    "no_model",
                    "server is running without a model; model/precision selection is unavailable",
                ),
            ));
        }
        return Ok(None);
    };
    match registry.resolve(name, precision) {
        Ok((slot, mode)) => Ok(Some((slot, name.to_string(), mode))),
        Err(loaded) => Err((
            404,
            envelope_with(
                "unknown_model",
                &format!("no model named {name:?}"),
                vec![(
                    "loaded",
                    Json::Arr(loaded.into_iter().map(Json::Str).collect()),
                )],
            ),
        )),
    }
}

/// The `default` model's slot at its checkpoint precision — what the
/// endpoints without model selection (`/whatif`, `/sweep`,
/// `/optimize`) run on. `None` when serving without a model.
fn default_slot(state: &Arc<State>) -> Option<Arc<ModelSlot>> {
    state
        .registry
        .as_ref()
        .and_then(|registry| registry.resolve("default", None).ok())
        .map(|(slot, _)| slot)
}

fn handle_predict(request: &Request, state: &Arc<State>, ctx: &RequestCtx) -> (u16, String) {
    if state.shutting_down.load(Ordering::SeqCst) {
        return (503, envelope("shutting_down", "shutting down"));
    }
    let _trace = TraceScope {
        collector: irf_trace::Collector::install(),
        state,
        ctx,
    };
    // Dropped before `_trace` (reverse declaration order), so the
    // request-level span is flushed into the collector it belongs to.
    let _span = irf_trace::span("predict_request");
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return (400, envelope("invalid_body", "body is not utf-8")),
    };
    let body = match parse(text) {
        Ok(body) => body,
        Err(error) => return (400, envelope("invalid_json", &error.to_string())),
    };
    let resolved = match resolve_model(&body, state) {
        Ok(resolved) => resolved,
        Err(err) => return err,
    };
    let (grid, parse_seconds) = match Timer::time(|| resolve_grid(&body)) {
        (Ok(grid), seconds) => (grid, seconds),
        (Err((status, response)), _) => return (status, response),
    };
    state.metrics.observe_stage("parse", parse_seconds);
    let grid = Arc::new(grid);

    let (stack, prepare_seconds) = Timer::time(|| state.pipeline.stack_builder().prepare(&grid));
    let stack = match stack {
        Ok(stack) => stack,
        Err(error) => {
            return (
                400,
                envelope(
                    "feature_error",
                    &format!("cannot prepare features: {error}"),
                ),
            )
        }
    };
    state.metrics.observe_stage("prepare", prepare_seconds);
    // Register the parsed grid under its reported fingerprint so a
    // later /whatif can start from it without re-sending the netlist.
    state
        .cache
        .insert_parsed(stack.fingerprint, Arc::clone(&grid));

    let slot = resolved.as_ref().map(|(slot, ..)| slot);
    let (map, source) = match run_inference(state, &stack, ctx, slot) {
        Ok(ok) => ok,
        Err(err) => return err,
    };
    let mut extra = Vec::new();
    if let Some((_, name, mode)) = &resolved {
        state.metrics.observe_predict_precision(*mode);
        extra.push(("model", Json::Str(name.clone())));
        extra.push(("precision", Json::Str(mode.name().to_string())));
    }
    (
        200,
        render_prediction(&grid, state, &map, source, &body, extra),
    )
}

/// `POST /whatif` — incremental re-analysis of a previously predicted
/// design under a list of edits:
///
/// ```json
/// {"base": "<16-hex design fingerprint>",
///  "deltas": [{"node": 17, "amps": 0.002},
///             {"kind": "current", "name": "n1_m1_0_0", "amps": -1e-3},
///             {"kind": "strap", "layer": 1, "scale": 0.8},
///             {"kind": "via", "layers": [1, 2], "scale": 1.5},
///             {"kind": "segment", "segment": 42, "ohms": 0.35}]}
/// ```
///
/// The base grid is looked up in the stage store's parsed stage (404
/// when unknown — POST it to `/predict` first). Current deltas reuse
/// every warm topology-keyed artifact; topology deltas reuse the
/// parsed design and geometry maps and rebuild the MNA system / AMG
/// hierarchy incrementally from the warm base artifacts. A delta that
/// references a layer / layer pair / segment the base does not have is
/// rejected with a structured 400 body (`{"error", "code", ...}`) and
/// nothing is applied.
fn handle_whatif(request: &Request, state: &Arc<State>, ctx: &RequestCtx) -> (u16, String) {
    if state.shutting_down.load(Ordering::SeqCst) {
        return (503, envelope("shutting_down", "shutting down"));
    }
    let _trace = TraceScope {
        collector: irf_trace::Collector::install(),
        state,
        ctx,
    };
    let _span = irf_trace::span("whatif_request");
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return (400, envelope("invalid_body", "body is not utf-8")),
    };
    let body = match parse(text) {
        Ok(body) => body,
        Err(error) => return (400, envelope("invalid_json", &error.to_string())),
    };
    let (fingerprint, grid) = match resolve_base(&body, state) {
        Ok(ok) => ok,
        Err(err) => return err,
    };
    let edits = match parse_edits(body.get("deltas"), &grid) {
        Ok(edits) => edits,
        Err(message) => return (400, envelope("invalid_deltas", &message)),
    };

    let session = match build_session(state, &grid, &edits) {
        Ok(session) => session,
        Err(error) => return (400, edit_error_body(&error)),
    };
    let (stack, prepare_seconds) = Timer::time(|| session.prepare());
    let stack = match stack {
        Ok(stack) => stack,
        Err(error) => {
            return (
                400,
                envelope(
                    "feature_error",
                    &format!("cannot prepare features: {error}"),
                ),
            )
        }
    };
    state
        .metrics
        .observe_stage("whatif_prepare", prepare_seconds);
    // The edited design is itself a valid base for further what-ifs.
    state
        .cache
        .insert_parsed(stack.fingerprint, Arc::clone(session.grid()));

    let slot = default_slot(state);
    let (map, source) = match run_inference(state, &stack, ctx, slot.as_ref()) {
        Ok(ok) => ok,
        Err(err) => return err,
    };
    let extra = vec![
        ("base", Json::Str(format!("{fingerprint:016x}"))),
        ("deltas_applied", Json::Num(edits.len() as f64)),
        (
            "topology_deltas_applied",
            Json::Num(edits.topology.len() as f64),
        ),
    ];
    (
        200,
        render_prediction(session.grid(), state, &map, source, &body, extra),
    )
}

/// One parsed `deltas` array, split by kind.
struct Edits {
    /// `(node, amps)` pairs, applied to the load vector.
    currents: Vec<(usize, f64)>,
    /// Strap / via / segment resistance edits, applied in order.
    topology: Vec<TopologyDelta>,
}

impl Edits {
    fn len(&self) -> usize {
        self.currents.len() + self.topology.len()
    }
}

/// Looks up the request's `base` fingerprint in the parsed stage.
fn resolve_base(body: &Json, state: &Arc<State>) -> Result<(u64, Arc<PowerGrid>), (u16, String)> {
    let Some(base) = body.get("base").and_then(Json::as_str) else {
        return Err((
            400,
            envelope(
                "missing_base",
                "request needs base (a /v1/predict design fingerprint)",
            ),
        ));
    };
    let Ok(fingerprint) = u64::from_str_radix(base, 16) else {
        return Err((
            400,
            envelope_with(
                "invalid_base",
                "base must be a hex fingerprint",
                vec![("value", Json::Str(base.to_string()))],
            ),
        ));
    };
    let Some(grid) = state.cache.get_parsed(fingerprint) else {
        return Err((
            404,
            envelope(
                "unknown_base",
                "unknown base design; POST it to /v1/predict first",
            ),
        ));
    };
    Ok((fingerprint, grid))
}

/// Opens a session on `grid` with `edits` applied: current deltas
/// first (they never move fingerprints the topology path depends on),
/// then topology deltas, which validate against the base grid
/// all-or-nothing.
fn build_session<'p>(
    state: &'p Arc<State>,
    grid: &Arc<PowerGrid>,
    edits: &Edits,
) -> Result<ir_fusion::AnalysisSession<'p>, EditError> {
    let mut session = state.pipeline.session(Arc::clone(grid));
    if !edits.currents.is_empty() {
        session = session.with_current_deltas(&edits.currents);
    }
    if !edits.topology.is_empty() {
        session = session.with_topology_deltas(&edits.topology)?;
    }
    Ok(session)
}

/// Parses a `deltas` array into [`Edits`], resolving node names
/// against the base grid. Each item selects its flavour with `kind`
/// (default `"current"`):
///
/// - `{"kind": "current", "node": 17 | "name": "...", "amps": 2e-3}`
/// - `{"kind": "strap", "layer": 1, "scale": 0.8}`
/// - `{"kind": "via", "layers": [1, 2], "scale": 1.5}`
/// - `{"kind": "segment", "segment": 42, "ohms": 0.35}`
fn parse_edits(deltas: Option<&Json>, grid: &PowerGrid) -> Result<Edits, String> {
    let Some(Json::Arr(items)) = deltas else {
        return Err(
            "request needs deltas (an array of {kind?, node|name|layer|layers|segment, ...})"
                .to_string(),
        );
    };
    let mut edits = Edits {
        currents: Vec::new(),
        topology: Vec::new(),
    };
    for (i, item) in items.iter().enumerate() {
        let kind = item.get("kind").and_then(Json::as_str).unwrap_or("current");
        match kind {
            "current" => {
                let Some(amps) = item.get("amps").and_then(Json::as_f64) else {
                    return Err(format!("deltas[{i}] needs a numeric amps"));
                };
                let node = if let Some(node) = item.get("node").and_then(Json::as_u64) {
                    let node = node as usize;
                    if node >= grid.nodes.len() {
                        return Err(format!(
                            "deltas[{i}]: node {node} out of range ({} nodes)",
                            grid.nodes.len()
                        ));
                    }
                    node
                } else if let Some(name) = item.get("name").and_then(Json::as_str) {
                    match grid.nodes.iter().position(|n| n.name == name) {
                        Some(node) => node,
                        None => return Err(format!("deltas[{i}]: no node named {name:?}")),
                    }
                } else {
                    return Err(format!("deltas[{i}] needs node (index) or name"));
                };
                edits.currents.push((node, amps));
            }
            "strap" => {
                let Some(layer) = item.get("layer").and_then(Json::as_u64) else {
                    return Err(format!("deltas[{i}] needs a numeric layer"));
                };
                let Some(scale) = item.get("scale").and_then(Json::as_f64) else {
                    return Err(format!("deltas[{i}] needs a numeric scale"));
                };
                edits.topology.push(TopologyDelta::Strap {
                    layer: layer as u32,
                    scale,
                });
            }
            "via" => {
                let Some(Json::Arr(layers)) = item.get("layers") else {
                    return Err(format!("deltas[{i}] needs layers (an array of two layers)"));
                };
                let [a, b] = layers.as_slice() else {
                    return Err(format!(
                        "deltas[{i}]: layers must hold exactly two entries, got {}",
                        layers.len()
                    ));
                };
                let (Some(a), Some(b)) = (a.as_u64(), b.as_u64()) else {
                    return Err(format!("deltas[{i}]: layers entries must be numeric"));
                };
                let Some(scale) = item.get("scale").and_then(Json::as_f64) else {
                    return Err(format!("deltas[{i}] needs a numeric scale"));
                };
                edits.topology.push(TopologyDelta::Via {
                    lower: a.min(b) as u32,
                    upper: a.max(b) as u32,
                    scale,
                });
            }
            "segment" => {
                let Some(segment) = item.get("segment").and_then(Json::as_u64) else {
                    return Err(format!("deltas[{i}] needs a numeric segment index"));
                };
                let Some(ohms) = item.get("ohms").and_then(Json::as_f64) else {
                    return Err(format!("deltas[{i}] needs a numeric ohms"));
                };
                edits.topology.push(TopologyDelta::Segment {
                    segment: segment as usize,
                    ohms,
                });
            }
            other => {
                return Err(format!(
                    "deltas[{i}]: unknown kind {other:?} (expected current, strap, via or segment)"
                ))
            }
        }
    }
    Ok(edits)
}

/// The machine-readable `code` of an [`EditError`] envelope.
fn edit_error_code(error: &EditError) -> &'static str {
    match error {
        EditError::NoStrapSegments { .. } => "no_strap_segments",
        EditError::NoViaSegments { .. } => "no_via_segments",
        EditError::DegenerateVia { .. } => "degenerate_via",
        EditError::SegmentOutOfRange { .. } => "segment_out_of_range",
        EditError::InvalidValue { .. } => "invalid_value",
    }
}

/// Renders an [`EditError`] as the 400 envelope with its
/// machine-readable kind as the code.
fn edit_error_body(error: &EditError) -> String {
    envelope(edit_error_code(error), &error.to_string())
}

/// `POST /sweep` — ranked what-if sweep over candidate edit plans:
///
/// ```json
/// {"base": "<16-hex design fingerprint>",
///  "hotspot_threshold": 0.0012,
///  "candidates": [
///    {"label": "thicken-m1", "deltas": [{"kind": "strap", "layer": 1, "scale": 0.8}]},
///    {"label": "more-load", "deltas": [{"node": 17, "amps": 2e-3}]}]}
/// ```
///
/// Every candidate is prepared serially through the warm stage graph
/// (so per-candidate cache statistics are attributable), the model
/// forwards are all submitted to the micro-batcher before any reply
/// is awaited, and the response lists candidates ranked best-first by
/// worst-drop delta against the base analysis (ties: hotspot-count
/// delta, then submission order). Because every prepared map is
/// bitwise deterministic and the ranking key is total, the ranking is
/// identical at any thread count and any batch slicing.
fn handle_sweep(request: &Request, state: &Arc<State>, ctx: &RequestCtx) -> (u16, String) {
    if state.shutting_down.load(Ordering::SeqCst) {
        return (503, envelope("shutting_down", "shutting down"));
    }
    let _trace = TraceScope {
        collector: irf_trace::Collector::install(),
        state,
        ctx,
    };
    let _span = irf_trace::span("sweep_request");
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return (400, envelope("invalid_body", "body is not utf-8")),
    };
    let body = match parse(text) {
        Ok(body) => body,
        Err(error) => return (400, envelope("invalid_json", &error.to_string())),
    };
    let (fingerprint, grid) = match resolve_base(&body, state) {
        Ok(ok) => ok,
        Err(err) => return err,
    };
    let Some(Json::Arr(items)) = body.get("candidates") else {
        return (
            400,
            envelope(
                "missing_candidates",
                "request needs candidates (an array of {label?, deltas})",
            ),
        );
    };
    const MAX_CANDIDATES: usize = 64;
    if items.is_empty() {
        return (
            400,
            envelope_with(
                "empty_candidates",
                "candidates must not be empty",
                vec![
                    ("count", Json::Num(0.0)),
                    ("limit", Json::Num(MAX_CANDIDATES as f64)),
                ],
            ),
        );
    }
    if items.len() > MAX_CANDIDATES {
        return (
            400,
            envelope_with(
                "too_many_candidates",
                &format!(
                    "too many candidates ({}, limit {MAX_CANDIDATES})",
                    items.len()
                ),
                vec![
                    ("count", Json::Num(items.len() as f64)),
                    ("limit", Json::Num(MAX_CANDIDATES as f64)),
                ],
            ),
        );
    }

    // Parse and validate every candidate before solving anything, so a
    // malformed plan rejects the whole sweep without wasted work.
    let mut candidates = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let label = item
            .get("label")
            .and_then(Json::as_str)
            .map_or_else(|| format!("candidate-{i}"), str::to_string);
        let edits = match parse_edits(item.get("deltas"), &grid) {
            Ok(edits) => edits,
            Err(message) => {
                return (
                    400,
                    envelope_with(
                        "invalid_deltas",
                        &format!("candidates[{i}] ({label}): {message}"),
                        vec![
                            ("candidate", Json::Num(i as f64)),
                            ("label", Json::Str(label)),
                        ],
                    ),
                )
            }
        };
        let session = match build_session(state, &grid, &edits) {
            Ok(session) => session,
            Err(error) => {
                return (
                    400,
                    envelope_with(
                        edit_error_code(&error),
                        &error.to_string(),
                        vec![
                            ("candidate", Json::Num(i as f64)),
                            ("label", Json::Str(label)),
                        ],
                    ),
                );
            }
        };
        candidates.push((label, session));
    }

    // The base analysis everything is ranked against (warm after the
    // original /predict; computed through the same stage graph
    // otherwise).
    let base_session = state.pipeline.session(Arc::clone(&grid));

    // `"warm_start": true` opts candidates into seeding their rough
    // solves from the base solution. Faster, and still deterministic
    // for a fixed base — but not bitwise identical to cold analyses,
    // so it is never the default.
    let warm_start = body
        .get("warm_start")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    if warm_start {
        let seed = match base_session.rough_solution() {
            Ok(seed) => seed,
            Err(error) => {
                return (
                    400,
                    envelope(
                        "feature_error",
                        &format!("cannot prepare base features: {error}"),
                    ),
                )
            }
        };
        candidates = candidates
            .into_iter()
            .map(|(label, session)| (label, session.with_rough_warm_start(Arc::clone(&seed))))
            .collect();
    }

    let ((prepared, base_stack), prepare_seconds) = Timer::time(|| {
        let base_stack = base_session.prepare();
        // Serial per-candidate prepares keep the store counters
        // attributable to one candidate at a time.
        let prepared: Vec<_> = candidates
            .iter()
            .map(|(label, session)| {
                let before = (state.cache.hits(), state.cache.misses());
                let stack = session.prepare();
                let after = (state.cache.hits(), state.cache.misses());
                (
                    label,
                    session,
                    stack,
                    after.0 - before.0,
                    after.1 - before.1,
                )
            })
            .collect();
        (prepared, base_stack)
    });
    state
        .metrics
        .observe_stage("sweep_prepare", prepare_seconds);
    let base_stack = match base_stack {
        Ok(stack) => stack,
        Err(error) => {
            return (
                400,
                envelope(
                    "feature_error",
                    &format!("cannot prepare base features: {error}"),
                ),
            )
        }
    };
    let mut stacks = vec![Arc::clone(&base_stack)];
    for (label, _, stack, ..) in &prepared {
        match stack {
            Ok(stack) => stacks.push(Arc::clone(stack)),
            Err(error) => {
                return (
                    400,
                    envelope(
                        "feature_error",
                        &format!("cannot prepare candidate {label}: {error}"),
                    ),
                )
            }
        }
    }

    let slot = default_slot(state);
    let (maps, source) = match run_inference_batch(state, &stacks, ctx, slot.as_ref()) {
        Ok(ok) => ok,
        Err(err) => return err,
    };
    let base_map = &maps[0];
    let threshold = body
        .get("hotspot_threshold")
        .and_then(Json::as_f64)
        .unwrap_or_else(|| f64::from(base_map.max()) * 0.9);
    let hotspots = |map: &GridMap| {
        map.data()
            .iter()
            .filter(|&&v| f64::from(v) >= threshold && v > 0.0)
            .count()
    };
    let base_max = f64::from(base_map.max());
    let base_hotspots = hotspots(base_map);

    struct Row {
        index: usize,
        label: String,
        design: u64,
        max_drop: f64,
        delta_max_drop: f64,
        hotspot_count: usize,
        delta_hotspots: i64,
        deltas_applied: usize,
        topology_deltas: usize,
        cache_hits: u64,
        cache_misses: u64,
    }
    let mut rows: Vec<Row> = prepared
        .iter()
        .zip(&maps[1..])
        .enumerate()
        .map(|(index, ((label, session, stack, hits, misses), map))| {
            let stack = stack.as_ref().expect("prepare errors handled above");
            // Edited designs are themselves valid bases for follow-up
            // /whatif and /sweep calls. A warm-started stack lives
            // under a seed-tagged key, so also register the design's
            // own (untagged) fingerprint — the identity reported back.
            state
                .cache
                .insert_parsed(stack.fingerprint, Arc::clone(session.grid()));
            let design = session.fingerprint();
            if design != stack.fingerprint {
                state
                    .cache
                    .insert_parsed(design, Arc::clone(session.grid()));
            }
            let max_drop = f64::from(map.max());
            let hotspot_count = hotspots(map);
            let plan = session.edit_plan();
            Row {
                index,
                label: (*label).clone(),
                design,
                max_drop,
                delta_max_drop: max_drop - base_max,
                hotspot_count,
                delta_hotspots: hotspot_count as i64 - base_hotspots as i64,
                deltas_applied: plan.current_deltas().len() + plan.topology_deltas().len(),
                topology_deltas: plan.topology_deltas().len(),
                cache_hits: *hits,
                cache_misses: *misses,
            }
        })
        .collect();
    // Best first: the candidate that lowers the worst drop the most,
    // ties broken by hotspot improvement, then submission order — a
    // total order, so the ranking is deterministic.
    rows.sort_by(|a, b| {
        a.delta_max_drop
            .total_cmp(&b.delta_max_drop)
            .then(a.delta_hotspots.cmp(&b.delta_hotspots))
            .then(a.index.cmp(&b.index))
    });

    let ranked: Vec<Json> = rows
        .iter()
        .enumerate()
        .map(|(rank, row)| {
            obj(vec![
                ("rank", Json::Num((rank + 1) as f64)),
                ("candidate", Json::Num(row.index as f64)),
                ("label", Json::Str(row.label.clone())),
                ("design", Json::Str(format!("{:016x}", row.design))),
                ("max_drop", Json::Num(row.max_drop)),
                ("delta_max_drop", Json::Num(row.delta_max_drop)),
                ("hotspot_count", Json::Num(row.hotspot_count as f64)),
                ("delta_hotspot_count", Json::Num(row.delta_hotspots as f64)),
                ("deltas_applied", Json::Num(row.deltas_applied as f64)),
                (
                    "topology_deltas_applied",
                    Json::Num(row.topology_deltas as f64),
                ),
                (
                    "cache",
                    obj(vec![
                        ("hits", Json::Num(row.cache_hits as f64)),
                        ("misses", Json::Num(row.cache_misses as f64)),
                    ]),
                ),
            ])
        })
        .collect();
    state.metrics.observe_sweep_candidates(rows.len());
    (
        200,
        obj(vec![
            ("base", Json::Str(format!("{fingerprint:016x}"))),
            ("source", Json::Str(source.to_string())),
            ("hotspot_threshold", Json::Num(threshold)),
            (
                "baseline",
                obj(vec![
                    ("max_drop", Json::Num(base_max)),
                    ("hotspot_count", Json::Num(base_hotspots as f64)),
                ]),
            ),
            ("candidates", Json::Arr(ranked)),
        ])
        .render(),
    )
}

/// One bounded integer tunable of `/optimize`: absent → `default`,
/// non-numeric or out of `[min, max]` → a rendered structured 400
/// body naming the offending value and the accepted range.
fn bounded_param(
    body: &Json,
    key: &'static str,
    default: usize,
    min: usize,
    max: usize,
) -> Result<usize, String> {
    let Some(value) = body.get(key) else {
        return Ok(default);
    };
    let invalid = |got: f64| {
        envelope_with(
            &format!("invalid_{key}"),
            &format!("{key} must be an integer in [{min}, {max}]"),
            vec![
                ("value", Json::Num(got)),
                ("min", Json::Num(min as f64)),
                ("max", Json::Num(max as f64)),
            ],
        )
    };
    let Some(v) = value.as_u64() else {
        return Err(invalid(value.as_f64().unwrap_or(f64::NAN)));
    };
    let v = v as usize;
    if (min..=max).contains(&v) {
        Ok(v)
    } else {
        Err(invalid(v as f64))
    }
}

/// A [`TopologyDelta`] rendered in the same shape `/whatif` and
/// `/sweep` accept as input, so an `/optimize` winner's plan can be
/// replayed verbatim.
fn render_topology_delta(delta: &TopologyDelta) -> Json {
    match *delta {
        TopologyDelta::Strap { layer, scale } => obj(vec![
            ("kind", Json::Str("strap".to_string())),
            ("layer", Json::Num(f64::from(layer))),
            ("scale", Json::Num(scale)),
        ]),
        TopologyDelta::Via {
            lower,
            upper,
            scale,
        } => obj(vec![
            ("kind", Json::Str("via".to_string())),
            (
                "layers",
                Json::Arr(vec![
                    Json::Num(f64::from(lower)),
                    Json::Num(f64::from(upper)),
                ]),
            ),
            ("scale", Json::Num(scale)),
        ]),
        TopologyDelta::Segment { segment, ohms } => obj(vec![
            ("kind", Json::Str("segment".to_string())),
            ("segment", Json::Num(segment as f64)),
            ("ohms", Json::Num(ohms)),
        ]),
    }
}

/// `POST /optimize` — the closed-loop PDN optimizer:
///
/// ```json
/// {"base": "<16-hex design fingerprint>",
///  "target_max_drop": 0.0011,
///  "metal_budget": 250.0,
///  "beam": 2, "max_iterations": 8, "max_evaluations": 64,
///  "warm_start": true}
/// ```
///
/// Runs [`irf_opt::Optimizer`] from the registered base design:
/// candidates are generated from the rough drop map, priced under the
/// metal budget, batched through the warm stage graph (and the model
/// micro-batcher when a model is loaded), and beam-pruned until the
/// worst drop meets the target or a budget runs out. The winner is
/// registered under its design fingerprint for follow-up `/whatif` /
/// `/sweep` calls, and the full per-iteration trajectory is returned.
/// Deterministic for a fixed base and tunables at any thread count.
fn handle_optimize(request: &Request, state: &Arc<State>, ctx: &RequestCtx) -> (u16, String) {
    if state.shutting_down.load(Ordering::SeqCst) {
        return (503, envelope("shutting_down", "shutting down"));
    }
    let _trace = TraceScope {
        collector: irf_trace::Collector::install(),
        state,
        ctx,
    };
    let _span = irf_trace::span("optimize_request");
    let text = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => return (400, envelope("invalid_body", "body is not utf-8")),
    };
    let body = match parse(text) {
        Ok(body) => body,
        Err(error) => return (400, envelope("invalid_json", &error.to_string())),
    };
    let (fingerprint, grid) = match resolve_base(&body, state) {
        Ok(ok) => ok,
        Err(err) => return err,
    };
    let Some(target) = body.get("target_max_drop").and_then(Json::as_f64) else {
        return (
            400,
            envelope(
                "missing_target",
                "request needs a numeric target_max_drop (volts)",
            ),
        );
    };
    if !target.is_finite() || target < 0.0 {
        return (
            400,
            envelope_with(
                "invalid_target",
                "target_max_drop must be finite and non-negative",
                vec![("value", Json::Num(target))],
            ),
        );
    }
    let Some(budget) = body.get("metal_budget").and_then(Json::as_f64) else {
        return (
            400,
            envelope("missing_budget", "request needs a numeric metal_budget"),
        );
    };
    if !budget.is_finite() || budget <= 0.0 {
        return (
            400,
            envelope_with(
                "invalid_budget",
                "metal_budget must be finite and positive",
                vec![("value", Json::Num(budget))],
            ),
        );
    }
    let beam = match bounded_param(&body, "beam", 2, 1, 8) {
        Ok(v) => v,
        Err(body) => return (400, body),
    };
    let max_iterations = match bounded_param(&body, "max_iterations", 8, 1, 32) {
        Ok(v) => v,
        Err(body) => return (400, body),
    };
    let max_evaluations = match bounded_param(&body, "max_evaluations", 64, 1, 256) {
        Ok(v) => v,
        Err(body) => return (400, body),
    };
    let candidates_per_state = match bounded_param(&body, "candidates_per_state", 6, 1, 16) {
        Ok(v) => v,
        Err(body) => return (400, body),
    };
    let warm_start = body
        .get("warm_start")
        .and_then(Json::as_bool)
        .unwrap_or(true);

    // The optimizer's batch hook rides the same micro-batcher as
    // /sweep; structured HTTP failures (429 backpressure, 503 drain)
    // are captured on the side so they surface with their real status
    // instead of a generic 500.
    let http_error: std::cell::RefCell<Option<(u16, String)>> = std::cell::RefCell::new(None);
    let source: std::cell::Cell<&'static str> = std::cell::Cell::new("rough");
    let slot = default_slot(state);
    let predictor = |stacks: &[Arc<ir_fusion::PreparedStack>]| -> Result<Vec<GridMap>, String> {
        match run_inference_batch(state, stacks, ctx, slot.as_ref()) {
            Ok((maps, src)) => {
                source.set(src);
                Ok(maps)
            }
            Err(err) => {
                *http_error.borrow_mut() = Some(err);
                Err("inference failed".to_string())
            }
        }
    };
    let optimizer = irf_opt::Optimizer::new(
        &state.pipeline,
        irf_opt::OptimizerConfig {
            target_max_drop: target,
            metal_budget: budget,
            beam_width: beam,
            max_iterations,
            max_evaluations,
            candidates_per_state,
            warm_start,
        },
    )
    .with_predictor(&predictor);
    let (result, seconds) = Timer::time(|| optimizer.run(Arc::clone(&grid)));
    state.metrics.observe_stage("optimize", seconds);
    let report = match result {
        Ok(report) => report,
        Err(irf_opt::OptimizeError::Predict(_)) => {
            return http_error
                .borrow_mut()
                .take()
                .unwrap_or((500, envelope("predict_failed", "prediction failed")))
        }
        Err(irf_opt::OptimizeError::Edit(error)) => return (400, edit_error_body(&error)),
        Err(irf_opt::OptimizeError::Feature(error)) => {
            return (
                400,
                envelope(
                    "feature_error",
                    &format!("cannot prepare features: {error}"),
                ),
            )
        }
    };
    state
        .metrics
        .observe_optimize(report.trajectory.len(), report.evaluations);
    // The winner is itself a valid base for follow-up what-ifs.
    state
        .cache
        .insert_parsed(report.winner.fingerprint, Arc::clone(&report.winner.grid));

    let labels =
        |labels: &[String]| Json::Arr(labels.iter().map(|l| Json::Str(l.clone())).collect());
    let trajectory: Vec<Json> = report
        .trajectory
        .iter()
        .map(|r| {
            obj(vec![
                ("iteration", Json::Num(r.iteration as f64)),
                ("evaluated", Json::Num(r.evaluated as f64)),
                ("max_drop", Json::Num(r.best_max_drop)),
                ("metal_cost", Json::Num(r.best_cost)),
                ("design", Json::Str(format!("{:016x}", r.best_fingerprint))),
                ("labels", labels(&r.best_labels)),
            ])
        })
        .collect();
    (
        200,
        obj(vec![
            ("base", Json::Str(format!("{fingerprint:016x}"))),
            ("source", Json::Str(source.get().to_string())),
            ("target_max_drop", Json::Num(report.target_max_drop)),
            ("metal_budget", Json::Num(report.metal_budget)),
            (
                "stop_reason",
                Json::Str(report.stop_reason.label().to_string()),
            ),
            ("target_met", Json::Bool(report.target_met)),
            ("iterations", Json::Num(report.trajectory.len() as f64)),
            ("evaluations", Json::Num(report.evaluations as f64)),
            (
                "baseline",
                obj(vec![("max_drop", Json::Num(report.baseline_max_drop))]),
            ),
            (
                "winner",
                obj(vec![
                    (
                        "design",
                        Json::Str(format!("{:016x}", report.winner.fingerprint)),
                    ),
                    ("max_drop", Json::Num(report.winner.max_drop)),
                    ("metal_cost", Json::Num(report.winner.metal_cost)),
                    ("labels", labels(&report.winner.labels)),
                    (
                        "deltas",
                        Json::Arr(
                            report
                                .winner
                                .deltas
                                .iter()
                                .map(render_topology_delta)
                                .collect(),
                        ),
                    ),
                ]),
            ),
            ("trajectory", Json::Arr(trajectory)),
        ])
        .render(),
    )
}

/// Queues one prepared stack for the batched forward pass on `slot`
/// (a registry-resolved model+precision variant), or falls back to
/// the rough map when no model is loaded (`slot` is `None`).
fn run_inference(
    state: &Arc<State>,
    stack: &Arc<ir_fusion::PreparedStack>,
    ctx: &RequestCtx,
    slot: Option<&Arc<ModelSlot>>,
) -> Result<(GridMap, &'static str), (u16, String)> {
    let Some(slot) = slot else {
        return Ok((stack.rough.clone(), "rough"));
    };
    let sender = state
        .predict_tx
        .lock()
        .expect("predict sender poisoned")
        .clone();
    match sender {
        Some(tx) => {
            let (reply_tx, reply_rx) = mpsc::channel();
            let job = PredictJob {
                stack: Arc::clone(stack),
                slot: Arc::clone(slot),
                request: ctx.id.as_u64(),
                submitted: Instant::now(),
                reply: reply_tx,
            };
            match try_submit(&tx, job) {
                Ok(()) => {}
                Err(SubmitError::QueueFull) => {
                    return Err((
                        429,
                        envelope("queue_full", "predict queue is full, retry later"),
                    ))
                }
                Err(SubmitError::Closed) => {
                    return Err((503, envelope("shutting_down", "shutting down")))
                }
            }
            let (received, infer_seconds) = Timer::time(|| {
                // The wait shows up in the request's span tree (the
                // forward itself runs on the batcher thread).
                let _span = irf_trace::span("infer_wait");
                reply_rx.recv()
            });
            state.metrics.observe_stage("infer", infer_seconds);
            match received {
                Ok(reply) => {
                    ctx.observe_reply(&reply);
                    Ok((reply.map, "fused"))
                }
                Err(mpsc::RecvError) => Err((503, envelope("shutting_down", "shutting down"))),
            }
        }
        None => Err((503, envelope("shutting_down", "shutting down"))),
    }
}

/// Fans `stacks` through the micro-batcher against `slot`: every job
/// is submitted before any reply is awaited, so one sweep's forwards
/// coalesce into as few batches as the batcher's window allows.
/// Output order matches input order, and because the batched forward
/// is bitwise identical to serial forwards, the maps do not depend on
/// how the batcher slices the jobs. Without a model (`slot` `None`),
/// falls back to the rough maps.
fn run_inference_batch(
    state: &Arc<State>,
    stacks: &[Arc<ir_fusion::PreparedStack>],
    ctx: &RequestCtx,
    slot: Option<&Arc<ModelSlot>>,
) -> Result<(Vec<GridMap>, &'static str), (u16, String)> {
    let Some(slot) = slot else {
        return Ok((stacks.iter().map(|s| s.rough.clone()).collect(), "rough"));
    };
    let sender = state
        .predict_tx
        .lock()
        .expect("predict sender poisoned")
        .clone();
    match sender {
        Some(tx) => {
            let mut replies = Vec::with_capacity(stacks.len());
            for stack in stacks {
                let (reply_tx, reply_rx) = mpsc::channel();
                let job = PredictJob {
                    stack: Arc::clone(stack),
                    slot: Arc::clone(slot),
                    request: ctx.id.as_u64(),
                    submitted: Instant::now(),
                    reply: reply_tx,
                };
                match try_submit(&tx, job) {
                    Ok(()) => replies.push(reply_rx),
                    Err(SubmitError::QueueFull) => {
                        return Err((
                            429,
                            envelope("queue_full", "predict queue is full, retry later"),
                        ))
                    }
                    Err(SubmitError::Closed) => {
                        return Err((503, envelope("shutting_down", "shutting down")))
                    }
                }
            }
            let (received, infer_seconds) = Timer::time(|| {
                let _span = irf_trace::span("infer_wait");
                replies
                    .iter()
                    .map(mpsc::Receiver::recv)
                    .collect::<Result<Vec<_>, _>>()
            });
            state.metrics.observe_stage("infer", infer_seconds);
            match received {
                Ok(received) => {
                    let maps = received
                        .into_iter()
                        .map(|reply| {
                            ctx.observe_reply(&reply);
                            reply.map
                        })
                        .collect();
                    Ok((maps, "fused"))
                }
                Err(mpsc::RecvError) => Err((503, envelope("shutting_down", "shutting down"))),
            }
        }
        None => Err((503, envelope("shutting_down", "shutting down"))),
    }
}

fn render_prediction(
    grid: &PowerGrid,
    state: &Arc<State>,
    map: &GridMap,
    source: &str,
    body: &Json,
    extra: Vec<(&'static str, Json)>,
) -> String {
    let include_map = body
        .get("include_map")
        .and_then(Json::as_bool)
        .unwrap_or(false);
    let threshold = body
        .get("hotspot_threshold")
        .and_then(Json::as_f64)
        .unwrap_or_else(|| f64::from(map.max()) * 0.9);
    let hotspot_count = map
        .data()
        .iter()
        .filter(|&&v| f64::from(v) >= threshold && v > 0.0)
        .count();
    let fingerprint = design_fingerprint(grid, state.pipeline.config());
    let mut members = extra;
    members.extend(vec![
        ("design", Json::Str(format!("{fingerprint:016x}"))),
        ("source", Json::Str(source.to_string())),
        ("width", Json::Num(map.width() as f64)),
        ("height", Json::Num(map.height() as f64)),
        ("max_drop", Json::Num(f64::from(map.max()))),
        ("mean_drop", Json::Num(f64::from(map.mean()))),
        ("hotspot_threshold", Json::Num(threshold)),
        ("hotspot_count", Json::Num(hotspot_count as f64)),
        ("nodes", Json::Num(grid.nodes.len() as f64)),
    ]);
    if include_map {
        members.push((
            "map",
            Json::Arr(
                map.data()
                    .iter()
                    .map(|&v| Json::Num(f64::from(v)))
                    .collect(),
            ),
        ));
    }
    obj(members).render()
}
