//! `irf-serve` — the IR-Fusion inference server binary.
//!
//! ```text
//! irf-serve [--addr HOST:PORT] [--workers N] [--batch-size B]
//!           [--batch-deadline-ms T] [--queue N] [--cache N]
//!           [--read-timeout-ms T] [--model CKPT | --no-model]
//!           [--full] [--threads N]
//!           [--log LEVEL] [--log-format json|pretty]
//!           [--slow-ms T] [--recorder N]
//! ```
//!
//! Without `--model`, a tiny IR-Fusion model is trained at startup on
//! synthetic designs (deterministic, a few seconds) so the server is
//! self-contained; `--no-model` skips the model entirely and serves
//! rough numerical maps. `--full` uses the full-resolution pipeline
//! configuration instead of the test-scale one.
//!
//! Observability: all diagnostics are structured log records on stderr
//! (`pretty` on a TTY, JSON lines otherwise; override with `--log`
//! `--log-format` or `IRF_LOG` / `IRF_LOG_FORMAT`). Requests slower
//! than `--slow-ms` (or `IRF_SLOW_MS`) snapshot their span tree into
//! the flight recorder (`GET /debug/requests`), which retains the last
//! `--recorder` completed requests.
//!
//! Stop the server with `POST /shutdown` (the dependency-free build
//! cannot trap SIGTERM; see the crate docs).

use ir_fusion::{load_model, train, FusionConfig, TrainedModel};
use irf_data::Dataset;
use irf_models::ModelKind;
use irf_obs::log::{Format, Level};
use irf_serve::{Server, ServerConfig};
use std::time::Duration;

struct Args {
    server: ServerConfig,
    model_path: Option<String>,
    no_model: bool,
    full: bool,
    threads: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: irf-serve [--addr HOST:PORT] [--workers N] [--batch-size B]\n\
         \x20                [--batch-deadline-ms T] [--queue N] [--cache N]\n\
         \x20                [--read-timeout-ms T] [--model CKPT | --no-model]\n\
         \x20                [--full] [--threads N]\n\
         \x20                [--log off|error|warn|info|debug|trace]\n\
         \x20                [--log-format json|pretty] [--slow-ms T] [--recorder N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        server: ServerConfig::default(),
        model_path: None,
        no_model: false,
        full: false,
        threads: 0,
    };
    // The env knobs apply first so flags can override them.
    if let Some(ms) = std::env::var("IRF_SLOW_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        args.server.slow_threshold = Duration::from_millis(ms);
    }
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.server.addr = value("--addr"),
            "--workers" => args.server.workers = parse_num(&value("--workers")),
            "--batch-size" => args.server.batch.max_batch = parse_num(&value("--batch-size")),
            "--batch-deadline-ms" => {
                args.server.batch.deadline =
                    Duration::from_millis(parse_num(&value("--batch-deadline-ms")) as u64);
            }
            "--queue" => args.server.batch.queue_capacity = parse_num(&value("--queue")),
            "--read-timeout-ms" => {
                args.server.read_timeout =
                    Duration::from_millis(parse_num(&value("--read-timeout-ms")) as u64);
            }
            "--cache" => args.server.cache_capacity = parse_num(&value("--cache")),
            "--model" => args.model_path = Some(value("--model")),
            "--no-model" => args.no_model = true,
            "--full" => args.full = true,
            "--threads" => args.threads = parse_num(&value("--threads")),
            "--log" => {
                let raw = value("--log");
                let Some(level) = Level::parse(&raw) else {
                    irf_obs::error(
                        "bad_flag",
                        &[("flag", "--log".into()), ("value", raw.as_str().into())],
                    );
                    usage();
                };
                irf_obs::log::configure(Some(level), None);
            }
            "--log-format" => {
                let raw = value("--log-format");
                let Some(format) = Format::parse(&raw) else {
                    irf_obs::error(
                        "bad_flag",
                        &[
                            ("flag", "--log-format".into()),
                            ("value", raw.as_str().into()),
                        ],
                    );
                    usage();
                };
                irf_obs::log::configure(None, Some(format));
            }
            "--slow-ms" => {
                args.server.slow_threshold =
                    Duration::from_millis(parse_num(&value("--slow-ms")) as u64);
            }
            "--recorder" => args.server.recorder_capacity = parse_num(&value("--recorder")),
            "--help" | "-h" => usage(),
            other => {
                irf_obs::error("unknown_flag", &[("flag", other.into())]);
                usage();
            }
        }
    }
    args
}

fn parse_num(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        irf_obs::error("not_a_number", &[("value", s.into())]);
        usage();
    })
}

fn startup_model(args: &Args, config: &FusionConfig) -> Option<TrainedModel> {
    if args.no_model {
        return None;
    }
    if let Some(path) = &args.model_path {
        let file = std::fs::File::open(path).unwrap_or_else(|e| {
            irf_obs::error(
                "checkpoint_open_failed",
                &[
                    ("path", path.as_str().into()),
                    ("error", e.to_string().as_str().into()),
                ],
            );
            std::process::exit(1);
        });
        let trained = load_model(std::io::BufReader::new(file)).unwrap_or_else(|e| {
            irf_obs::error(
                "checkpoint_load_failed",
                &[
                    ("path", path.as_str().into()),
                    ("error", e.to_string().as_str().into()),
                ],
            );
            std::process::exit(1);
        });
        irf_obs::info(
            "checkpoint_loaded",
            &[
                ("path", path.as_str().into()),
                ("model", format!("{trained:?}").as_str().into()),
            ],
        );
        return Some(trained);
    }
    irf_obs::info(
        "startup_training",
        &[(
            "hint",
            "pass --model CKPT or --no-model to skip startup training".into(),
        )],
    );
    let dataset = Dataset::generate(2, 2, 1, 7);
    let trained = train(ModelKind::IrFusion, &dataset, config);
    irf_obs::info(
        "startup_model_ready",
        &[("model", format!("{trained:?}").as_str().into())],
    );
    Some(trained)
}

fn main() {
    let args = parse_args();
    let mut config = if args.full {
        FusionConfig::default()
    } else {
        FusionConfig::tiny()
    };
    config.num_threads = args.threads;
    let model = startup_model(&args, &config);
    let server = Server::start(&args.server, config, model).unwrap_or_else(|e| {
        irf_obs::error(
            "bind_failed",
            &[
                ("addr", args.server.addr.as_str().into()),
                ("error", e.to_string().as_str().into()),
            ],
        );
        std::process::exit(1);
    });
    println!("listening on http://{}", server.addr());
    irf_obs::info(
        "listening",
        &[
            ("addr", server.addr().to_string().as_str().into()),
            ("workers", args.server.workers.into()),
            ("recorder_capacity", args.server.recorder_capacity.into()),
            (
                "slow_threshold_ms",
                u64::try_from(args.server.slow_threshold.as_millis())
                    .unwrap_or(u64::MAX)
                    .into(),
            ),
        ],
    );
    server.wait();
    irf_obs::info("drained", &[]);
}
