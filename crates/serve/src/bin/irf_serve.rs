//! `irf-serve` — the IR-Fusion inference server binary.
//!
//! ```text
//! irf-serve [--addr HOST:PORT] [--workers N] [--batch-size B]
//!           [--batch-deadline-ms T] [--queue N] [--cache N]
//!           [--read-timeout-ms T] [--model CKPT | --no-model]
//!           [--full] [--threads N]
//! ```
//!
//! Without `--model`, a tiny IR-Fusion model is trained at startup on
//! synthetic designs (deterministic, a few seconds) so the server is
//! self-contained; `--no-model` skips the model entirely and serves
//! rough numerical maps. `--full` uses the full-resolution pipeline
//! configuration instead of the test-scale one.
//!
//! Stop the server with `POST /shutdown` (the dependency-free build
//! cannot trap SIGTERM; see the crate docs).

use ir_fusion::{load_model, train, FusionConfig, TrainedModel};
use irf_data::Dataset;
use irf_models::ModelKind;
use irf_serve::{Server, ServerConfig};
use std::time::Duration;

struct Args {
    server: ServerConfig,
    model_path: Option<String>,
    no_model: bool,
    full: bool,
    threads: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: irf-serve [--addr HOST:PORT] [--workers N] [--batch-size B]\n\
         \x20                [--batch-deadline-ms T] [--queue N] [--cache N]\n\
         \x20                [--read-timeout-ms T] [--model CKPT | --no-model]\n\
         \x20                [--full] [--threads N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        server: ServerConfig::default(),
        model_path: None,
        no_model: false,
        full: false,
        threads: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.server.addr = value("--addr"),
            "--workers" => args.server.workers = parse_num(&value("--workers")),
            "--batch-size" => args.server.batch.max_batch = parse_num(&value("--batch-size")),
            "--batch-deadline-ms" => {
                args.server.batch.deadline =
                    Duration::from_millis(parse_num(&value("--batch-deadline-ms")) as u64);
            }
            "--queue" => args.server.batch.queue_capacity = parse_num(&value("--queue")),
            "--read-timeout-ms" => {
                args.server.read_timeout =
                    Duration::from_millis(parse_num(&value("--read-timeout-ms")) as u64);
            }
            "--cache" => args.server.cache_capacity = parse_num(&value("--cache")),
            "--model" => args.model_path = Some(value("--model")),
            "--no-model" => args.no_model = true,
            "--full" => args.full = true,
            "--threads" => args.threads = parse_num(&value("--threads")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    args
}

fn parse_num(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("not a number: {s}");
        usage();
    })
}

fn startup_model(args: &Args, config: &FusionConfig) -> Option<TrainedModel> {
    if args.no_model {
        return None;
    }
    if let Some(path) = &args.model_path {
        let file = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            std::process::exit(1);
        });
        let trained = load_model(std::io::BufReader::new(file)).unwrap_or_else(|e| {
            eprintln!("cannot load checkpoint {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("loaded checkpoint {path}: {trained:?}");
        return Some(trained);
    }
    eprintln!("training startup model (pass --model CKPT or --no-model to skip)...");
    let dataset = Dataset::generate(2, 2, 1, 7);
    let trained = train(ModelKind::IrFusion, &dataset, config);
    eprintln!("startup model ready: {trained:?}");
    Some(trained)
}

fn main() {
    let args = parse_args();
    let mut config = if args.full {
        FusionConfig::default()
    } else {
        FusionConfig::tiny()
    };
    config.num_threads = args.threads;
    let model = startup_model(&args, &config);
    let server = Server::start(&args.server, config, model).unwrap_or_else(|e| {
        eprintln!("cannot bind {}: {e}", args.server.addr);
        std::process::exit(1);
    });
    println!("listening on http://{}", server.addr());
    server.wait();
    eprintln!("server drained, exiting");
}
