//! `irf-serve`: a dependency-free inference server for IR-Fusion.
//!
//! The crate turns the [`ir_fusion`] pipeline into a long-running
//! HTTP/1.1 service on `std::net::TcpListener` — no async runtime, no
//! HTTP or JSON crates, in keeping with the repo's toolchain-only
//! build. Three ideas carry the design:
//!
//! - **Micro-batching** ([`batch`]): concurrent predict requests are
//!   collected up to a batch size or deadline and executed as one
//!   batched forward pass. Because every tape operation computes
//!   per-sample values with identical serial loops, the batched pass
//!   is bitwise identical to running each request alone — batching is
//!   purely a throughput optimization.
//! - **Stage-artifact caching** ([`ir_fusion::StageStore`]): every
//!   pipeline stage (assembled MNA system, AMG solver setup, rough
//!   solution, structural feature maps, prepared stack) is cached
//!   under a content fingerprint of exactly the inputs that determine
//!   it, so repeated requests skip the dominant preparation cost and
//!   `POST /whatif` re-analyzes a current edit while reusing the
//!   matrix and AMG hierarchy verbatim.
//! - **Bounded queues everywhere**: the predict queue rejects beyond
//!   its capacity (HTTP 429) instead of building unbounded backlog.
//!
//! ```no_run
//! use irf_serve::{Server, ServerConfig};
//! use ir_fusion::FusionConfig;
//!
//! let server = Server::start(
//!     &ServerConfig::default(),
//!     FusionConfig::tiny(),
//!     None, // or Some(trained_model)
//! )?;
//! println!("listening on http://{}", server.addr());
//! server.wait();
//! # Ok::<(), std::io::Error>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod http;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod server;

pub use batch::{BatchConfig, Batcher, ModelSlot, PredictJob, SubmitError};
pub use json::Json;
pub use metrics::ServerMetrics;
pub use registry::{ModelInfo, ModelRegistry};
pub use server::{Server, ServerConfig};
