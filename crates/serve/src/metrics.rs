//! Server observability in Prometheus text exposition format: request
//! counts by route and status, a batch-size histogram, per-stage
//! latency accumulators, and the feature-cache hit rate.

use ir_fusion::FeatureCache;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

struct Inner {
    /// `(route, status) -> count`.
    requests: BTreeMap<(String, u16), u64>,
    /// `batch_hist[i]` counts batches of size `i + 1`.
    batch_hist: Vec<u64>,
    batch_count: u64,
    batch_sum: u64,
    /// `stage -> (count, total seconds)`.
    stages: BTreeMap<&'static str, (u64, f64)>,
}

/// Aggregated server metrics. All methods are thread-safe; request
/// rates are far below the contention regime where a single mutex
/// would matter.
pub struct ServerMetrics {
    inner: Mutex<Inner>,
    max_batch: usize,
}

impl std::fmt::Debug for ServerMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerMetrics")
            .field("max_batch", &self.max_batch)
            .finish_non_exhaustive()
    }
}

impl ServerMetrics {
    /// Creates an empty registry; `max_batch` sizes the batch
    /// histogram (one bucket per possible batch size).
    #[must_use]
    pub fn new(max_batch: usize) -> Self {
        ServerMetrics {
            inner: Mutex::new(Inner {
                requests: BTreeMap::new(),
                batch_hist: vec![0; max_batch.max(1)],
                batch_count: 0,
                batch_sum: 0,
                stages: BTreeMap::new(),
            }),
            max_batch: max_batch.max(1),
        }
    }

    /// Counts one finished request.
    pub fn observe_request(&self, route: &str, status: u16) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        *inner
            .requests
            .entry((route.to_string(), status))
            .or_insert(0) += 1;
    }

    /// Records one executed batch of `size` requests.
    pub fn observe_batch(&self, size: usize) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        let bucket = size.clamp(1, self.max_batch) - 1;
        inner.batch_hist[bucket] += 1;
        inner.batch_count += 1;
        inner.batch_sum += size as u64;
    }

    /// Accumulates `seconds` of latency under a stage label
    /// (`parse`, `prepare`, `infer`, `forward`, ...).
    pub fn observe_stage(&self, stage: &'static str, seconds: f64) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        let entry = inner.stages.entry(stage).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += seconds;
    }

    /// Renders the Prometheus text exposition, folding in the feature
    /// cache's counters.
    #[must_use]
    pub fn render(&self, cache: &FeatureCache) -> String {
        let inner = self.inner.lock().expect("metrics poisoned");
        let mut out = String::new();
        out.push_str("# HELP irf_requests_total Finished HTTP requests by route and status.\n");
        out.push_str("# TYPE irf_requests_total counter\n");
        for ((route, status), count) in &inner.requests {
            let _ = writeln!(
                out,
                "irf_requests_total{{route=\"{route}\",status=\"{status}\"}} {count}"
            );
        }
        out.push_str("# HELP irf_batch_size Requests per executed forward batch.\n");
        out.push_str("# TYPE irf_batch_size histogram\n");
        let mut cumulative = 0u64;
        for (i, n) in inner.batch_hist.iter().enumerate() {
            cumulative += n;
            let _ = writeln!(
                out,
                "irf_batch_size_bucket{{le=\"{}\"}} {cumulative}",
                i + 1
            );
        }
        let _ = writeln!(
            out,
            "irf_batch_size_bucket{{le=\"+Inf\"}} {}",
            inner.batch_count
        );
        let _ = writeln!(out, "irf_batch_size_sum {}", inner.batch_sum);
        let _ = writeln!(out, "irf_batch_size_count {}", inner.batch_count);
        out.push_str("# HELP irf_stage_seconds_total Cumulative latency per pipeline stage.\n");
        out.push_str("# TYPE irf_stage_seconds_total counter\n");
        for (stage, (count, seconds)) in &inner.stages {
            let _ = writeln!(
                out,
                "irf_stage_seconds_total{{stage=\"{stage}\"}} {seconds:.6}"
            );
            let _ = writeln!(out, "irf_stage_requests_total{{stage=\"{stage}\"}} {count}");
        }
        out.push_str("# HELP irf_cache_hits_total Feature-stack cache hits.\n");
        out.push_str("# TYPE irf_cache_hits_total counter\n");
        let _ = writeln!(out, "irf_cache_hits_total {}", cache.hits());
        out.push_str("# HELP irf_cache_misses_total Feature-stack cache misses.\n");
        out.push_str("# TYPE irf_cache_misses_total counter\n");
        let _ = writeln!(out, "irf_cache_misses_total {}", cache.misses());
        out.push_str("# HELP irf_cache_hit_rate Feature-stack cache hit fraction.\n");
        out.push_str("# TYPE irf_cache_hit_rate gauge\n");
        let _ = writeln!(out, "irf_cache_hit_rate {:.6}", cache.hit_rate());
        out.push_str("# HELP irf_cache_entries Cached feature stacks.\n");
        out.push_str("# TYPE irf_cache_entries gauge\n");
        let _ = writeln!(out, "irf_cache_entries {}", cache.len());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_deterministic_and_complete() {
        let m = ServerMetrics::new(4);
        m.observe_request("predict", 200);
        m.observe_request("predict", 200);
        m.observe_request("healthz", 200);
        m.observe_request("predict", 429);
        m.observe_batch(1);
        m.observe_batch(3);
        m.observe_stage("prepare", 0.5);
        m.observe_stage("prepare", 0.25);
        let cache = FeatureCache::new(4);
        let text = m.render(&cache);
        assert!(text.contains("irf_requests_total{route=\"predict\",status=\"200\"} 2"));
        assert!(text.contains("irf_requests_total{route=\"predict\",status=\"429\"} 1"));
        assert!(text.contains("irf_batch_size_bucket{le=\"1\"} 1"));
        assert!(text.contains("irf_batch_size_bucket{le=\"3\"} 2"));
        assert!(text.contains("irf_batch_size_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("irf_batch_size_sum 4"));
        assert!(text.contains("irf_stage_seconds_total{stage=\"prepare\"} 0.750000"));
        assert!(text.contains("irf_stage_requests_total{stage=\"prepare\"} 2"));
        assert!(text.contains("irf_cache_hits_total 0"));
        assert_eq!(text, m.render(&cache), "render must be stable");
    }

    #[test]
    fn oversized_batches_clamp_into_the_last_bucket() {
        let m = ServerMetrics::new(2);
        m.observe_batch(9);
        let cache = FeatureCache::new(1);
        let text = m.render(&cache);
        assert!(text.contains("irf_batch_size_bucket{le=\"2\"} 1"));
        assert!(text.contains("irf_batch_size_sum 9"));
    }
}
