//! Server observability: a facade over the unified
//! [`irf_trace::MetricsRegistry`].
//!
//! The server publishes its request/batch/stage series into the same
//! process-global registry the solver and pipeline publish into, so a
//! single `GET /metrics` exposes the whole stack: request counts by
//! route and status, a batch-size histogram, per-stage latency
//! accumulators, the feature-cache counters, *and* pipeline internals
//! (`irf_pcg_iterations`, `irf_amg_levels`,
//! `irf_stage_seconds_total{stage="pcg_solve"}`, ...).

use ir_fusion::{PrecisionMode, Stage, StageStore};
use irf_obs::slo::{SloPolicy, LATENCY_BUCKETS};
use irf_trace::{MetricKind, MetricsRegistry};
use std::sync::Arc;

/// Legacy (unversioned) routes that answer as deprecated aliases of
/// their `/v1` successors; their per-endpoint deprecation counters are
/// zero-initialized so a cold scrape shows every alias.
pub const DEPRECATED_ENDPOINTS: [&str; 10] = [
    "healthz", "metrics", "trace", "debug", "predict", "whatif", "sweep", "optimize", "reload",
    "shutdown",
];

/// The precision label values of `irf_predict_requests_total`.
const PRECISION_LABELS: [&str; 3] = ["f32", "f16", "int8"];

/// Which registry a [`ServerMetrics`] publishes into.
enum Registry {
    /// The process-global registry (production): pipeline and solver
    /// series appear alongside the server's own.
    Global,
    /// An isolated instance (tests): no cross-talk with other servers
    /// in the same process.
    Owned(Arc<MetricsRegistry>),
}

/// Server metrics facade. All methods are thread-safe; request rates
/// are far below the contention regime where the registry's mutex
/// would matter.
pub struct ServerMetrics {
    registry: Registry,
    max_batch: usize,
}

impl std::fmt::Debug for ServerMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerMetrics")
            .field("max_batch", &self.max_batch)
            .field(
                "registry",
                &match self.registry {
                    Registry::Global => "global",
                    Registry::Owned(_) => "owned",
                },
            )
            .finish()
    }
}

impl ServerMetrics {
    /// Creates a facade over the process-global registry; `max_batch`
    /// sizes the batch histogram (one bucket per possible batch size).
    #[must_use]
    pub fn new(max_batch: usize) -> Self {
        let m = ServerMetrics {
            registry: Registry::Global,
            max_batch: max_batch.max(1),
        };
        m.describe_families();
        m
    }

    /// Creates a facade over an isolated registry (for tests that must
    /// not observe series published by other servers in the process).
    #[must_use]
    pub fn with_registry(registry: Arc<MetricsRegistry>, max_batch: usize) -> Self {
        let m = ServerMetrics {
            registry: Registry::Owned(registry),
            max_batch: max_batch.max(1),
        };
        m.describe_families();
        m
    }

    /// The registry this facade publishes into.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        match &self.registry {
            Registry::Global => irf_trace::registry(),
            Registry::Owned(r) => r,
        }
    }

    fn describe_families(&self) {
        let r = self.registry();
        r.describe(
            "irf_requests_total",
            MetricKind::Counter,
            "Finished HTTP requests by route and status.",
        );
        let buckets: Vec<f64> = (1..=self.max_batch).map(|i| i as f64).collect();
        r.describe_histogram(
            "irf_batch_size",
            "Requests per executed forward batch.",
            &buckets,
        );
        r.describe(
            "irf_stage_seconds_total",
            MetricKind::Counter,
            "Cumulative latency per pipeline stage.",
        );
        r.describe(
            "irf_stage_requests_total",
            MetricKind::Counter,
            "Observations per pipeline stage.",
        );
        r.describe(
            "irf_cache_hits_total",
            MetricKind::Counter,
            "Stage-store hits across all stages.",
        );
        r.describe(
            "irf_cache_misses_total",
            MetricKind::Counter,
            "Stage-store misses across all stages.",
        );
        r.describe(
            "irf_cache_singleflight_total",
            MetricKind::Counter,
            "Stage computations saved by single-flighting concurrent misses.",
        );
        r.describe(
            "irf_cache_hit_rate",
            MetricKind::Gauge,
            "Stage-store hit fraction across all stages.",
        );
        r.describe(
            "irf_cache_entries",
            MetricKind::Gauge,
            "Cached stage artifacts.",
        );
        r.describe(
            "irf_stage_cache_events_total",
            MetricKind::Counter,
            "Stage-store events (hit/miss/coalesced/eviction) by pipeline stage.",
        );
        r.describe(
            "irf_model_reloads_total",
            MetricKind::Counter,
            "Successful checkpoint reloads via POST /reload.",
        );
        // Zero-initialize so the series is scrapeable before the first
        // reload (and CI can grep for it unconditionally).
        r.counter_add("irf_model_reloads_total", &[], 0.0);
        r.describe(
            "irf_sweep_candidates_total",
            MetricKind::Counter,
            "Candidate plans evaluated across all POST /sweep calls.",
        );
        r.counter_add("irf_sweep_candidates_total", &[], 0.0);
        r.describe(
            "irf_opt_iterations_total",
            MetricKind::Counter,
            "Optimizer loop iterations across all POST /optimize calls.",
        );
        r.counter_add("irf_opt_iterations_total", &[], 0.0);
        r.describe(
            "irf_opt_evaluations_total",
            MetricKind::Counter,
            "Candidate analyses evaluated across all POST /optimize calls.",
        );
        r.counter_add("irf_opt_evaluations_total", &[], 0.0);
        r.describe(
            "irf_model_registry_models",
            MetricKind::Gauge,
            "Models currently loaded in the registry.",
        );
        r.gauge_set("irf_model_registry_models", &[], 0.0);
        r.describe(
            "irf_predict_requests_total",
            MetricKind::Counter,
            "Successful predict requests by forward precision.",
        );
        for precision in PRECISION_LABELS {
            r.counter_add(
                "irf_predict_requests_total",
                &[("precision", precision)],
                0.0,
            );
        }
        r.describe(
            "irf_deprecated_requests_total",
            MetricKind::Counter,
            "Requests served through deprecated unversioned route aliases.",
        );
        for endpoint in DEPRECATED_ENDPOINTS {
            r.counter_add(
                "irf_deprecated_requests_total",
                &[("endpoint", endpoint)],
                0.0,
            );
        }
        r.describe_histogram(
            "irf_http_request_seconds",
            "End-to-end request latency by endpoint.",
            LATENCY_BUCKETS,
        );
        r.describe(
            "irf_slo_breaches_total",
            MetricKind::Counter,
            "Requests that finished over their endpoint's latency objective.",
        );
        r.describe(
            "irf_slo_objective_seconds",
            MetricKind::Gauge,
            "Declared latency objective per endpoint.",
        );
        r.describe(
            "irf_pcg_iterations",
            MetricKind::Gauge,
            "PCG iterations of the most recent solve.",
        );
        r.describe(
            "irf_pcg_iterations_total",
            MetricKind::Counter,
            "Total PCG iterations across all solves.",
        );
        r.describe(
            "irf_amg_levels",
            MetricKind::Gauge,
            "AMG hierarchy levels of the most recent setup.",
        );
        r.describe(
            "irf_amg_operator_complexity",
            MetricKind::Gauge,
            "AMG operator complexity of the most recent setup.",
        );
    }

    /// Zero-initializes the per-endpoint SLO series so every endpoint
    /// is scrapeable (with zeroed buckets and breach counters) from
    /// the first `/metrics` render, and publishes each declared
    /// objective as a gauge.
    pub fn init_http(&self, policy: &SloPolicy) {
        let r = self.registry();
        for (endpoint, objective) in policy.endpoints() {
            let labels = [("endpoint", *endpoint)];
            r.touch_histogram("irf_http_request_seconds", &labels);
            r.counter_add("irf_slo_breaches_total", &labels, 0.0);
            r.gauge_set("irf_slo_objective_seconds", &labels, *objective);
        }
    }

    /// Records one finished request's end-to-end latency against its
    /// endpoint's SLO.
    pub fn observe_http(&self, endpoint: &'static str, seconds: f64, breached: bool) {
        let r = self.registry();
        let labels = [("endpoint", endpoint)];
        r.observe("irf_http_request_seconds", &labels, seconds);
        if breached {
            r.counter_inc("irf_slo_breaches_total", &labels);
        }
    }

    /// Counts one finished request.
    pub fn observe_request(&self, route: &str, status: u16) {
        self.registry().counter_add(
            "irf_requests_total",
            &[("route", route), ("status", &status.to_string())],
            1.0,
        );
    }

    /// Records one executed batch of `size` requests.
    pub fn observe_batch(&self, size: usize) {
        self.registry()
            .observe("irf_batch_size", &[], size.clamp(1, self.max_batch) as f64);
    }

    /// Counts one successful model reload.
    pub fn observe_reload(&self) {
        self.registry().counter_inc("irf_model_reloads_total", &[]);
    }

    /// Publishes the number of models loaded in the registry.
    pub fn set_registry_models(&self, count: usize) {
        self.registry()
            .gauge_set("irf_model_registry_models", &[], count as f64);
    }

    /// Counts one successful predict at `precision`.
    pub fn observe_predict_precision(&self, precision: PrecisionMode) {
        self.registry().counter_inc(
            "irf_predict_requests_total",
            &[("precision", precision.name())],
        );
    }

    /// Counts one request that arrived through a deprecated
    /// unversioned route alias.
    pub fn observe_deprecated(&self, endpoint: &'static str) {
        self.registry()
            .counter_inc("irf_deprecated_requests_total", &[("endpoint", endpoint)]);
    }

    /// Counts the candidate plans of one finished `/sweep`.
    pub fn observe_sweep_candidates(&self, count: usize) {
        self.registry()
            .counter_add("irf_sweep_candidates_total", &[], count as f64);
    }

    /// Counts one finished `/optimize` run's loop work.
    pub fn observe_optimize(&self, iterations: usize, evaluations: usize) {
        let r = self.registry();
        r.counter_add("irf_opt_iterations_total", &[], iterations as f64);
        r.counter_add("irf_opt_evaluations_total", &[], evaluations as f64);
    }

    /// Accumulates `seconds` of latency under a stage label
    /// (`parse`, `prepare`, `infer`, `forward`, ...).
    pub fn observe_stage(&self, stage: &'static str, seconds: f64) {
        let r = self.registry();
        r.counter_add("irf_stage_seconds_total", &[("stage", stage)], seconds);
        r.counter_add("irf_stage_requests_total", &[("stage", stage)], 1.0);
    }

    /// Renders the Prometheus text exposition, folding in the stage
    /// store's counters — both the aggregate `irf_cache_*` series and
    /// the per-stage `irf_stage_cache_events_total` breakdown that
    /// makes warm what-if reuse visible (assembled / solver-setup /
    /// structural hits climbing while rough / stack miss). Because
    /// every subsystem shares the registry, the output also carries
    /// solver telemetry published outside the server (PCG iterations,
    /// AMG hierarchy stats, per-stage solver seconds).
    #[must_use]
    pub fn render(&self, cache: &StageStore) -> String {
        let r = self.registry();
        r.counter_set("irf_cache_hits_total", &[], cache.hits() as f64);
        r.counter_set("irf_cache_misses_total", &[], cache.misses() as f64);
        r.counter_set(
            "irf_cache_singleflight_total",
            &[],
            cache.coalesced() as f64,
        );
        r.gauge_set("irf_cache_hit_rate", &[], cache.hit_rate());
        r.gauge_set("irf_cache_entries", &[], cache.len() as f64);
        for stage in Stage::ALL {
            let c = cache.stage_counters(stage);
            for (event, value) in [
                ("hit", c.hits),
                ("miss", c.misses),
                ("coalesced", c.coalesced),
                ("eviction", c.evictions),
            ] {
                r.counter_set(
                    "irf_stage_cache_events_total",
                    &[("stage", stage.label()), ("event", event)],
                    value as f64,
                );
            }
        }
        r.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn isolated(max_batch: usize) -> ServerMetrics {
        ServerMetrics::with_registry(Arc::new(MetricsRegistry::new()), max_batch)
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let m = isolated(4);
        m.observe_request("predict", 200);
        m.observe_request("predict", 200);
        m.observe_request("healthz", 200);
        m.observe_request("predict", 429);
        m.observe_batch(1);
        m.observe_batch(3);
        m.observe_stage("prepare", 0.5);
        m.observe_stage("prepare", 0.25);
        let cache = StageStore::new(4);
        assert!(cache.get(Stage::Stack, 1).is_none()); // one recorded miss
        let text = m.render(&cache);
        assert!(text.contains("irf_requests_total{route=\"predict\",status=\"200\"} 2"));
        assert!(text.contains("irf_stage_cache_events_total{stage=\"stack\",event=\"miss\"} 1"));
        assert!(
            text.contains("irf_stage_cache_events_total{stage=\"solver_setup\",event=\"hit\"} 0")
        );
        assert!(text.contains("irf_cache_misses_total 1"));
        assert!(text.contains("irf_requests_total{route=\"predict\",status=\"429\"} 1"));
        assert!(text.contains("irf_batch_size_bucket{le=\"1\"} 1"));
        assert!(text.contains("irf_batch_size_bucket{le=\"3\"} 2"));
        assert!(text.contains("irf_batch_size_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("irf_batch_size_sum 4"));
        assert!(text.contains("irf_stage_seconds_total{stage=\"prepare\"} 0.75"));
        assert!(text.contains("irf_stage_requests_total{stage=\"prepare\"} 2"));
        assert!(text.contains("irf_cache_hits_total 0"));
        assert!(text.contains("irf_cache_singleflight_total 0"));
        assert_eq!(text, m.render(&cache), "render must be stable");
    }

    #[test]
    fn reload_counter_starts_at_zero_and_increments() {
        let m = isolated(2);
        let cache = StageStore::new(1);
        assert!(m.render(&cache).contains("irf_model_reloads_total 0"));
        m.observe_reload();
        m.observe_reload();
        assert!(m.render(&cache).contains("irf_model_reloads_total 2"));
    }

    #[test]
    fn oversized_batches_clamp_into_the_last_bucket() {
        let m = isolated(2);
        m.observe_batch(9);
        let cache = StageStore::new(1);
        let text = m.render(&cache);
        assert!(text.contains("irf_batch_size_bucket{le=\"2\"} 1"));
        assert!(text.contains("irf_batch_size_sum 2"));
    }

    #[test]
    fn instance_registries_are_isolated() {
        let a = isolated(2);
        let b = isolated(2);
        a.observe_request("predict", 200);
        let cache = StageStore::new(1);
        assert!(a.render(&cache).contains("irf_requests_total"));
        assert!(!b.render(&cache).contains("route=\"predict\""));
    }

    #[test]
    fn http_slo_series_start_zeroed_and_accumulate() {
        let m = isolated(2);
        m.init_http(&SloPolicy::new());
        let cache = StageStore::new(1);
        let text = m.render(&cache);
        assert!(
            text.contains("irf_http_request_seconds_bucket{endpoint=\"predict\",le=\"+Inf\"} 0"),
            "every endpoint must be scrapeable before traffic"
        );
        assert!(text.contains("irf_slo_breaches_total{endpoint=\"predict\"} 0"));
        assert!(text.contains("irf_slo_breaches_total{endpoint=\"healthz\"} 0"));
        assert!(text.contains("irf_slo_objective_seconds{endpoint=\"predict\"} 0.5"));
        m.observe_http("predict", 0.3, false);
        m.observe_http("predict", 0.7, true);
        let text = m.render(&cache);
        assert!(text.contains("irf_http_request_seconds_count{endpoint=\"predict\"} 2"));
        assert!(text.contains("irf_slo_breaches_total{endpoint=\"predict\"} 1"));
    }

    #[test]
    fn new_series_start_zeroed_and_accumulate() {
        let m = isolated(2);
        let cache = StageStore::new(1);
        let text = m.render(&cache);
        assert!(text.contains("irf_model_registry_models 0"));
        assert!(text.contains("irf_predict_requests_total{precision=\"f32\"} 0"));
        assert!(text.contains("irf_predict_requests_total{precision=\"f16\"} 0"));
        assert!(text.contains("irf_predict_requests_total{precision=\"int8\"} 0"));
        assert!(text.contains("irf_deprecated_requests_total{endpoint=\"predict\"} 0"));
        assert!(text.contains("irf_deprecated_requests_total{endpoint=\"reload\"} 0"));
        m.set_registry_models(2);
        m.observe_predict_precision(PrecisionMode::Int8);
        m.observe_deprecated("predict");
        let text = m.render(&cache);
        assert!(text.contains("irf_model_registry_models 2"));
        assert!(text.contains("irf_predict_requests_total{precision=\"int8\"} 1"));
        assert!(text.contains("irf_deprecated_requests_total{endpoint=\"predict\"} 1"));
    }

    #[test]
    fn rendered_exposition_passes_promlint() {
        let m = isolated(4);
        m.init_http(&SloPolicy::new());
        m.observe_request("predict", 200);
        m.observe_request("healthz", 200);
        m.observe_batch(2);
        m.observe_stage("prepare", 0.5);
        m.observe_http("predict", 0.3, false);
        m.observe_http("optimize", 11.0, true);
        let cache = StageStore::new(4);
        assert!(cache.get(Stage::Stack, 1).is_none());
        let problems = irf_obs::promlint::lint(&m.render(&cache));
        assert!(problems.is_empty(), "promlint: {problems:?}");
    }

    #[test]
    fn global_facade_sees_solver_series() {
        // ServerMetrics::new publishes into the process-global
        // registry, which is where the sparse solver publishes its
        // telemetry — the families must at least be describable
        // side by side.
        let m = ServerMetrics::new(2);
        irf_trace::registry().gauge_set("irf_pcg_iterations", &[], 3.0);
        let cache = StageStore::new(1);
        let text = m.render(&cache);
        assert!(text.contains("irf_pcg_iterations 3"));
    }
}
