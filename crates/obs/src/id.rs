//! Request-id minting.
//!
//! A request id is the FNV-1a hash of `(connection id, per-connection
//! sequence)` — cheap, collision-resistant at serving scale, and
//! stable enough to grep for across the access log, the flight
//! recorder, and exported trace span `request` args. Ids are never
//! zero (`0` is `irf-trace`'s "no request" sentinel), and render as 16
//! lowercase hex digits everywhere a human sees them.

use std::fmt;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A minted request id. Never zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId(u64);

impl RequestId {
    /// Mints the id for request `seq` on connection `conn`.
    #[must_use]
    pub fn mint(conn: u64, seq: u64) -> RequestId {
        let mut h = FNV_OFFSET;
        for b in conn.to_le_bytes().into_iter().chain(seq.to_le_bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        // 0 means "no request" to irf-trace; remap the (astronomically
        // unlikely) zero hash instead of ever emitting it.
        RequestId(if h == 0 { FNV_OFFSET } else { h })
    }

    /// The raw id, as threaded through `irf_trace::request::scope`.
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Parses the 16-hex-digit form produced by `Display` (what
    /// clients read back from `X-Irf-Request-Id`).
    #[must_use]
    pub fn parse(s: &str) -> Option<RequestId> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16)
            .ok()
            .filter(|&v| v != 0)
            .map(RequestId)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Per-connection id source: each accepted connection constructs one
/// and mints an id per request it carries.
#[derive(Debug)]
pub struct RequestIdMinter {
    conn: u64,
    seq: u64,
}

impl RequestIdMinter {
    /// A minter for connection `conn` (the server's accept counter).
    #[must_use]
    pub fn new(conn: u64) -> RequestIdMinter {
        RequestIdMinter { conn, seq: 0 }
    }

    /// Mints the next request id on this connection.
    pub fn mint(&mut self) -> RequestId {
        let id = RequestId::mint(self.conn, self.seq);
        self.seq += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_across_conn_and_seq() {
        let mut seen = std::collections::HashSet::new();
        for conn in 0..64 {
            let mut minter = RequestIdMinter::new(conn);
            for _ in 0..64 {
                assert!(seen.insert(minter.mint().as_u64()));
            }
        }
        assert_eq!(seen.len(), 64 * 64);
        assert!(!seen.contains(&0));
    }

    #[test]
    fn display_parse_round_trip() {
        let id = RequestId::mint(7, 3);
        let s = id.to_string();
        assert_eq!(s.len(), 16);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(RequestId::parse(&s), Some(id));
        assert_eq!(RequestId::parse("xyz"), None);
        assert_eq!(RequestId::parse("0000000000000000"), None);
        assert_eq!(RequestId::parse(""), None);
    }

    #[test]
    fn minting_is_deterministic() {
        assert_eq!(RequestId::mint(5, 9), RequestId::mint(5, 9));
        assert_ne!(RequestId::mint(5, 9), RequestId::mint(9, 5));
    }
}
