//! A Prometheus text exposition format (version 0.0.4) linter.
//!
//! `/metrics` is hand-rendered in this stack, so nothing but tests
//! stands between a formatting bug and an unscrapeable endpoint. The
//! linter checks what a scraper would choke on: malformed names and
//! label sets, unparseable sample values, duplicate series, `# TYPE` /
//! `# HELP` placement, and histogram shape (cumulative buckets ending
//! in `+Inf`, `_sum`/`_count` present and consistent).

use std::collections::{BTreeMap, BTreeSet};

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// A parsed sample line.
#[derive(Debug)]
struct Sample {
    name: String,
    /// Sorted `label="value"` pairs (with `le` kept separate).
    labels: Vec<(String, String)>,
    le: Option<String>,
    value: f64,
    line_no: usize,
}

/// Splits `name{labels} value` and validates the pieces.
fn parse_sample(line: &str, line_no: usize, errors: &mut Vec<String>) -> Option<Sample> {
    let (series, value_str) = match line.find('}') {
        Some(close) => {
            let (series, rest) = line.split_at(close + 1);
            (series, rest.trim())
        }
        None => {
            let mut parts = line.splitn(2, ' ');
            (parts.next()?, parts.next().unwrap_or("").trim())
        }
    };
    let Ok(value) = value_str.parse::<f64>() else {
        errors.push(format!("line {line_no}: unparseable value {value_str:?}"));
        return None;
    };
    let (name, mut labels, mut le) = match series.find('{') {
        None => (series.to_string(), Vec::new(), None),
        Some(open) => {
            if !series.ends_with('}') {
                errors.push(format!("line {line_no}: unterminated label set"));
                return None;
            }
            let name = series[..open].to_string();
            let body = &series[open + 1..series.len() - 1];
            let mut labels = Vec::new();
            let mut le = None;
            let mut rest = body;
            while !rest.is_empty() {
                let Some(eq) = rest.find('=') else {
                    errors.push(format!("line {line_no}: label without '='"));
                    return None;
                };
                let key = rest[..eq].trim().to_string();
                let after = &rest[eq + 1..];
                if !after.starts_with('"') {
                    errors.push(format!("line {line_no}: unquoted label value"));
                    return None;
                }
                // Find the closing quote, honouring backslash escapes.
                let mut end = None;
                let mut escaped = false;
                for (i, c) in after.char_indices().skip(1) {
                    if escaped {
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '"' {
                        end = Some(i);
                        break;
                    }
                }
                let Some(end) = end else {
                    errors.push(format!("line {line_no}: unterminated label value"));
                    return None;
                };
                let value = after[1..end].to_string();
                if !valid_label_name(&key) {
                    errors.push(format!("line {line_no}: invalid label name {key:?}"));
                }
                if key == "le" {
                    le = Some(value);
                } else {
                    labels.push((key, value));
                }
                rest = after[end + 1..].trim_start_matches(',').trim_start();
            }
            (name, labels, le)
        }
    };
    if !valid_metric_name(&name) {
        errors.push(format!("line {line_no}: invalid metric name {name:?}"));
        return None;
    }
    labels.sort();
    // `le` on a non-bucket series is legal but, in this stack, always
    // a rendering bug; treat it as a plain label there.
    if le.is_some() && !name.ends_with("_bucket") {
        labels.push(("le".to_string(), le.take().unwrap_or_default()));
        labels.sort();
    }
    Some(Sample {
        name,
        labels,
        le,
        value,
        line_no,
    })
}

/// The family a suffixed series belongs to (`x_bucket` → `x` when a
/// histogram `x` was declared, etc.).
fn family_of<'a>(name: &'a str, histograms: &BTreeSet<String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if histograms.contains(stem) {
                return stem;
            }
        }
    }
    name
}

/// Lints `text`; returns every problem found (empty = clean).
#[must_use]
pub fn lint(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    let mut helped: BTreeSet<String> = BTreeSet::new();
    let mut histograms: BTreeSet<String> = BTreeSet::new();
    let mut seen_sample_of: BTreeSet<String> = BTreeSet::new();
    let mut samples: Vec<Sample> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.splitn(2, ' ');
            let name = parts.next().unwrap_or("").to_string();
            let kind = parts.next().unwrap_or("").trim().to_string();
            if !valid_metric_name(&name) {
                errors.push(format!("line {line_no}: TYPE for invalid name {name:?}"));
                continue;
            }
            if !matches!(
                kind.as_str(),
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                errors.push(format!("line {line_no}: unknown TYPE {kind:?}"));
            }
            if typed.insert(name.clone(), kind.clone()).is_some() {
                errors.push(format!("line {line_no}: duplicate TYPE for {name}"));
            }
            if seen_sample_of.contains(&name) {
                errors.push(format!("line {line_no}: TYPE for {name} after its samples"));
            }
            if kind == "histogram" {
                histograms.insert(name);
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or("").to_string();
            if !helped.insert(name.clone()) {
                errors.push(format!("line {line_no}: duplicate HELP for {name}"));
            }
            if seen_sample_of.contains(&name) {
                errors.push(format!("line {line_no}: HELP for {name} after its samples"));
            }
            continue;
        }
        if line.starts_with('#') {
            // Other comments are allowed and ignored.
            continue;
        }
        if let Some(sample) = parse_sample(line, line_no, &mut errors) {
            seen_sample_of.insert(family_of(&sample.name, &histograms).to_string());
            samples.push(sample);
        }
    }
    // Duplicate series.
    let mut seen_series: BTreeSet<String> = BTreeSet::new();
    for s in &samples {
        let key = format!("{}|{:?}|le={:?}", s.name, s.labels, s.le);
        if !seen_series.insert(key) {
            errors.push(format!(
                "line {}: duplicate series {}{:?}",
                s.line_no, s.name, s.labels
            ));
        }
    }
    // Histogram shape per (family, labelset).
    for family in &histograms {
        let mut groups: BTreeMap<Vec<(String, String)>, Vec<&Sample>> = BTreeMap::new();
        for s in &samples {
            if family_of(&s.name, &histograms) == family.as_str() {
                groups.entry(s.labels.clone()).or_default().push(s);
            }
        }
        if groups.is_empty() {
            continue;
        }
        for (labels, group) in groups {
            let buckets: Vec<&&Sample> = group
                .iter()
                .filter(|s| s.name == format!("{family}_bucket"))
                .collect();
            let sum = group.iter().find(|s| s.name == format!("{family}_sum"));
            let count = group.iter().find(|s| s.name == format!("{family}_count"));
            let ctx = format!("histogram {family}{labels:?}");
            if sum.is_none() {
                errors.push(format!("{ctx}: missing _sum"));
            }
            let Some(count) = count else {
                errors.push(format!("{ctx}: missing _count"));
                continue;
            };
            let Some(inf) = buckets.iter().find(|s| s.le.as_deref() == Some("+Inf")) else {
                errors.push(format!("{ctx}: missing le=\"+Inf\" bucket"));
                continue;
            };
            if (inf.value - count.value).abs() > f64::EPSILON {
                errors.push(format!(
                    "{ctx}: +Inf bucket {} != _count {}",
                    inf.value, count.value
                ));
            }
            // Finite bounds must ascend and counts must be cumulative.
            let mut finite: Vec<(f64, f64)> = buckets
                .iter()
                .filter_map(|s| {
                    let le = s.le.as_deref()?;
                    if le == "+Inf" {
                        return None;
                    }
                    match le.parse::<f64>() {
                        Ok(bound) => Some((bound, s.value)),
                        Err(_) => {
                            errors.push(format!("{ctx}: unparseable le {le:?}"));
                            None
                        }
                    }
                })
                .collect();
            finite.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in finite.windows(2) {
                if w[0].1 > w[1].1 {
                    errors.push(format!(
                        "{ctx}: bucket counts not cumulative at le={}",
                        w[1].0
                    ));
                }
            }
            if let Some(&(bound, v)) = finite.last() {
                if v > inf.value {
                    errors.push(format!(
                        "{ctx}: le={bound} count {v} exceeds +Inf {}",
                        inf.value
                    ));
                }
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_exposition_passes() {
        let text = "\
# HELP irf_requests_total Requests.
# TYPE irf_requests_total counter
irf_requests_total{route=\"predict\",status=\"200\"} 4
irf_requests_total{route=\"whatif\",status=\"200\"} 1
# HELP irf_http_request_seconds Latency.
# TYPE irf_http_request_seconds histogram
irf_http_request_seconds_bucket{endpoint=\"predict\",le=\"0.1\"} 3
irf_http_request_seconds_bucket{endpoint=\"predict\",le=\"0.5\"} 4
irf_http_request_seconds_bucket{endpoint=\"predict\",le=\"+Inf\"} 4
irf_http_request_seconds_sum{endpoint=\"predict\"} 0.4
irf_http_request_seconds_count{endpoint=\"predict\"} 4
irf_amg_levels 3
";
        assert_eq!(lint(text), Vec::<String>::new());
    }

    #[test]
    fn catches_duplicate_series_and_bad_values() {
        let errors = lint("irf_x_total 1\nirf_x_total 2\nirf_y_total nope\n");
        assert!(errors.iter().any(|e| e.contains("duplicate series")));
        assert!(errors.iter().any(|e| e.contains("unparseable value")));
    }

    #[test]
    fn catches_invalid_names() {
        let errors = lint("9bad_name 1\nok_name{9bad=\"v\"} 1\n");
        assert!(errors.iter().any(|e| e.contains("invalid metric name")));
        assert!(errors.iter().any(|e| e.contains("invalid label name")));
    }

    #[test]
    fn catches_histogram_shape_problems() {
        let text = "\
# TYPE irf_h histogram
irf_h_bucket{le=\"0.1\"} 5
irf_h_bucket{le=\"0.5\"} 3
irf_h_bucket{le=\"+Inf\"} 6
irf_h_sum 1.0
irf_h_count 7
";
        let errors = lint(text);
        assert!(errors.iter().any(|e| e.contains("not cumulative")));
        assert!(errors
            .iter()
            .any(|e| e.contains("+Inf bucket 6 != _count 7")));
    }

    #[test]
    fn catches_missing_inf_and_count() {
        let text = "\
# TYPE irf_h histogram
irf_h_bucket{le=\"0.1\"} 1
irf_h_sum 0.05
";
        let errors = lint(text);
        assert!(errors.iter().any(|e| e.contains("missing _count")));
    }

    #[test]
    fn catches_type_after_samples() {
        let text = "irf_z_total 1\n# TYPE irf_z_total counter\n";
        let errors = lint(text);
        assert!(errors.iter().any(|e| e.contains("after its samples")));
    }

    #[test]
    fn escaped_quotes_in_label_values_parse() {
        let text = "irf_q_total{route=\"a\\\"b\\\\c\"} 1\n";
        assert_eq!(lint(text), Vec::<String>::new());
    }
}
