//! Structured logging on `std` alone.
//!
//! One record per call, rendered as a single line and written to
//! stderr with one `write_all` (so concurrent threads never interleave
//! mid-line). Two formats:
//!
//! * `json` — one JSON object per line (`{"ts":…,"level":"info",
//!   "event":"access",…}`), the default when stderr is not a TTY so
//!   collectors can ingest it directly.
//! * `pretty` — `2026-08-08T02:11:22.123Z INFO  access key=value …`,
//!   the default on interactive terminals.
//!
//! The active level comes from `IRF_LOG`
//! (`off|error|warn|info|debug|trace`, default `info`) and the format
//! from `IRF_LOG_FORMAT` (`pretty|json`); both can be overridden
//! programmatically via [`configure`] (the `irf-serve` CLI flags).
//!
//! # Cost model
//!
//! A call below the active level is one relaxed atomic load and a
//! compare — no formatting, no allocation, no lock. Callers that must
//! *compute* a field value should gate on [`enabled`] first; the
//! `&[(&str, Value)]` field slice itself lives on the caller's stack.

use std::fmt::Write as _;
use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most to least severe. `Off` is only meaningful as a
/// filter level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing is logged.
    Off = 0,
    /// The process is in trouble (bind failures, checkpoint errors).
    Error = 1,
    /// Something degraded but handled (queue shedding, fallbacks).
    Warn = 2,
    /// One line per notable unit of work (the access log lives here).
    Info = 3,
    /// Per-subsystem detail (batch composition, cache churn).
    Debug = 4,
    /// Everything.
    Trace = 5,
}

impl Level {
    /// Parses `off|error|warn|info|debug|trace` (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "none" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

/// Output format for rendered records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// One JSON object per line.
    Json,
    /// Human-readable single line.
    Pretty,
}

impl Format {
    /// Parses `json|pretty` (case-insensitive).
    #[must_use]
    pub fn parse(s: &str) -> Option<Format> {
        match s.to_ascii_lowercase().as_str() {
            "json" => Some(Format::Json),
            "pretty" | "text" => Some(Format::Pretty),
            _ => None,
        }
    }
}

/// A field value. Borrowed strings keep record emission
/// allocation-free for callers that already hold the text.
#[derive(Debug, Clone, Copy)]
pub enum Value<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values render as JSON `null`).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(&'a str),
}

impl<'a> From<u64> for Value<'a> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl<'a> From<usize> for Value<'a> {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl<'a> From<i64> for Value<'a> {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl<'a> From<f64> for Value<'a> {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl<'a> From<bool> for Value<'a> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}

const LEVEL_UNSET: u8 = u8::MAX;

/// Active filter level; `LEVEL_UNSET` until first use or
/// [`configure`].
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

struct SinkState {
    format: Option<Format>,
    /// Test/bench override; `None` writes to stderr.
    writer: Option<Box<dyn Write + Send>>,
}

fn sink() -> &'static Mutex<SinkState> {
    static SINK: std::sync::OnceLock<Mutex<SinkState>> = std::sync::OnceLock::new();
    SINK.get_or_init(|| {
        Mutex::new(SinkState {
            format: None,
            writer: None,
        })
    })
}

fn init_level_from_env() -> u8 {
    let level = std::env::var("IRF_LOG")
        .ok()
        .and_then(|s| Level::parse(&s))
        .unwrap_or(Level::Info) as u8;
    // First writer wins if configure() raced us; either value is a
    // coherent choice.
    let _ = LEVEL.compare_exchange(LEVEL_UNSET, level, Ordering::Relaxed, Ordering::Relaxed);
    LEVEL.load(Ordering::Relaxed)
}

fn env_format() -> Format {
    std::env::var("IRF_LOG_FORMAT")
        .ok()
        .and_then(|s| Format::parse(&s))
        .unwrap_or_else(|| {
            if std::io::stderr().is_terminal() {
                Format::Pretty
            } else {
                Format::Json
            }
        })
}

/// Overrides the env-derived level and/or format (CLI flags). Fields
/// left `None` keep their env/default resolution.
pub fn configure(level: Option<Level>, format: Option<Format>) {
    if let Some(level) = level {
        LEVEL.store(level as u8, Ordering::Relaxed);
    }
    if let Some(format) = format {
        sink().lock().expect("log sink poisoned").format = Some(format);
    }
}

/// Redirects output (tests and the overhead bench). `None` restores
/// stderr.
pub fn set_writer(writer: Option<Box<dyn Write + Send>>) {
    sink().lock().expect("log sink poisoned").writer = writer;
}

/// `true` when a record at `level` would be written. Gate expensive
/// field construction on this.
#[must_use]
pub fn enabled(level: Level) -> bool {
    let mut active = LEVEL.load(Ordering::Relaxed);
    if active == LEVEL_UNSET {
        active = init_level_from_env();
    }
    (level as u8) <= active
}

fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn render_value_json(out: &mut String, value: &Value<'_>) {
    match value {
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::Bool(v) => {
            let _ = write!(out, "{v}");
        }
        Value::Str(s) => {
            out.push('"');
            escape_json(out, s);
            out.push('"');
        }
    }
}

/// Renders `unix_ms` as `YYYY-MM-DDTHH:MM:SS.mmmZ` (proleptic
/// Gregorian, the civil-from-days construction).
fn render_timestamp(out: &mut String, unix_ms: u64) {
    let secs = unix_ms / 1000;
    let ms = unix_ms % 1000;
    let days = (secs / 86_400) as i64;
    let tod = secs % 86_400;
    let (h, m, s) = (tod / 3600, (tod / 60) % 60, tod % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    let _ = write!(
        out,
        "{year:04}-{month:02}-{day:02}T{h:02}:{m:02}:{s:02}.{ms:03}Z"
    );
}

fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Renders one record in `format` without writing it (used by the
/// overhead bench to price formatting alone).
#[must_use]
pub fn render(format: Format, level: Level, event: &str, fields: &[(&str, Value<'_>)]) -> String {
    render_at(format, unix_ms_now(), level, event, fields)
}

fn render_at(
    format: Format,
    unix_ms: u64,
    level: Level,
    event: &str,
    fields: &[(&str, Value<'_>)],
) -> String {
    let mut out = String::with_capacity(96 + fields.len() * 24);
    match format {
        Format::Json => {
            out.push_str("{\"ts\":\"");
            render_timestamp(&mut out, unix_ms);
            let _ = write!(out, "\",\"level\":\"{}\",\"event\":\"", level.as_str());
            escape_json(&mut out, event);
            out.push('"');
            for (key, value) in fields {
                out.push_str(",\"");
                escape_json(&mut out, key);
                out.push_str("\":");
                render_value_json(&mut out, value);
            }
            out.push_str("}\n");
        }
        Format::Pretty => {
            render_timestamp(&mut out, unix_ms);
            let _ = write!(out, " {:5} {event}", level.as_str().to_ascii_uppercase());
            for (key, value) in fields {
                let _ = write!(out, " {key}=");
                match value {
                    Value::Str(s) if s.contains(' ') => {
                        let _ = write!(out, "{s:?}");
                    }
                    Value::Str(s) => out.push_str(s),
                    other => render_value_json(&mut out, other),
                }
            }
            out.push('\n');
        }
    }
    out
}

/// Writes one record (a no-op below the active level).
pub fn emit(level: Level, event: &str, fields: &[(&str, Value<'_>)]) {
    if !enabled(level) {
        return;
    }
    let mut sink = sink().lock().expect("log sink poisoned");
    let format = sink.format.unwrap_or_else(env_format);
    let line = render_at(format, unix_ms_now(), level, event, fields);
    match &mut sink.writer {
        Some(w) => {
            let _ = w.write_all(line.as_bytes());
            let _ = w.flush();
        }
        None => {
            let _ = std::io::stderr().write_all(line.as_bytes());
        }
    }
}

/// Emits at [`Level::Error`].
pub fn error(event: &str, fields: &[(&str, Value<'_>)]) {
    emit(Level::Error, event, fields);
}

/// Emits at [`Level::Warn`].
pub fn warn(event: &str, fields: &[(&str, Value<'_>)]) {
    emit(Level::Warn, event, fields);
}

/// Emits at [`Level::Info`].
pub fn info(event: &str, fields: &[(&str, Value<'_>)]) {
    emit(Level::Info, event, fields);
}

/// Emits at [`Level::Debug`].
pub fn debug(event: &str, fields: &[(&str, Value<'_>)]) {
    emit(Level::Debug, event, fields);
}

/// Emits at [`Level::Trace`].
pub fn trace(event: &str, fields: &[(&str, Value<'_>)]) {
    emit(Level::Trace, event, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_and_format_parse() {
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("bogus"), None);
        assert_eq!(Format::parse("json"), Some(Format::Json));
        assert_eq!(Format::parse("Pretty"), Some(Format::Pretty));
        assert_eq!(Format::parse(""), None);
        assert!(Level::Error < Level::Trace);
    }

    #[test]
    fn json_records_are_single_escaped_lines() {
        let line = render_at(
            Format::Json,
            1_754_618_400_123, // 2025-08-08T02:00:00.123Z
            Level::Info,
            "access",
            &[
                ("endpoint", Value::Str("predict")),
                ("status", Value::U64(200)),
                ("duration_seconds", Value::F64(0.25)),
                ("cached", Value::Bool(true)),
                ("note", Value::Str("a \"quoted\"\nthing")),
                ("nan", Value::F64(f64::NAN)),
            ],
        );
        assert!(line.ends_with('\n'));
        assert_eq!(line.matches('\n').count(), 1);
        assert!(line.contains("\"ts\":\"2025-08-08T02:00:00.123Z\""));
        assert!(line.contains("\"level\":\"info\""));
        assert!(line.contains("\"event\":\"access\""));
        assert!(line.contains("\"endpoint\":\"predict\""));
        assert!(line.contains("\"status\":200"));
        assert!(line.contains("\"duration_seconds\":0.25"));
        assert!(line.contains("\"cached\":true"));
        assert!(line.contains("\\\"quoted\\\"\\n"));
        assert!(line.contains("\"nan\":null"));
    }

    #[test]
    fn pretty_records_read_as_key_value_pairs() {
        let line = render_at(
            Format::Pretty,
            0,
            Level::Warn,
            "queue_full",
            &[("depth", Value::U64(64)), ("msg", Value::Str("shed load"))],
        );
        assert!(line.starts_with("1970-01-01T00:00:00.000Z WARN  queue_full"));
        assert!(line.contains(" depth=64"));
        assert!(line.contains(" msg=\"shed load\""));
    }

    #[test]
    fn timestamps_cover_month_boundaries() {
        let mut out = String::new();
        render_timestamp(&mut out, 0);
        assert_eq!(out, "1970-01-01T00:00:00.000Z");
        out.clear();
        // 2024-02-29T23:59:59.999Z (leap day).
        render_timestamp(&mut out, 1_709_251_199_999);
        assert_eq!(out, "2024-02-29T23:59:59.999Z");
        out.clear();
        // 2026-12-31T00:00:00.000Z.
        render_timestamp(&mut out, 1_798_675_200_000);
        assert_eq!(out, "2026-12-31T00:00:00.000Z");
    }

    #[test]
    fn disabled_levels_do_not_reach_the_writer() {
        struct Probe(std::sync::Arc<std::sync::atomic::AtomicUsize>);
        impl Write for Probe {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.fetch_add(buf.len(), Ordering::Relaxed);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let written = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        configure(Some(Level::Warn), Some(Format::Json));
        set_writer(Some(Box::new(Probe(written.clone()))));
        info("suppressed", &[]);
        debug("suppressed", &[]);
        assert_eq!(written.load(Ordering::Relaxed), 0);
        warn("emitted", &[("k", Value::U64(1))]);
        assert!(written.load(Ordering::Relaxed) > 0);
        set_writer(None);
        configure(Some(Level::Info), None);
    }
}
