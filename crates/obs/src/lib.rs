//! `irf-obs`: the request-scoped observability layer of the IR-Fusion
//! serving stack, built on top of `irf-trace`.
//!
//! Where `irf-trace` answers "what did the *process* do" (spans,
//! solver telemetry, a metrics registry), this crate answers "what did
//! *request* `3f9a…` do" — the unit operators actually debug:
//!
//! * [`id`] — [`RequestId`](id::RequestId) minting: FNV-1a of
//!   connection id + a monotonic per-connection sequence, echoed to
//!   clients as the `X-Irf-Request-Id` response header.
//! * [`log`] — a std-only structured logger: JSON lines (or
//!   human-readable `pretty` lines when stderr is a TTY) to stderr,
//!   level-filtered via `IRF_LOG`, zero allocation on the disabled
//!   path.
//! * [`recorder`] — the always-on flight recorder: a fixed-capacity
//!   ring of completed [`RequestRecord`](recorder::RequestRecord)s,
//!   with full span trees snapshotted for requests slower than a
//!   threshold, served under `GET /debug/requests`.
//! * [`slo`] — declared per-endpoint latency objectives driving the
//!   `irf_http_request_seconds` histograms and
//!   `irf_slo_breaches_total` burn-rate counters on `/metrics`.
//! * [`promlint`] — a Prometheus text-format (0.0.4) linter used by
//!   the metrics tests to keep `/metrics` parseable.
//!
//! Everything here *observes*: none of it changes what the pipeline
//! computes, and the combined logging + recorder overhead is held to
//! the same < 2 % budget as tracing (measured by the `trace_overhead`
//! bench).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod id;
pub mod log;
pub mod promlint;
pub mod recorder;
pub mod slo;

pub use id::{RequestId, RequestIdMinter};
pub use log::{debug, error, info, trace, warn, Level, Value};
pub use recorder::{FlightRecorder, RequestRecord, SpanNode};
pub use slo::SloPolicy;
