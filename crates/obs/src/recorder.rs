//! The flight recorder: a fixed-capacity ring of completed request
//! records, always on.
//!
//! Every finished HTTP request lands one [`RequestRecord`] here —
//! timings, batch placement, per-request stage-cache and solver
//! counts — and requests slower than the server's slow-request
//! threshold additionally snapshot their full span tree. The server
//! dumps the ring via `GET /debug/requests` (most recent first) and
//! `GET /debug/requests/{id}`, so the last N requests are inspectable
//! after the fact without any log scraping.
//!
//! Capacity is fixed at construction: slot assignment is one
//! `fetch_add`, each slot holds an `Arc<RequestRecord>` behind its own
//! (uncontended) mutex, and record N+capacity overwrites record N —
//! memory is bounded no matter the traffic.

use irf_trace::request::RequestStats;
use irf_trace::{AttrValue, Trace};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One completed request, as retained by the recorder.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// The minted request id (see [`crate::id::RequestId`]).
    pub id: u64,
    /// Completion sequence number (process-wide, assigned by
    /// [`FlightRecorder::record`]; newer is larger).
    pub seq: u64,
    /// Endpoint label (the `/metrics` route label: `predict`,
    /// `whatif`, ...).
    pub endpoint: &'static str,
    /// HTTP status returned.
    pub status: u16,
    /// Wall-clock start, milliseconds since the Unix epoch.
    pub start_unix_ms: u64,
    /// End-to-end handling time in seconds.
    pub duration_seconds: f64,
    /// Time the request's inference job waited in the batch queue
    /// (0 when the request never reached the batcher).
    pub queue_seconds: f64,
    /// Size of the forward-pass batch the request rode in (0 when it
    /// never reached the batcher).
    pub batch_size: u64,
    /// Per-request stage-cache and solver counts accumulated while the
    /// request was being served.
    pub stats: RequestStats,
    /// The endpoint's declared latency objective in seconds.
    pub slo_objective_seconds: f64,
    /// `true` when `duration_seconds` exceeded the objective.
    pub slo_breached: bool,
    /// Full span tree, snapshotted only for slow requests (the ring
    /// stays small for healthy traffic).
    pub spans: Option<Vec<SpanNode>>,
}

/// One span in a snapshotted tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name.
    pub name: &'static str,
    /// Recording thread id.
    pub tid: u64,
    /// Start offset from collector installation, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Attributes, rendered to text.
    pub args: Vec<(&'static str, String)>,
    /// Child spans.
    pub children: Vec<SpanNode>,
}

fn render_attr(value: &AttrValue) -> String {
    match value {
        AttrValue::U64(v) => v.to_string(),
        AttrValue::F64(v) => v.to_string(),
        AttrValue::Bool(v) => v.to_string(),
        AttrValue::Str(s) => s.clone(),
        AttrValue::F64List(values) => {
            let mut out = String::from("[");
            for (i, v) in values.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push(']');
            out
        }
    }
}

/// Builds the span tree of the events tagged with `request` in
/// `trace`. Events keep their recorded order; parent/child structure
/// follows each thread's depth stack (the trace is sorted with parents
/// before children at equal starts).
#[must_use]
pub fn span_tree(trace: &Trace, request: u64) -> Vec<SpanNode> {
    let mut arena: Vec<SpanNode> = Vec::new();
    // Per-event parent arena index (or usize::MAX for roots).
    let mut parents: Vec<usize> = Vec::new();
    // One open-span stack per thread: (depth, arena index).
    let mut stacks: Vec<(u64, Vec<(u32, usize)>)> = Vec::new();
    for event in trace.events.iter().filter(|e| e.request == request) {
        let stack = match stacks.iter_mut().find(|(tid, _)| *tid == event.tid) {
            Some((_, stack)) => stack,
            None => {
                stacks.push((event.tid, Vec::new()));
                &mut stacks.last_mut().expect("just pushed").1
            }
        };
        while stack.last().is_some_and(|&(depth, _)| depth >= event.depth) {
            stack.pop();
        }
        let parent = stack.last().map_or(usize::MAX, |&(_, idx)| idx);
        let idx = arena.len();
        arena.push(SpanNode {
            name: event.name,
            tid: event.tid,
            start_ns: event.start_ns,
            dur_ns: event.dur_ns,
            args: event
                .args
                .iter()
                .map(|(k, v)| (*k, render_attr(v)))
                .collect(),
            children: Vec::new(),
        });
        parents.push(parent);
        stack.push((event.depth, idx));
    }
    // Materialize children bottom-up: walking in reverse arena order
    // guarantees a node's children are complete before it moves into
    // its own parent.
    let mut roots = Vec::new();
    for idx in (0..arena.len()).rev() {
        let mut node = std::mem::replace(
            &mut arena[idx],
            SpanNode {
                name: "",
                tid: 0,
                start_ns: 0,
                dur_ns: 0,
                args: Vec::new(),
                children: Vec::new(),
            },
        );
        node.children.reverse();
        if parents[idx] == usize::MAX {
            roots.push(node);
        } else {
            arena[parents[idx]].children.push(node);
        }
    }
    roots.reverse();
    roots
}

/// The fixed-capacity ring of completed requests.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<Arc<RequestRecord>>>>,
    next: AtomicU64,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` requests
    /// (`capacity >= 1` enforced).
    #[must_use]
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Stores `record` (stamping its completion sequence), evicting
    /// the oldest entry once full.
    pub fn record(&self, mut record: RequestRecord) -> Arc<RequestRecord> {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        record.seq = seq;
        let record = Arc::new(record);
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().expect("recorder slot poisoned") = Some(record.clone());
        record
    }

    /// Every retained record, most recent first.
    #[must_use]
    pub fn recent(&self) -> Vec<Arc<RequestRecord>> {
        let mut records: Vec<Arc<RequestRecord>> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().expect("recorder slot poisoned").clone())
            .collect();
        records.sort_by_key(|r| std::cmp::Reverse(r.seq));
        records
    }

    /// The most recent retained record for request `id`, if still in
    /// the ring.
    #[must_use]
    pub fn find(&self, id: u64) -> Option<Arc<RequestRecord>> {
        self.recent().into_iter().find(|r| r.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_trace::Event;

    fn record(id: u64) -> RequestRecord {
        RequestRecord {
            id,
            seq: 0,
            endpoint: "predict",
            status: 200,
            start_unix_ms: 0,
            duration_seconds: 0.01,
            queue_seconds: 0.0,
            batch_size: 1,
            stats: RequestStats::default(),
            slo_objective_seconds: 0.5,
            slo_breached: false,
            spans: None,
        }
    }

    #[test]
    fn ring_retains_most_recent_within_capacity() {
        let recorder = FlightRecorder::new(4);
        for id in 1..=10u64 {
            recorder.record(record(id));
        }
        let recent = recorder.recent();
        assert_eq!(recent.len(), 4);
        let ids: Vec<u64> = recent.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![10, 9, 8, 7]);
        assert!(recorder.find(10).is_some());
        assert!(recorder.find(6).is_none(), "evicted");
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let recorder = FlightRecorder::new(0);
        assert_eq!(recorder.capacity(), 1);
        recorder.record(record(1));
        recorder.record(record(2));
        assert_eq!(recorder.recent().len(), 1);
        assert_eq!(recorder.recent()[0].id, 2);
    }

    #[test]
    fn concurrent_records_stay_within_capacity() {
        let recorder = Arc::new(FlightRecorder::new(8));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let recorder = recorder.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    recorder.record(record(t * 1000 + i));
                }
            }));
        }
        for h in handles {
            h.join().expect("recorder thread");
        }
        let recent = recorder.recent();
        assert_eq!(recent.len(), 8);
        // Sequences are unique and the retained ones are the last 8.
        let seqs: Vec<u64> = recent.iter().map(|r| r.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] > w[1]));
        assert_eq!(seqs[0], 399);
        assert_eq!(seqs[7], 392);
    }

    fn event(
        name: &'static str,
        tid: u64,
        depth: u32,
        start_ns: u64,
        dur_ns: u64,
        request: u64,
    ) -> Event {
        Event {
            name,
            tid,
            depth,
            start_ns,
            dur_ns,
            request,
            args: Vec::new(),
        }
    }

    #[test]
    fn span_tree_filters_and_nests() {
        let trace = Trace {
            events: vec![
                event("other_request", 0, 0, 0, 50, 99),
                event("whatif", 0, 0, 10, 1_000, 7),
                event("prepare", 0, 1, 20, 400, 7),
                event("stage_cache", 0, 2, 30, 100, 7),
                event("solve", 0, 1, 500, 300, 7),
                // Same request on a second (batcher) thread.
                event("forward", 1, 0, 600, 200, 7),
                // Untagged background noise.
                event("untagged", 2, 0, 0, 10, 0),
            ],
            thread_labels: Vec::new(),
        };
        let roots = span_tree(&trace, 7);
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].name, "whatif");
        assert_eq!(roots[0].children.len(), 2);
        assert_eq!(roots[0].children[0].name, "prepare");
        assert_eq!(roots[0].children[0].children[0].name, "stage_cache");
        assert_eq!(roots[0].children[1].name, "solve");
        assert_eq!(roots[1].name, "forward");
        assert_eq!(roots[1].tid, 1);
    }

    #[test]
    fn span_tree_handles_sibling_spans_at_equal_depth() {
        let trace = Trace {
            events: vec![
                event("root", 0, 0, 0, 1_000, 1),
                event("a", 0, 1, 10, 100, 1),
                event("b", 0, 1, 200, 100, 1),
                event("b_child", 0, 2, 210, 50, 1),
            ],
            thread_labels: Vec::new(),
        };
        let roots = span_tree(&trace, 1);
        assert_eq!(roots.len(), 1);
        let root = &roots[0];
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "a");
        assert!(root.children[0].children.is_empty());
        assert_eq!(root.children[1].children[0].name, "b_child");
    }

    #[test]
    fn span_tree_renders_attrs() {
        let mut e = event("pcg_solve", 0, 0, 0, 100, 3);
        e.args = vec![
            ("iterations", AttrValue::U64(2)),
            ("history", AttrValue::F64List(vec![1.0, 0.25])),
        ];
        let trace = Trace {
            events: vec![e],
            thread_labels: Vec::new(),
        };
        let roots = span_tree(&trace, 3);
        assert_eq!(roots[0].args[0], ("iterations", "2".to_string()));
        assert_eq!(roots[0].args[1], ("history", "[1,0.25]".to_string()));
    }
}
