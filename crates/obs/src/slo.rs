//! Declared per-endpoint latency objectives.
//!
//! Each serving endpoint carries one objective — "a request should
//! finish within N seconds" — and the server turns that into SLO
//! accounting on `/metrics`: every request lands in the
//! `irf_http_request_seconds{endpoint=...}` histogram, and requests
//! over their objective bump
//! `irf_slo_breaches_total{endpoint=...}`. Burn rate is then a PromQL
//! one-liner: `rate(irf_slo_breaches_total[5m]) /
//! rate(irf_http_request_seconds_count[5m])`.
//!
//! Defaults reflect each endpoint's work (a `/healthz` probe has no
//! business taking 10 ms; an `/optimize` beam search legitimately
//! takes seconds) and can be overridden per endpoint with
//! `IRF_SLO_MS_<ENDPOINT>` (e.g. `IRF_SLO_MS_PREDICT=250`).

/// Every endpoint label the server reports, with its default
/// objective in seconds. `other` (unknown routes) gets the probe
/// budget — a 404 should be instant.
pub const ENDPOINTS: &[(&str, f64)] = &[
    ("healthz", 0.010),
    ("metrics", 0.050),
    ("trace", 0.100),
    ("debug", 0.050),
    ("predict", 0.500),
    ("whatif", 0.500),
    ("sweep", 2.000),
    ("optimize", 10.000),
    ("reload", 1.000),
    ("models", 0.050),
    ("shutdown", 0.050),
    ("other", 0.010),
];

/// Latency histogram bucket bounds (seconds) shared by every
/// `irf_http_request_seconds` series: log-spaced from 1 ms to 30 s so
/// both a `/healthz` probe and an `/optimize` run resolve.
pub const LATENCY_BUCKETS: &[f64] = &[
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
];

/// The per-endpoint objectives in force.
#[derive(Debug, Clone)]
pub struct SloPolicy {
    objectives: Vec<(&'static str, f64)>,
}

impl SloPolicy {
    /// The built-in defaults from [`ENDPOINTS`].
    #[must_use]
    pub fn new() -> SloPolicy {
        SloPolicy {
            objectives: ENDPOINTS.to_vec(),
        }
    }

    /// Defaults with `IRF_SLO_MS_<ENDPOINT>` environment overrides
    /// applied (values in milliseconds; unparseable or non-positive
    /// values are ignored).
    #[must_use]
    pub fn from_env() -> SloPolicy {
        let mut policy = SloPolicy::new();
        for (endpoint, objective) in &mut policy.objectives {
            let var = format!("IRF_SLO_MS_{}", endpoint.to_ascii_uppercase());
            if let Some(ms) = std::env::var(var).ok().and_then(|s| s.parse::<f64>().ok()) {
                if ms.is_finite() && ms > 0.0 {
                    *objective = ms / 1000.0;
                }
            }
        }
        policy
    }

    /// The objective for `endpoint` in seconds (unknown endpoints get
    /// the `other` objective).
    #[must_use]
    pub fn objective_seconds(&self, endpoint: &str) -> f64 {
        self.objectives
            .iter()
            .find(|(e, _)| *e == endpoint)
            .or_else(|| self.objectives.iter().find(|(e, _)| *e == "other"))
            .map_or(1.0, |(_, o)| *o)
    }

    /// Every `(endpoint, objective_seconds)` pair, for zero-init and
    /// docs.
    #[must_use]
    pub fn endpoints(&self) -> &[(&'static str, f64)] {
        &self.objectives
    }
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_cover_every_endpoint() {
        let policy = SloPolicy::new();
        assert_eq!(policy.objective_seconds("predict"), 0.5);
        assert_eq!(policy.objective_seconds("optimize"), 10.0);
        // Unknown endpoints fall back to the `other` objective.
        assert_eq!(
            policy.objective_seconds("nonexistent"),
            policy.objective_seconds("other")
        );
    }

    #[test]
    fn buckets_are_strictly_ascending() {
        assert!(LATENCY_BUCKETS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn env_override_applies() {
        // Process-wide env mutation: keep it scoped to a var no other
        // test reads, and restore after.
        std::env::set_var("IRF_SLO_MS_PREDICT", "250");
        std::env::set_var("IRF_SLO_MS_SWEEP", "garbage");
        let policy = SloPolicy::from_env();
        std::env::remove_var("IRF_SLO_MS_PREDICT");
        std::env::remove_var("IRF_SLO_MS_SWEEP");
        assert_eq!(policy.objective_seconds("predict"), 0.25);
        assert_eq!(policy.objective_seconds("sweep"), 2.0, "bad value ignored");
    }
}
