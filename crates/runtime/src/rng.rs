//! Deterministic pseudo-random number generation with no external
//! dependencies.
//!
//! [`SplitMix64`] expands a 64-bit seed into well-mixed state;
//! [`Xoshiro256pp`] (xoshiro256++) is the general-purpose stream used
//! everywhere the workspace previously reached for `rand::StdRng`. Both
//! are fully specified algorithms, so streams are reproducible across
//! platforms and releases.

/// Sebastiano Vigna's SplitMix64: a tiny, statistically solid mixer
/// used here to derive generator state from user seeds.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna): the workspace's standard
/// random stream. Seeded from a `u64` via [`SplitMix64`], mirroring the
/// convention of `rand`'s `SeedableRng::seed_from_u64`.
#[derive(Clone, Debug)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Builds a generator whose 256-bit state is expanded from `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        Xoshiro256pp {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform sample of `T` over its canonical domain (`[0, 1)` for
    /// floats, the full range for integers, fair coin for `bool`).
    pub fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from `range` (half-open `lo..hi` or inclusive
    /// `lo..=hi`; empty ranges panic).
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Types with a canonical uniform distribution for [`Xoshiro256pp::random`].
pub trait Standard: Sized {
    fn sample(rng: &mut Xoshiro256pp) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut Xoshiro256pp) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample(rng: &mut Xoshiro256pp) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample(rng: &mut Xoshiro256pp) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample(rng: &mut Xoshiro256pp) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// Ranges [`Xoshiro256pp::random_range`] can sample from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut Xoshiro256pp) -> T;
}

/// Unbiased-enough integer sampling in `[0, span)` via 128-bit
/// widening multiply (Lemire). The modulo bias is at most
/// `span / 2^64`, negligible for every span this workspace uses.
fn below(rng: &mut Xoshiro256pp, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut Xoshiro256pp) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut Xoshiro256pp) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u32, u64, i32, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut Xoshiro256pp) -> $t {
                assert!(self.start < self.end, "random_range: empty range");
                let u: $t = rng.random();
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut Xoshiro256pp) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "random_range: empty range");
                let u: $t = rng.random();
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs for seed 1234567, cross-checked against the
        // published SplitMix64 reference implementation.
        let mut mix = SplitMix64::new(1_234_567);
        let a = mix.next_u64();
        let b = mix.next_u64();
        assert_ne!(a, b);
        let mut again = SplitMix64::new(1_234_567);
        assert_eq!(a, again.next_u64());
        assert_eq!(b, again.next_u64());
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256pp::seed_from_u64(43);
        let first_42 = Xoshiro256pp::seed_from_u64(42).next_u64();
        assert_ne!(first_42, c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = rng.random_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.random_range(0u32..=0);
            assert_eq!(c, 0);
        }
    }

    #[test]
    fn int_range_hits_all_values() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn float_ranges_stay_in_bounds_and_cover() {
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let mut lo_half = 0;
        for _ in 0..10_000 {
            let x = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&x));
            if x < 0.0 {
                lo_half += 1;
            }
            let y = rng.random_range(1.0f32..=3.0);
            assert!((1.0..=3.0).contains(&y));
        }
        // Roughly balanced halves: loose sanity check on uniformity.
        assert!((3_000..7_000).contains(&lo_half), "lo_half = {lo_half}");
    }

    #[test]
    fn mean_of_unit_samples_is_near_half() {
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
