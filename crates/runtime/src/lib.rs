//! The IR-Fusion execution runtime: a dependency-free parallel
//! substrate shared by every hot path in the workspace.
//!
//! Two things live here:
//!
//! * [`pool`] — a scoped thread pool built on `std::thread` + channels,
//!   exposing deterministic data-parallel primitives
//!   ([`par_for`], [`par_chunks_mut`], [`par_reduce`], [`par_map`]).
//!   Results are **bitwise identical** at any thread count: work is
//!   partitioned by fixed rules that do not depend on how many threads
//!   execute it, and reductions combine partials in a fixed order.
//! * [`rng`] — a small deterministic PRNG family (SplitMix64 seeding,
//!   Xoshiro256++ stream) replacing the external `rand` crate so the
//!   workspace builds hermetically offline.
//!
//! # Thread count
//!
//! The pool sizes itself from, in priority order:
//!
//! 1. [`set_num_threads`] (wired to `FusionConfig::num_threads` by the
//!    `ir-fusion` crate),
//! 2. the `IRF_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! `num_threads == 1` executes every primitive inline on the calling
//! thread with no pool interaction at all. Nested parallel calls (a
//! parallel region started from inside a pool worker) also run inline,
//! which keeps the pool deadlock-free without oversubscription.

pub mod pool;
pub mod rng;
pub mod sched;
pub mod simd;

pub use pool::{
    configured_threads, num_threads, par_chunks_mut, par_for, par_map, par_ragged_chunks_mut,
    par_reduce, set_num_threads,
};
pub use rng::{SplitMix64, Xoshiro256pp};
pub use sched::{autotuned_chunk_cost, cost_balanced_bounds};

/// Resolves the default thread count: `IRF_THREADS` when set to a
/// positive integer, otherwise the machine's available parallelism.
#[must_use]
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("IRF_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
