//! Runtime dispatch for the workspace's optional SIMD kernels.
//!
//! The numeric crates (`irf-sparse`, `irf-nn`) carry hand-written
//! AVX2 implementations of their hottest inner loops behind a `simd`
//! cargo feature. This module is the single switchboard those kernels
//! consult before taking the vector path:
//!
//! * **Compile time** — without the `simd` feature, [`enabled`] is a
//!   constant `false` and every kernel compiles down to its scalar
//!   form; the default build stays dependency-free and bitwise
//!   unchanged.
//! * **Run time** — with the feature on, the vector path additionally
//!   requires x86-64 AVX2 support detected on the running CPU, honours
//!   an `IRF_SIMD=0|off|false` environment kill-switch, and can be
//!   force-disabled in-process with [`set_disabled`] (used by the
//!   parity tests and benches to compute scalar and SIMD results in
//!   the same process).
//!
//! Every SIMD kernel gated on this switch upholds the repo's
//! determinism contract: for f32/f64 kernels the vector path performs
//! the exact same sequence of roundings per output element as the
//! scalar path (no FMA, no reassociation), so scalar and SIMD outputs
//! are **bitwise identical** — the switch selects speed, never values.

#[cfg(feature = "simd")]
use std::sync::atomic::{AtomicBool, Ordering};
#[cfg(feature = "simd")]
use std::sync::OnceLock;

/// In-process kill switch, flipped by [`set_disabled`].
#[cfg(feature = "simd")]
static FORCE_DISABLED: AtomicBool = AtomicBool::new(false);

/// Cached `IRF_SIMD` environment override && CPU detection.
#[cfg(feature = "simd")]
static DETECTED: OnceLock<bool> = OnceLock::new();

#[cfg(feature = "simd")]
fn detect() -> bool {
    if let Ok(v) = std::env::var("IRF_SIMD") {
        let v = v.trim().to_ascii_lowercase();
        if v == "0" || v == "off" || v == "false" {
            return false;
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// `true` when the vector kernels should run: the `simd` feature is
/// compiled in, the CPU supports AVX2, `IRF_SIMD` does not disable it,
/// and [`set_disabled`] has not been called with `true`.
#[must_use]
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "simd")]
    {
        !FORCE_DISABLED.load(Ordering::Relaxed) && *DETECTED.get_or_init(detect)
    }
    #[cfg(not(feature = "simd"))]
    {
        false
    }
}

/// Force-disables (or re-enables) the vector path in-process.
///
/// Used by parity tests and the `kernel_speed` bench to compute both
/// scalar and SIMD results in one process. A no-op without the `simd`
/// feature.
pub fn set_disabled(disabled: bool) {
    #[cfg(feature = "simd")]
    FORCE_DISABLED.store(disabled, Ordering::Relaxed);
    #[cfg(not(feature = "simd"))]
    let _ = disabled;
}

/// `true` when the crate was compiled with the `simd` feature,
/// regardless of runtime CPU support. Benches use this to label runs.
#[must_use]
pub fn compiled() -> bool {
    cfg!(feature = "simd")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_without_feature() {
        if !compiled() {
            assert!(!enabled());
        }
    }

    #[test]
    fn force_disable_wins() {
        set_disabled(true);
        assert!(!enabled());
        set_disabled(false);
    }
}
