//! A scoped thread pool on `std::thread` + channels, with
//! deterministic data-parallel primitives.
//!
//! # Determinism contract
//!
//! Every primitive partitions its work by rules that depend only on
//! the *problem size*, never on the thread count, and each unit of
//! work is executed by exactly one task with the same serial inner
//! loop. Reductions ([`par_reduce`]) fold fixed-size chunks and then
//! combine the partials strictly in chunk order. Consequently the
//! result of any primitive is bitwise identical whether it runs on 1
//! thread or N.
//!
//! # Pool lifecycle
//!
//! Workers are spawned lazily on the first parallel call and parked on
//! a shared channel afterwards; the calling thread always executes the
//! first partition itself. A parallel call returns only after all of
//! its partitions have finished, which is what makes it safe to lend
//! non-`'static` borrows to the workers. Panics inside any partition
//! are caught, the call still waits for the remaining partitions, and
//! the first panic payload is then re-thrown on the calling thread.

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};

/// Work item shipped to a pool worker (lifetime-erased; see
/// [`run_tasks`] for the safety argument).
type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// `true` on pool worker threads: nested parallel calls run inline.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Configured thread count; `0` means "not set yet, resolve lazily".
static CONFIGURED: AtomicUsize = AtomicUsize::new(0);

struct Pool {
    sender: Mutex<mpsc::Sender<Job>>,
    receiver: Arc<Mutex<mpsc::Receiver<Job>>>,
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let (tx, rx) = mpsc::channel::<Job>();
        Pool {
            sender: Mutex::new(tx),
            receiver: Arc::new(Mutex::new(rx)),
            spawned: Mutex::new(0),
        }
    })
}

impl Pool {
    /// Makes sure at least `target` workers exist.
    fn ensure_workers(&'static self, target: usize) {
        let mut spawned = self.spawned.lock().expect("pool spawn lock");
        while *spawned < target {
            let rx = Arc::clone(&self.receiver);
            let idx = *spawned;
            let spawn = std::thread::Builder::new()
                .name(format!("irf-runtime-{idx}"))
                .spawn(move || {
                    IS_WORKER.with(|w| w.set(true));
                    irf_trace::set_thread_label(&format!("irf-runtime-{idx}"));
                    loop {
                        let job = {
                            let guard = rx.lock().expect("pool receiver lock");
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break,
                        }
                    }
                });
            if spawn.is_err() {
                // Could not create a thread; callers fall back to the
                // workers that do exist (possibly zero → serial).
                break;
            }
            *spawned += 1;
        }
    }

    fn submit(&self, job: Job) {
        self.sender
            .lock()
            .expect("pool sender lock")
            .send(job)
            .expect("pool channel closed");
    }
}

/// Completion latch for one scoped parallel call.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(remaining: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut st = self.state.lock().expect("latch lock");
        st.remaining -= 1;
        if st.panic.is_none() {
            st.panic = panic;
        }
        if st.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) -> Option<Box<dyn std::any::Any + Send>> {
        let mut st = self.state.lock().expect("latch lock");
        while st.remaining > 0 {
            st = self.done.wait(st).expect("latch wait");
        }
        st.panic.take()
    }
}

/// Sets the global thread count used by subsequent parallel calls.
/// `0` restores the default resolution (`IRF_THREADS`, then available
/// parallelism). Threads already parked in the pool are reused; the
/// count only controls how work is partitioned from now on.
pub fn set_num_threads(n: usize) {
    CONFIGURED.store(n, Ordering::Relaxed);
}

/// The raw configured thread count as last passed to
/// [`set_num_threads`] (`0` = automatic resolution). Callers that
/// override the count temporarily — e.g. a builder running one
/// preparation at an explicit parallelism — save this value and
/// restore it afterwards, preserving an ambient `0` instead of
/// pinning the resolved count.
#[must_use]
pub fn configured_threads() -> usize {
    CONFIGURED.load(Ordering::Relaxed)
}

/// The thread count parallel primitives currently target.
#[must_use]
pub fn num_threads() -> usize {
    match CONFIGURED.load(Ordering::Relaxed) {
        0 => crate::default_threads(),
        n => n,
    }
}

/// How many partitions to actually use for `items` independent units.
fn effective_threads(items: usize) -> usize {
    if items <= 1 || IS_WORKER.with(Cell::get) {
        return 1;
    }
    num_threads().min(items).max(1)
}

/// Runs the given closures to completion, the first one inline on the
/// calling thread and the rest on pool workers. Does not return until
/// every closure has finished (or panicked); the first panic is
/// re-thrown here.
fn run_tasks<'env>(tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
    let mut tasks = tasks;
    if tasks.is_empty() {
        return;
    }
    if tasks.len() == 1 || IS_WORKER.with(Cell::get) {
        for t in tasks {
            t();
        }
        return;
    }
    let inline = tasks.remove(0);
    let p = pool();
    p.ensure_workers(tasks.len());
    let latch = Arc::new(Latch::new(tasks.len()));
    for task in tasks {
        // SAFETY: `run_tasks` blocks on the latch until every shipped
        // job has completed, so the `'env` borrows captured by `task`
        // outlive its execution. The lifetime erasure below is only a
        // hand-off to a worker that finishes before we return.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        let latch = Arc::clone(&latch);
        p.submit(Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(task));
            latch.complete(result.err());
        }));
    }
    let inline_result = catch_unwind(AssertUnwindSafe(inline));
    let worker_panic = latch.wait();
    if let Err(payload) = inline_result {
        resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

/// Splits `0..n` into `k` contiguous blocks (first blocks one longer
/// when `n % k != 0`).
fn blocks(n: usize, k: usize) -> Vec<Range<usize>> {
    let base = n / k;
    let extra = n % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Calls `f(i)` for every `i in 0..n`, fanning contiguous index blocks
/// out across the pool. `f` must be safe to call concurrently for
/// distinct indices; each index is visited exactly once.
pub fn par_for<F>(n: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let k = effective_threads(n);
    if k <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = blocks(n, k)
        .into_iter()
        .map(|range| {
            Box::new(move || {
                for i in range {
                    f(i);
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    run_tasks(tasks);
}

/// Splits `data` into consecutive chunks of `chunk_size` (the last may
/// be shorter) and calls `f(chunk_index, chunk)` for each, distributing
/// contiguous runs of chunks across the pool. Chunk boundaries depend
/// only on `data.len()` and `chunk_size`, never on the thread count.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_size > 0, "par_chunks_mut: zero chunk size");
    let n_chunks = data.len().div_ceil(chunk_size);
    let k = effective_threads(n_chunks);
    if k <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
            f(i, chunk);
        }
        return;
    }
    // Group whole chunks into k contiguous runs.
    let chunks_per_run = n_chunks.div_ceil(k);
    let run_len = chunks_per_run * chunk_size;
    let f = &f;
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
        .chunks_mut(run_len)
        .enumerate()
        .map(|(run_idx, run)| {
            Box::new(move || {
                for (j, chunk) in run.chunks_mut(chunk_size).enumerate() {
                    f(run_idx * chunks_per_run + j, chunk);
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    run_tasks(tasks);
}

/// Splits `data` into ragged consecutive pieces at the caller-supplied
/// `offsets` (a `row_ptr`-style array: `offsets[0] == 0`,
/// `offsets.last() == data.len()`, non-decreasing) and calls
/// `f(piece_index, piece)` for each piece, distributing contiguous runs
/// of pieces across the pool. Runs are balanced by total *element*
/// count, so skewed piece sizes (e.g. nnz-heavy CSR rows) do not
/// straggle one worker. Every piece is visited by exactly one task with
/// the same bounds regardless of the thread count, so results are
/// bitwise identical at any parallelism.
///
/// # Panics
///
/// Panics if `offsets` is not a valid partition of `data`.
pub fn par_ragged_chunks_mut<T, F>(data: &mut [T], offsets: &[usize], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(
        offsets.first() == Some(&0) && offsets.last() == Some(&data.len()),
        "par_ragged_chunks_mut: offsets must span the slice"
    );
    assert!(
        offsets.windows(2).all(|w| w[0] <= w[1]),
        "par_ragged_chunks_mut: offsets must be non-decreasing"
    );
    let n_pieces = offsets.len() - 1;
    let k = effective_threads(n_pieces);
    if k <= 1 {
        let mut rest = data;
        for p in 0..n_pieces {
            let len = offsets[p + 1] - offsets[p];
            let (piece, tail) = rest.split_at_mut(len);
            rest = tail;
            f(p, piece);
        }
        return;
    }
    // Cut the piece list into k runs balanced by element count: run r
    // ends at the first piece boundary reaching `total * (r+1) / k`.
    let total = data.len();
    let mut run_bounds: Vec<usize> = Vec::with_capacity(k + 1);
    run_bounds.push(0);
    for r in 1..k {
        let target = total * r / k;
        let b = offsets.partition_point(|&o| o < target).min(n_pieces);
        let b = b.max(*run_bounds.last().expect("non-empty"));
        run_bounds.push(b);
    }
    run_bounds.push(n_pieces);
    let f = &f;
    let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(k);
    let mut rest = data;
    for r in 0..k {
        let (p0, p1) = (run_bounds[r], run_bounds[r + 1]);
        if p0 == p1 {
            continue;
        }
        let run_len = offsets[p1] - offsets[p0];
        let (run, tail) = rest.split_at_mut(run_len);
        rest = tail;
        tasks.push(Box::new(move || {
            let mut cur = run;
            for p in p0..p1 {
                let len = offsets[p + 1] - offsets[p];
                let (piece, next) = cur.split_at_mut(len);
                cur = next;
                f(p, piece);
            }
        }) as Box<dyn FnOnce() + Send + '_>);
    }
    run_tasks(tasks);
}

/// Deterministic parallel reduction over `0..n`.
///
/// The index range is cut into fixed chunks of `chunk_size` (the last
/// may be shorter); `map` folds one chunk serially into a partial, and
/// the partials are combined **in chunk order** as
/// `fold(...fold(fold(init, p_0), p_1)..., p_last)`. Because the chunk
/// boundaries and combination order are independent of the thread
/// count, the result is bitwise identical at any parallelism — and for
/// `n <= chunk_size` identical to a plain serial fold.
///
/// # Panics
///
/// Panics if `chunk_size == 0`.
pub fn par_reduce<T, M, F>(n: usize, chunk_size: usize, init: T, map: M, fold: F) -> T
where
    T: Send,
    M: Fn(Range<usize>) -> T + Sync,
    F: Fn(T, T) -> T,
{
    assert!(chunk_size > 0, "par_reduce: zero chunk size");
    let n_chunks = n.div_ceil(chunk_size);
    if n_chunks == 0 {
        return init;
    }
    let mut partials: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();
    let map = &map;
    par_chunks_mut(&mut partials, 1, |chunk_idx, slot| {
        let start = chunk_idx * chunk_size;
        let end = (start + chunk_size).min(n);
        slot[0] = Some(map(start..end));
    });
    partials
        .into_iter()
        .map(|p| p.expect("all chunks mapped"))
        .fold(init, fold)
}

/// Runs every closure in `tasks`, in parallel across the pool, and
/// returns their results in input order.
pub fn par_map<T, F>(tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    let k = effective_threads(n);
    if k <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    {
        let mut paired: Vec<(&mut Option<T>, F)> = results.iter_mut().zip(tasks).collect();
        let mut groups: Vec<Vec<(&mut Option<T>, F)>> = Vec::with_capacity(k);
        for range in blocks(n, k).into_iter().rev() {
            groups.push(paired.split_off(range.start));
        }
        groups.reverse();
        let boxed: Vec<Box<dyn FnOnce() + Send + '_>> = groups
            .into_iter()
            .map(|group| {
                Box::new(move || {
                    for (slot, task) in group {
                        *slot = Some(task());
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        run_tasks(boxed);
    }
    results
        .into_iter()
        .map(|r| r.expect("all tasks ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Serializes tests that reconfigure the global thread count.
    static THREAD_CONFIG: Mutex<()> = Mutex::new(());

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = THREAD_CONFIG.lock().unwrap_or_else(|e| e.into_inner());
        set_num_threads(n);
        let r = f();
        set_num_threads(0);
        r
    }

    #[test]
    fn par_for_visits_every_index_once() {
        for threads in [1, 2, 4, 8] {
            with_threads(threads, || {
                let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
                par_for(1000, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            });
        }
    }

    #[test]
    fn par_for_empty_and_single() {
        with_threads(4, || {
            par_for(0, |_| panic!("must not be called"));
            let hit = AtomicU64::new(0);
            par_for(1, |i| {
                assert_eq!(i, 0);
                hit.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hit.load(Ordering::Relaxed), 1);
        });
    }

    #[test]
    fn par_chunks_mut_covers_slice_with_correct_indices() {
        for threads in [1, 3, 7] {
            with_threads(threads, || {
                let mut data = vec![0usize; 103];
                par_chunks_mut(&mut data, 10, |ci, chunk| {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = ci * 10 + j;
                    }
                });
                for (i, v) in data.iter().enumerate() {
                    assert_eq!(*v, i);
                }
            });
        }
    }

    #[test]
    fn par_chunks_mut_empty_slice_is_noop() {
        with_threads(4, || {
            let mut data: Vec<u8> = Vec::new();
            par_chunks_mut(&mut data, 4, |_, _| panic!("no chunks expected"));
        });
    }

    #[test]
    fn par_ragged_chunks_mut_covers_all_pieces() {
        // Skewed piece sizes: one huge piece, many tiny ones, empties.
        let offsets = [0usize, 0, 500, 501, 502, 502, 640];
        for threads in [1, 2, 4, 8] {
            with_threads(threads, || {
                let mut data = vec![usize::MAX; 640];
                par_ragged_chunks_mut(&mut data, &offsets, |p, piece| {
                    assert_eq!(piece.len(), offsets[p + 1] - offsets[p]);
                    for v in piece.iter_mut() {
                        *v = p;
                    }
                });
                for (i, &v) in data.iter().enumerate() {
                    let expect = offsets.windows(2).position(|w| w[0] <= i && i < w[1]);
                    assert_eq!(Some(v), expect, "element {i}");
                }
            });
        }
    }

    #[test]
    fn par_ragged_chunks_mut_empty_slice() {
        with_threads(4, || {
            let mut data: Vec<u8> = Vec::new();
            par_ragged_chunks_mut(&mut data, &[0], |_, _| panic!("no pieces"));
            // A single empty piece is still visited.
            let hit = AtomicU64::new(0);
            par_ragged_chunks_mut(&mut data, &[0, 0], |p, piece| {
                assert_eq!((p, piece.len()), (0, 0));
                hit.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hit.load(Ordering::Relaxed), 1);
        });
    }

    #[test]
    fn par_reduce_is_bitwise_stable_across_thread_counts() {
        // An ill-conditioned sum where float association matters.
        let xs: Vec<f64> = (0..100_000)
            .map(|i| ((i * 2_654_435_761_usize) as f64).sin() * 1e8)
            .collect();
        let sum_at = |threads| {
            with_threads(threads, || {
                par_reduce(
                    xs.len(),
                    1024,
                    0.0_f64,
                    |r| xs[r].iter().sum::<f64>(),
                    |a, b| a + b,
                )
            })
        };
        let s1 = sum_at(1);
        for t in [2, 3, 4, 8] {
            assert_eq!(s1.to_bits(), sum_at(t).to_bits(), "threads = {t}");
        }
    }

    #[test]
    fn par_reduce_small_input_matches_serial_fold() {
        let xs = [1.5_f64, -2.25, 3.125];
        let serial: f64 = xs.iter().sum();
        let par = par_reduce(3, 4096, 0.0, |r| xs[r].iter().sum::<f64>(), |a, b| a + b);
        assert_eq!(serial.to_bits(), par.to_bits());
        // Empty input returns the init value untouched.
        let empty = par_reduce(0, 16, 42.0_f64, |_| unreachable!(), |a, b| a + b);
        assert_eq!(empty, 42.0);
    }

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 4] {
            with_threads(threads, || {
                let tasks: Vec<_> = (0..37).map(|i| move || i * i).collect();
                let out = par_map(tasks);
                assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
            });
        }
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_for(100, |i| {
                    assert!(i != 63, "boom at 63");
                });
            });
        });
        assert!(result.is_err(), "panic must propagate");
        // The pool must still be usable afterwards.
        with_threads(4, || {
            let total = par_reduce(100, 8, 0u64, |r| r.map(|i| i as u64).sum(), |a, b| a + b);
            assert_eq!(total, 4950);
        });
    }

    #[test]
    fn inline_panic_still_waits_for_workers() {
        // Index 0 lives in the partition the calling thread executes
        // inline; its panic must not abandon in-flight workers.
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_for(64, |i| {
                    assert!(i != 0, "inline boom");
                });
            });
        });
        assert!(result.is_err());
        with_threads(2, || {
            par_for(8, |_| {});
        });
    }

    #[test]
    fn nested_parallel_calls_run_inline() {
        with_threads(4, || {
            let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
            par_for(8, |outer| {
                // Nested call: must complete (inline) without deadlock.
                par_for(8, |inner| {
                    hits[outer * 8 + inner].fetch_add(1, Ordering::Relaxed);
                });
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        });
    }

    #[test]
    fn num_threads_reflects_configuration() {
        with_threads(3, || assert_eq!(num_threads(), 3));
        assert!(num_threads() >= 1);
    }
}
