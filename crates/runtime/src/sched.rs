//! Deterministic chunk autotuning for ragged data-parallel loops.
//!
//! The sparse kernels partition rows into cost-balanced chunks once at
//! matrix-build time and reuse that partition for every SpMV, smoother
//! sweep, and strength-graph pass. The original partitioner used a
//! fixed cost threshold per chunk (`SPMV_CHUNK_COST = 8192`), which is
//! a good fit for the bench-sized grids it was tuned on but loses at
//! both extremes of the million-node refactor:
//!
//! * **Huge matrices** (10^6+ rows, ~5 nnz/row) shatter into hundreds
//!   of thousands of tiny chunks. Every chunk is a unit of scheduling
//!   work — a pop from the pool's shared queue plus closure dispatch —
//!   so per-chunk overhead starts to rival the arithmetic.
//! * **Tiny matrices** (coarse AMG levels) collapse to one or two
//!   chunks, starving the pool even when rows are ragged.
//!
//! [`autotuned_chunk_cost`] picks the per-chunk cost budget from the
//! *total* work in the loop instead: aim for a fixed number of chunks
//! ([`TARGET_CHUNKS`]) so the pool's shared-queue pickup — which is
//! dynamic, idle workers grab the next unclaimed chunk — can balance
//! ragged rows, while clamping to `[MIN_CHUNK_COST, MAX_CHUNK_COST]`
//! so chunks never get small enough for scheduling overhead to win nor
//! large enough to serialize the loop.
//!
//! # Determinism
//!
//! The returned budget is a pure function of the total cost — a
//! property of the *problem*, never of the thread count or the
//! machine. The chunk boundaries it induces are therefore identical on
//! every run and every host, which is what keeps reductions (fixed
//! combine order over chunk partials) and SELL group layout (groups
//! aligned to chunk boundaries) bitwise reproducible at any thread
//! count.

/// How many chunks the autotuner aims to split a loop into.
///
/// Large enough that the pool's dynamic pickup can smooth out ragged
/// rows (a worker that drew an expensive chunk simply claims fewer),
/// small enough that per-chunk scheduling overhead stays negligible.
pub const TARGET_CHUNKS: usize = 256;

/// Lower clamp on the per-chunk cost budget. Below this the fixed
/// per-chunk dispatch overhead (queue pop + closure call) is no longer
/// negligible next to the chunk's arithmetic.
pub const MIN_CHUNK_COST: usize = 1024;

/// Upper clamp on the per-chunk cost budget. Above this a handful of
/// chunks serialize the loop tail even on modest core counts.
pub const MAX_CHUNK_COST: usize = 65536;

/// Picks a per-chunk cost budget for a loop with `total_cost` units of
/// work, targeting [`TARGET_CHUNKS`] chunks clamped to
/// `[`[`MIN_CHUNK_COST`]`, `[`MAX_CHUNK_COST`]`]`.
///
/// Deterministic: depends only on `total_cost` (problem structure),
/// never on thread count, so the partitions it induces are bitwise
/// stable across runs and hosts.
///
/// ```
/// use irf_runtime::sched::{autotuned_chunk_cost, MIN_CHUNK_COST, MAX_CHUNK_COST};
///
/// // Small problems clamp low: one chunk, run inline.
/// assert_eq!(autotuned_chunk_cost(100), MIN_CHUNK_COST);
/// // Mid-range problems target ~256 chunks.
/// assert_eq!(autotuned_chunk_cost(5_000_000), 5_000_000 / 256);
/// // Multi-million-node grids clamp high: ~300 chunks, not thousands.
/// assert_eq!(autotuned_chunk_cost(20_000_000), MAX_CHUNK_COST);
/// ```
#[must_use]
pub fn autotuned_chunk_cost(total_cost: usize) -> usize {
    (total_cost / TARGET_CHUNKS).clamp(MIN_CHUNK_COST, MAX_CHUNK_COST)
}

/// Partitions `costs` (one entry per item, in order) into contiguous
/// chunk bounds where each chunk's summed cost stays at or under
/// `chunk_cost` — except that a single item whose cost exceeds the
/// budget gets a chunk of its own rather than being split.
///
/// Returns half-open `(start, end)` index ranges covering all items.
/// Deterministic: a pure function of `costs` and `chunk_cost`.
#[must_use]
pub fn cost_balanced_bounds(costs: &[usize], chunk_cost: usize) -> Vec<(usize, usize)> {
    let budget = chunk_cost.max(1);
    let mut bounds = Vec::new();
    let mut start = 0usize;
    let mut acc = 0usize;
    for (i, &c) in costs.iter().enumerate() {
        if acc > 0 && acc + c > budget {
            bounds.push((start, i));
            start = i;
            acc = 0;
        }
        acc += c;
    }
    if start < costs.len() {
        bounds.push((start, costs.len()));
    }
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_low_and_high() {
        assert_eq!(autotuned_chunk_cost(0), MIN_CHUNK_COST);
        assert_eq!(
            autotuned_chunk_cost(MIN_CHUNK_COST * TARGET_CHUNKS / 2),
            MIN_CHUNK_COST
        );
        assert_eq!(autotuned_chunk_cost(usize::MAX / 2), MAX_CHUNK_COST);
    }

    #[test]
    fn midrange_targets_chunk_count() {
        let total = 10_000 * TARGET_CHUNKS; // 2.56M units
        assert_eq!(autotuned_chunk_cost(total), 10_000);
    }

    #[test]
    fn bounds_cover_all_items_in_order() {
        let costs = vec![3usize, 1, 4, 1, 5, 9, 2, 6];
        let bounds = cost_balanced_bounds(&costs, 6);
        // Every item appears exactly once, in order.
        let mut covered = Vec::new();
        for &(s, e) in &bounds {
            assert!(s < e);
            covered.extend(s..e);
        }
        assert_eq!(covered, (0..costs.len()).collect::<Vec<_>>());
        // No chunk except oversized singletons exceeds the budget.
        for &(s, e) in &bounds {
            let sum: usize = costs[s..e].iter().sum();
            assert!(sum <= 6 || e - s == 1);
        }
    }

    #[test]
    fn oversized_item_gets_own_chunk() {
        let costs = vec![2usize, 100, 2];
        let bounds = cost_balanced_bounds(&costs, 5);
        assert_eq!(bounds, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn empty_costs_yield_no_bounds() {
        assert!(cost_balanced_bounds(&[], 8).is_empty());
    }
}
