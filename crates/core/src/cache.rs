//! A bounded LRU cache of prepared feature stacks, shared by the CLI
//! training path and the inference server.
//!
//! Preparing a design (truncated solve + feature rasterization)
//! dominates request latency, and serving workloads frequently see the
//! same design repeatedly (retries, sweeps over model variants, load
//! tests). The cache keys on a content fingerprint of the power grid
//! *and* every configuration field that influences preparation, so a
//! hit is guaranteed to be bitwise identical to a fresh preparation.

use crate::config::FusionConfig;
use crate::pipeline::PreparedStack;
use irf_pg::PowerGrid;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// 64-bit FNV-1a, the workhorse hash for cache fingerprints: stable
/// across runs and platforms (unlike `DefaultHasher`, which is
/// randomly seeded per process).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// Folds `bytes` into the running hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds an `f64` through its bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// The accumulated hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Content fingerprint of a design plus the preparation-relevant
/// configuration.
///
/// Two (grid, config) pairs with equal fingerprints produce bitwise
/// identical [`PreparedStack`]s: the hash covers every node, segment,
/// load and pad of the grid, and the solver / feature settings that
/// feed preparation. Model, training and threading settings are
/// deliberately excluded — they do not affect the stack (results are
/// bitwise identical at any thread count).
#[must_use]
pub fn design_fingerprint(grid: &PowerGrid, config: &FusionConfig) -> u64 {
    let mut h = Fnv1a::default();
    h.write_u64(grid.nodes.len() as u64);
    for n in &grid.nodes {
        h.write(n.name.as_bytes());
        h.write_u64(u64::from(n.layer));
        h.write(&n.x.to_le_bytes());
        h.write(&n.y.to_le_bytes());
        h.write(&[u8::from(n.is_pad)]);
    }
    h.write_u64(grid.segments.len() as u64);
    for s in &grid.segments {
        h.write_u64(s.a as u64);
        h.write_u64(s.b as u64);
        h.write_f64(s.ohms);
    }
    h.write_u64(grid.loads.len() as u64);
    for l in &grid.loads {
        h.write_u64(l.node as u64);
        h.write_f64(l.amps);
    }
    h.write_u64(grid.pads.len() as u64);
    for p in &grid.pads {
        h.write_u64(p.node as u64);
        h.write_f64(p.volts);
    }
    // Preparation-relevant configuration. Debug formatting is stable
    // and covers nested enums (solver kind, smoother, normalization)
    // without a bespoke serialization.
    h.write_u64(config.solver_iterations as u64);
    h.write(format!("{:?}", config.solver_kind).as_bytes());
    h.write(format!("{:?}", config.amg).as_bytes());
    h.write(format!("{:?}", config.feature).as_bytes());
    h.finish()
}

struct LruInner {
    /// Fingerprint -> (last-use tick, stack).
    map: HashMap<u64, (u64, Arc<PreparedStack>)>,
    tick: u64,
}

/// One independently locked slice of the cache.
struct Shard {
    inner: Mutex<LruInner>,
    capacity: usize,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            inner: Mutex::new(LruInner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
        }
    }

    fn get(&self, key: u64) -> Option<Arc<PreparedStack>> {
        let mut inner = self.inner.lock().expect("feature cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(&key).map(|(last, stack)| {
            *last = tick;
            Arc::clone(stack)
        })
    }

    fn insert(&self, key: u64, stack: Arc<PreparedStack>) {
        let mut inner = self.inner.lock().expect("feature cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            // O(len) scan is fine: shard capacities are small (tens of
            // designs at most), and eviction is off the request fast
            // path.
            if let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, (last, _))| *last) {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(key, (tick, stack));
    }
}

/// Keys currently being computed by [`FeatureCache::get_or_compute`].
struct InFlight {
    keys: Mutex<HashSet<u64>>,
    done: Condvar,
}

/// Removes `key` from the in-flight set on drop (including panic
/// unwinds of the compute closure) and wakes every waiter.
struct InFlightGuard<'a> {
    inflight: &'a InFlight,
    key: u64,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let mut keys = self.inflight.keys.lock().unwrap_or_else(|e| e.into_inner());
        keys.remove(&self.key);
        self.inflight.done.notify_all();
    }
}

/// Thread-safe bounded LRU cache of [`PreparedStack`]s keyed by
/// [`design_fingerprint`].
///
/// The key space is split across independently locked shards
/// (`shard = key % n_shards`), so concurrent lookups for different
/// designs do not contend on one mutex; eviction is LRU *per shard*,
/// which approximates global LRU for the well-mixed FNV fingerprints
/// used as keys. [`FeatureCache::get_or_compute`] additionally
/// single-flights misses: concurrent requests for the same key compute
/// the stack once and share the result.
///
/// Hit/miss/coalesced counters are monotonically increasing across the
/// cache's lifetime and feed the server's `/metrics` endpoint.
pub struct FeatureCache {
    shards: Vec<Shard>,
    capacity: usize,
    inflight: InFlight,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

impl fmt::Debug for FeatureCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FeatureCache")
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("coalesced", &self.coalesced())
            .finish()
    }
}

impl FeatureCache {
    /// Creates a cache holding at most `capacity` stacks (minimum 1),
    /// sharded across up to 8 locks.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FeatureCache::with_shards(capacity, capacity.clamp(1, 8))
    }

    /// Creates a cache with an explicit shard count (minimum 1 each
    /// for capacity and shards). Total capacity is distributed evenly;
    /// a single shard gives exact global LRU order.
    #[must_use]
    pub fn with_shards(capacity: usize, n_shards: usize) -> Self {
        let capacity = capacity.max(1);
        let n_shards = n_shards.clamp(1, capacity);
        let per_shard = capacity.div_ceil(n_shards);
        FeatureCache {
            shards: (0..n_shards).map(|_| Shard::new(per_shard)).collect(),
            capacity,
            inflight: InFlight {
                keys: Mutex::new(HashSet::new()),
                done: Condvar::new(),
            },
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Shard {
        &self.shards[(key % self.shards.len() as u64) as usize]
    }

    /// Looks up a fingerprint, refreshing its recency on a hit.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<Arc<PreparedStack>> {
        match self.shard(key).get(key) {
            Some(stack) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(stack)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a stack, evicting the least recently used entry of its
    /// shard when that shard is full. Re-inserting an existing key
    /// refreshes its value and recency.
    pub fn insert(&self, key: u64, stack: Arc<PreparedStack>) {
        self.shard(key).insert(key, stack);
    }

    /// Returns the cached stack for `key`, computing and inserting it
    /// via `compute` on a miss. Concurrent misses on the *same* key are
    /// single-flighted: one caller runs `compute`, the rest block until
    /// the result lands in the cache and share it (counted by
    /// [`FeatureCache::coalesced`]). Misses on different keys compute
    /// concurrently.
    ///
    /// If `compute` panics, the panic propagates to its caller and
    /// waiting threads fall back to computing for themselves.
    pub fn get_or_compute(
        &self,
        key: u64,
        compute: impl FnOnce() -> Arc<PreparedStack>,
    ) -> Arc<PreparedStack> {
        if let Some(stack) = self.get(key) {
            return stack;
        }
        // Claim the key, or wait for whoever holds it.
        loop {
            let mut keys = self.inflight.keys.lock().unwrap_or_else(|e| e.into_inner());
            if keys.insert(key) {
                break;
            }
            let mut waited = keys;
            loop {
                waited = self
                    .inflight
                    .done
                    .wait(waited)
                    .unwrap_or_else(|e| e.into_inner());
                if !waited.contains(&key) {
                    break;
                }
            }
            drop(waited);
            // The leader finished (or unwound). On success the stack
            // is in the cache; otherwise loop back and claim the key
            // ourselves.
            if let Some(stack) = self.shard(key).get(key) {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                return stack;
            }
        }
        let _guard = InFlightGuard {
            inflight: &self.inflight,
            key,
        };
        let stack = compute();
        self.insert(key, Arc::clone(&stack));
        stack
    }

    /// Number of cached stacks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.inner.lock().expect("feature cache poisoned").map.len())
            .sum()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of cached stacks.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total lookups that found an entry.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookups that missed.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total computations saved by single-flighting: requests that
    /// missed, waited on an in-flight computation of the same key, and
    /// were served its result.
    #[must_use]
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Hit fraction in `[0, 1]` (`0.0` before any lookup).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let total = h + self.misses() as f64;
        if total > 0.0 {
            h / total
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_data::Design;

    fn stack() -> Arc<PreparedStack> {
        Arc::new(PreparedStack {
            features: irf_features::FeatureStack::default(),
            rough: irf_pg::GridMap::new(1, 1),
            solve_report: irf_sparse::SolveReport {
                x: Vec::new(),
                converged: false,
                iterations: 0,
                residual: 0.0,
                setup_seconds: 0.0,
                solve_seconds: 0.0,
                trace: irf_sparse::cg::ConvergenceTrace::default(),
            },
            solve_seconds: 0.0,
            feature_seconds: 0.0,
        })
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let cfg = FusionConfig::tiny();
        let a = Design::fake(1);
        let b = Design::fake(2);
        assert_eq!(
            design_fingerprint(&a.grid, &cfg),
            design_fingerprint(&a.grid, &cfg),
            "same content must fingerprint identically"
        );
        assert_ne!(
            design_fingerprint(&a.grid, &cfg),
            design_fingerprint(&b.grid, &cfg),
            "different designs must fingerprint differently"
        );
        let mut cfg2 = cfg;
        cfg2.solver_iterations += 1;
        assert_ne!(
            design_fingerprint(&a.grid, &cfg),
            design_fingerprint(&a.grid, &cfg2),
            "solver budget is preparation-relevant"
        );
        let mut cfg3 = cfg;
        cfg3.num_threads = 7;
        assert_eq!(
            design_fingerprint(&a.grid, &cfg),
            design_fingerprint(&a.grid, &cfg3),
            "thread count must not affect the fingerprint"
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One shard pins exact global LRU order.
        let cache = FeatureCache::with_shards(2, 1);
        cache.insert(1, stack());
        cache.insert(2, stack());
        assert!(cache.get(1).is_some()); // refresh 1; 2 is now LRU
        cache.insert(3, stack()); // evicts 2
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn sharded_cache_stores_and_retrieves_across_shards() {
        let cache = FeatureCache::with_shards(16, 4);
        for key in 0..12u64 {
            cache.insert(key, stack());
        }
        assert_eq!(cache.len(), 12);
        for key in 0..12u64 {
            assert!(cache.get(key).is_some(), "key {key}");
        }
    }

    #[test]
    fn get_or_compute_single_flights_concurrent_misses() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Barrier;

        let cache = Arc::new(FeatureCache::new(4));
        let computes = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let computes = Arc::clone(&computes);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_compute(42, || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough that the
                        // other threads pile up behind it.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        stack()
                    })
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "exactly one thread computes"
        );
        // Every other thread is served by the leader's work: normally
        // all 7 coalesce onto the in-flight computation; a thread
        // scheduled late enough can land an ordinary hit instead.
        assert_eq!(
            cache.coalesced() + cache.hits(),
            7,
            "everyone else shares the leader's result"
        );
        for r in &results[1..] {
            assert!(Arc::ptr_eq(&results[0], r), "all callers share one stack");
        }
    }

    #[test]
    fn get_or_compute_recovers_from_a_panicking_leader() {
        let cache = Arc::new(FeatureCache::new(4));
        let c2 = Arc::clone(&cache);
        let leader = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c2.get_or_compute(7, || panic!("compute failed"))
            }));
            assert!(result.is_err());
        });
        leader.join().unwrap();
        // The key must not be stuck in-flight: a later caller computes.
        let got = cache.get_or_compute(7, stack);
        assert!(cache.get(7).is_some());
        drop(got);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let cache = FeatureCache::new(4);
        assert!(cache.get(9).is_none());
        cache.insert(9, stack());
        assert!(cache.get(9).is_some());
        assert!(cache.get(9).is_some());
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
        assert!((cache.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
