//! A bounded LRU cache of prepared feature stacks, shared by the CLI
//! training path and the inference server.
//!
//! Preparing a design (truncated solve + feature rasterization)
//! dominates request latency, and serving workloads frequently see the
//! same design repeatedly (retries, sweeps over model variants, load
//! tests). The cache keys on a content fingerprint of the power grid
//! *and* every configuration field that influences preparation, so a
//! hit is guaranteed to be bitwise identical to a fresh preparation.

use crate::config::FusionConfig;
use crate::pipeline::PreparedStack;
use irf_pg::PowerGrid;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// 64-bit FNV-1a, the workhorse hash for cache fingerprints: stable
/// across runs and platforms (unlike `DefaultHasher`, which is
/// randomly seeded per process).
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// Folds `bytes` into the running hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds an `f64` through its bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_le_bytes());
    }

    /// The accumulated hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Content fingerprint of a design plus the preparation-relevant
/// configuration.
///
/// Two (grid, config) pairs with equal fingerprints produce bitwise
/// identical [`PreparedStack`]s: the hash covers every node, segment,
/// load and pad of the grid, and the solver / feature settings that
/// feed preparation. Model, training and threading settings are
/// deliberately excluded — they do not affect the stack (results are
/// bitwise identical at any thread count).
#[must_use]
pub fn design_fingerprint(grid: &PowerGrid, config: &FusionConfig) -> u64 {
    let mut h = Fnv1a::default();
    h.write_u64(grid.nodes.len() as u64);
    for n in &grid.nodes {
        h.write(n.name.as_bytes());
        h.write_u64(u64::from(n.layer));
        h.write(&n.x.to_le_bytes());
        h.write(&n.y.to_le_bytes());
        h.write(&[u8::from(n.is_pad)]);
    }
    h.write_u64(grid.segments.len() as u64);
    for s in &grid.segments {
        h.write_u64(s.a as u64);
        h.write_u64(s.b as u64);
        h.write_f64(s.ohms);
    }
    h.write_u64(grid.loads.len() as u64);
    for l in &grid.loads {
        h.write_u64(l.node as u64);
        h.write_f64(l.amps);
    }
    h.write_u64(grid.pads.len() as u64);
    for p in &grid.pads {
        h.write_u64(p.node as u64);
        h.write_f64(p.volts);
    }
    // Preparation-relevant configuration. Debug formatting is stable
    // and covers nested enums (solver kind, smoother, normalization)
    // without a bespoke serialization.
    h.write_u64(config.solver_iterations as u64);
    h.write(format!("{:?}", config.solver_kind).as_bytes());
    h.write(format!("{:?}", config.amg).as_bytes());
    h.write(format!("{:?}", config.feature).as_bytes());
    h.finish()
}

struct LruInner {
    /// Fingerprint -> (last-use tick, stack).
    map: HashMap<u64, (u64, Arc<PreparedStack>)>,
    tick: u64,
}

/// Thread-safe bounded LRU cache of [`PreparedStack`]s keyed by
/// [`design_fingerprint`].
///
/// Hit/miss counters are monotonically increasing across the cache's
/// lifetime and feed the server's `/metrics` endpoint.
pub struct FeatureCache {
    inner: Mutex<LruInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl fmt::Debug for FeatureCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FeatureCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl FeatureCache {
    /// Creates a cache holding at most `capacity` stacks (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        FeatureCache {
            inner: Mutex::new(LruInner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a fingerprint, refreshing its recency on a hit.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<Arc<PreparedStack>> {
        let mut inner = self.inner.lock().expect("feature cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some((last, stack)) => {
                *last = tick;
                let stack = Arc::clone(stack);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(stack)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a stack, evicting the least recently used entry when
    /// full. Re-inserting an existing key refreshes its value and
    /// recency.
    pub fn insert(&self, key: u64, stack: Arc<PreparedStack>) {
        let mut inner = self.inner.lock().expect("feature cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            // O(len) scan is fine: capacities are small (tens of
            // designs), and eviction is off the request fast path.
            if let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, (last, _))| *last) {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(key, (tick, stack));
    }

    /// Number of cached stacks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("feature cache poisoned").map.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of cached stacks.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total lookups that found an entry.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookups that missed.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit fraction in `[0, 1]` (`0.0` before any lookup).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let total = h + self.misses() as f64;
        if total > 0.0 {
            h / total
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use irf_data::Design;

    fn stack() -> Arc<PreparedStack> {
        Arc::new(PreparedStack {
            features: irf_features::FeatureStack::default(),
            rough: irf_pg::GridMap::new(1, 1),
            solve_report: irf_sparse::SolveReport {
                x: Vec::new(),
                converged: false,
                iterations: 0,
                residual: 0.0,
                setup_seconds: 0.0,
                solve_seconds: 0.0,
                trace: irf_sparse::cg::ConvergenceTrace::default(),
            },
            solve_seconds: 0.0,
            feature_seconds: 0.0,
        })
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let cfg = FusionConfig::tiny();
        let a = Design::fake(1);
        let b = Design::fake(2);
        assert_eq!(
            design_fingerprint(&a.grid, &cfg),
            design_fingerprint(&a.grid, &cfg),
            "same content must fingerprint identically"
        );
        assert_ne!(
            design_fingerprint(&a.grid, &cfg),
            design_fingerprint(&b.grid, &cfg),
            "different designs must fingerprint differently"
        );
        let mut cfg2 = cfg;
        cfg2.solver_iterations += 1;
        assert_ne!(
            design_fingerprint(&a.grid, &cfg),
            design_fingerprint(&a.grid, &cfg2),
            "solver budget is preparation-relevant"
        );
        let mut cfg3 = cfg;
        cfg3.num_threads = 7;
        assert_eq!(
            design_fingerprint(&a.grid, &cfg),
            design_fingerprint(&a.grid, &cfg3),
            "thread count must not affect the fingerprint"
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = FeatureCache::new(2);
        cache.insert(1, stack());
        cache.insert(2, stack());
        assert!(cache.get(1).is_some()); // refresh 1; 2 is now LRU
        cache.insert(3, stack()); // evicts 2
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_none());
        assert!(cache.get(3).is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let cache = FeatureCache::new(4);
        assert!(cache.get(9).is_none());
        cache.insert(9, stack());
        assert!(cache.get(9).is_some());
        assert!(cache.get(9).is_some());
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
        assert!((cache.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }
}
