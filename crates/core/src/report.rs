//! Sign-off style reporting on an [`Analysis`].
//!
//! Downstream users of an IR-drop tool want a verdict, not a map:
//! does the design meet its drop budget, where are the violations,
//! and how bad is the worst one. This module renders that from any
//! drop map the pipeline produces (rough, fused, or golden).

use crate::pipeline::Analysis;
use irf_pg::GridMap;
use std::fmt;

/// One violating tile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Violation {
    /// Tile x coordinate.
    pub x: usize,
    /// Tile y coordinate.
    pub y: usize,
    /// Drop at the tile, volts.
    pub drop_volts: f32,
}

/// A drop-budget check over one map.
#[derive(Debug, Clone, PartialEq)]
pub struct SignoffReport {
    /// The budget checked against, volts.
    pub budget_volts: f32,
    /// Worst drop found, volts.
    pub worst_volts: f32,
    /// Tile of the worst drop.
    pub worst_at: (usize, usize),
    /// All violating tiles, worst first (capped at
    /// [`SignoffReport::MAX_LISTED`]).
    pub violations: Vec<Violation>,
    /// Total number of violating tiles (may exceed `violations.len()`).
    pub violation_count: usize,
}

impl SignoffReport {
    /// Cap on the individually listed violations.
    pub const MAX_LISTED: usize = 32;

    /// Checks `map` against a drop budget in volts.
    ///
    /// # Panics
    ///
    /// Panics if `budget_volts` is not positive.
    #[must_use]
    pub fn check(map: &GridMap, budget_volts: f32) -> Self {
        assert!(budget_volts > 0.0, "budget must be positive");
        let mut worst = 0.0f32;
        let mut worst_at = (0usize, 0usize);
        let mut violations = Vec::new();
        for y in 0..map.height() {
            for x in 0..map.width() {
                let v = map.get(x, y);
                if v > worst {
                    worst = v;
                    worst_at = (x, y);
                }
                if v > budget_volts {
                    violations.push(Violation {
                        x,
                        y,
                        drop_volts: v,
                    });
                }
            }
        }
        violations.sort_by(|a, b| b.drop_volts.total_cmp(&a.drop_volts));
        let violation_count = violations.len();
        violations.truncate(Self::MAX_LISTED);
        SignoffReport {
            budget_volts,
            worst_volts: worst,
            worst_at,
            violations,
            violation_count,
        }
    }

    /// `true` when the design meets its budget.
    #[must_use]
    pub fn passes(&self) -> bool {
        self.violation_count == 0
    }

    /// Margin to the budget, volts (negative when failing).
    #[must_use]
    pub fn margin_volts(&self) -> f32 {
        self.budget_volts - self.worst_volts
    }
}

impl fmt::Display for SignoffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "IR-drop signoff: {} (budget {:.3} mV)",
            if self.passes() { "PASS" } else { "FAIL" },
            self.budget_volts * 1e3
        )?;
        writeln!(
            f,
            "  worst drop {:.3} mV at tile ({}, {}), margin {:+.3} mV",
            self.worst_volts * 1e3,
            self.worst_at.0,
            self.worst_at.1,
            self.margin_volts() * 1e3
        )?;
        if !self.passes() {
            writeln!(
                f,
                "  {} violating tiles; worst offenders:",
                self.violation_count
            )?;
            for v in self.violations.iter().take(5) {
                writeln!(f, "    ({}, {}) {:.3} mV", v.x, v.y, v.drop_volts * 1e3)?;
            }
        }
        Ok(())
    }
}

impl Analysis {
    /// Runs the sign-off check on the best available map (the fused
    /// prediction when a model ran, otherwise the rough numerical
    /// map).
    ///
    /// # Panics
    ///
    /// Panics if `budget_volts` is not positive.
    #[must_use]
    pub fn signoff(&self, budget_volts: f32) -> SignoffReport {
        let map = self.fused_map.as_ref().unwrap_or(&self.rough_map);
        SignoffReport::check(map, budget_volts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> GridMap {
        GridMap::from_vec(2, 2, vec![0.001, 0.004, 0.002, 0.009])
    }

    #[test]
    fn passing_budget() {
        let r = SignoffReport::check(&map(), 0.010);
        assert!(r.passes());
        assert_eq!(r.worst_volts, 0.009);
        assert_eq!(r.worst_at, (1, 1));
        assert!(r.margin_volts() > 0.0);
        assert!(r.to_string().contains("PASS"));
    }

    #[test]
    fn failing_budget_lists_worst_first() {
        let r = SignoffReport::check(&map(), 0.003);
        assert!(!r.passes());
        assert_eq!(r.violation_count, 2);
        assert_eq!(r.violations[0].drop_volts, 0.009);
        assert_eq!(r.violations[1].drop_volts, 0.004);
        let text = r.to_string();
        assert!(text.contains("FAIL") && text.contains("2 violating"));
    }

    #[test]
    fn listing_is_capped_but_count_is_exact() {
        let n = 100;
        let m = GridMap::from_vec(n, 1, (0..n).map(|i| 0.01 + i as f32 * 1e-5).collect());
        let r = SignoffReport::check(&m, 0.001);
        assert_eq!(r.violation_count, n);
        assert_eq!(r.violations.len(), SignoffReport::MAX_LISTED);
    }

    #[test]
    fn analysis_signoff_prefers_fused_map() {
        use crate::pipeline::IrFusionPipeline;
        use crate::FusionConfig;
        let grid = irf_pg::PowerGrid::from_netlist(
            &irf_spice::parse("V1 p 0 1.0\nR1 p a 1.0\nI1 a 0 1m\n").expect("parses"),
        )
        .expect("valid");
        let pipeline = IrFusionPipeline::new(FusionConfig::tiny());
        let analysis = pipeline.stack_builder().analyze(&grid, None).expect("pads");
        let report = analysis.signoff(0.1);
        assert!(report.passes());
    }
}
